//! Middleware thread census: under the sharded execution policy the
//! number of middleware threads must stay bounded by the worker-pool
//! size plus a small constant, no matter how many far references exist.
//!
//! This file holds exactly one test on purpose: the census walks
//! `/proc/self/task`, so a sibling test running concurrently in the same
//! process would pollute the count.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::policy::{Backoff, Policy};
use morena::prelude::*;

/// Names of all live threads in this process that belong to the
/// middleware (`morena-*`), read from the kernel's per-task `comm`.
fn morena_threads() -> Vec<String> {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return Vec::new();
    };
    tasks
        .flatten()
        .filter_map(|task| std::fs::read_to_string(task.path().join("comm")).ok())
        .map(|comm| comm.trim().to_string())
        .filter(|comm| comm.starts_with("morena"))
        .collect()
}

#[test]
fn sharded_pool_bounds_middleware_threads_at_scale() {
    const REFS: usize = 128;
    const WORKERS: usize = 4;

    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 99);
    let phone = world.add_phone("census");
    let ctx =
        MorenaContext::headless_with(&world, phone, ExecutionPolicy::Sharded { workers: WORKERS });

    let (done_tx, done_rx) = unbounded();
    let references: Vec<_> = (0..REFS)
        .map(|i| {
            let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(i as u32))));
            world.tap_tag(uid, phone);
            let reference = TagReference::with_policy(
                &ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
                Policy::new()
                    .with_timeout(Duration::from_secs(60))
                    .with_backoff(Backoff::constant(Duration::from_micros(200))),
            );
            let done_tx = done_tx.clone();
            reference.write(
                format!("census-{i}"),
                move |_| done_tx.send(()).unwrap(),
                |_, f| panic!("census write failed: {f}"),
            );
            reference
        })
        .collect();

    // Census while every loop is live and has work queued or in flight.
    if std::path::Path::new("/proc/self/task").exists() {
        let names = morena_threads();
        let sched = names.iter().filter(|n| n.starts_with("morena-sched")).count();
        let loops = names.iter().filter(|n| n.starts_with("morena-loop")).count();
        assert!(sched <= WORKERS, "worker pool exceeded with {REFS} refs: {names:?}");
        assert_eq!(loops, 0, "sharded policy must not spawn per-loop threads: {names:?}");
        // Pool + the context's event router; nothing scales with REFS.
        assert!(
            names.len() <= WORKERS + 1,
            "middleware threads must be bounded by pool size + constant, got {names:?}"
        );
    }

    // The bounded pool still resolves every operation exactly once.
    for _ in 0..REFS {
        done_rx.recv_timeout(Duration::from_secs(60)).expect("write resolves");
    }
    assert!(done_rx.try_recv().is_err(), "no duplicate completions");
    for reference in references {
        reference.close();
    }
}
