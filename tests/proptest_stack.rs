//! Cross-crate property tests: invariants that must hold across the
//! whole stack — arbitrary things surviving the full serialize → tag
//! memory → radio → deserialize pipeline, lease message algebra, and
//! converter/codec composition.

use std::sync::Arc;

use morena::core::convert::{JsonConverter, StringConverter, TagDataConverter};
use morena::core::lease::{strip_lease, with_lease, DeviceId, LeaseRecord};
use morena::core::thing::Thing;
use morena::prelude::*;
use morena::sim::clock::SimInstant;
use morena::sim::proto::{self, DirectLink};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Note {
    title: String,
    body: String,
    tags: Vec<String>,
    priority: u8,
}

impl Thing for Note {
    const TYPE_NAME: &'static str = "note";
}

fn arb_note() -> impl Strategy<Value = Note> {
    ("[ -~]{0,24}", "[ -~]{0,80}", proptest::collection::vec("[a-z]{1,8}", 0..4), any::<u8>())
        .prop_map(|(title, body, tags, priority)| Note { title, body, tags, priority })
}

proptest! {
    /// Any thing survives: JSON → NDEF → Type 2 tag memory (pages, TLV)
    /// → read procedure → NDEF → JSON.
    #[test]
    fn thing_round_trips_through_type2_tag_memory(note in arb_note()) {
        let converter: JsonConverter<Note> = Note::converter();
        let message = converter.to_message(&note).unwrap();
        let mut tag = Type2Tag::ntag216(TagUid::from_seed(1));
        proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &message.to_bytes())
            .unwrap();
        let bytes = proto::read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2).unwrap();
        let back = converter.from_message(&NdefMessage::parse(&bytes).unwrap()).unwrap();
        prop_assert_eq!(back, note);
    }

    /// Same pipeline over a Type 4 tag (APDU file protocol).
    #[test]
    fn thing_round_trips_through_type4_tag_memory(note in arb_note()) {
        let converter: JsonConverter<Note> = Note::converter();
        let message = converter.to_message(&note).unwrap();
        let mut tag = Type4Tag::new(TagUid::from_seed(2), 4096);
        proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4, &message.to_bytes())
            .unwrap();
        let bytes = proto::read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4).unwrap();
        let back = converter.from_message(&NdefMessage::parse(&bytes).unwrap()).unwrap();
        prop_assert_eq!(back, note);
    }

    /// Lease algebra: locking any application message and stripping the
    /// lock recovers the original content, regardless of lease values.
    #[test]
    fn lease_wrap_strip_is_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        holder in any::<u64>(),
        expiry in any::<u64>(),
    ) {
        let content = NdefMessage::single(
            NdefRecord::mime("application/x-data", payload).unwrap(),
        );
        let lease = LeaseRecord {
            holder: DeviceId(holder),
            expires_at: SimInstant::from_nanos(expiry),
        };
        let locked = with_lease(&content, lease);
        prop_assert_eq!(LeaseRecord::find_in(&locked), Some(lease));
        prop_assert_eq!(strip_lease(&locked), content.clone());
        // Locking twice replaces, never stacks.
        let relocked = with_lease(&locked, lease);
        prop_assert_eq!(relocked.records().len(), locked.records().len());
    }

    /// A leased message still round-trips through real tag memory, and
    /// the lock survives byte-exactly.
    #[test]
    fn leased_message_survives_tag_memory(
        payload in proptest::collection::vec(any::<u8>(), 0..48),
        holder in any::<u64>(),
        expiry in any::<u64>(),
    ) {
        let content = NdefMessage::single(
            NdefRecord::mime("application/x-data", payload).unwrap(),
        );
        let lease = LeaseRecord {
            holder: DeviceId(holder),
            expires_at: SimInstant::from_nanos(expiry),
        };
        let locked = with_lease(&content, lease);
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(3));
        proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &locked.to_bytes())
            .unwrap();
        let bytes = proto::read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2).unwrap();
        let read_back = NdefMessage::parse(&bytes).unwrap();
        prop_assert_eq!(LeaseRecord::find_in(&read_back), Some(lease));
        prop_assert_eq!(strip_lease(&read_back), content);
    }

    /// Strings of any content survive the string converter + wire format.
    #[test]
    fn string_converter_composes_with_wire_format(text in "\\PC{0,200}") {
        let converter = StringConverter::plain_text();
        let message = converter.to_message(&text).unwrap();
        let parsed = NdefMessage::parse(&message.to_bytes()).unwrap();
        prop_assert!(converter.accepts(&parsed));
        prop_assert_eq!(converter.from_message(&parsed).unwrap(), text);
    }

    /// Wire compat with pre-trace peers: the middleware's reserved
    /// trace record — with payloads of any length, including unknown
    /// future wire versions — rides a message byte-identically through
    /// parse → encode and through real tag memory. A peer that does not
    /// know the record type sees it as one more external record and
    /// must neither corrupt nor reorder it.
    #[test]
    fn reserved_trace_record_round_trips_byte_identically(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        text in "[ -~]{0,40}",
    ) {
        let app = StringConverter::plain_text().to_message(&text).unwrap();
        let mut records = app.records().to_vec();
        records.push(NdefRecord::external(morena::ndef::TRACE_RECORD_TYPE, payload).unwrap());
        let message = NdefMessage::new(records);
        let bytes = message.to_bytes();
        prop_assert_eq!(NdefMessage::parse(&bytes).unwrap().to_bytes(), bytes.clone());
        let mut tag = Type2Tag::ntag216(TagUid::from_seed(5));
        proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &bytes).unwrap();
        let back = proto::read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2).unwrap();
        prop_assert_eq!(back, bytes);
    }

    /// The converter MIME namespace is injective enough: two different
    /// thing types never accept each other's messages.
    #[test]
    fn thing_mime_types_do_not_collide(note in arb_note()) {
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        struct Other { x: u32 }
        impl Thing for Other {
            const TYPE_NAME: &'static str = "other";
        }
        let note_conv: JsonConverter<Note> = Note::converter();
        let other_conv: JsonConverter<Other> = Other::converter();
        let message = note_conv.to_message(&note).unwrap();
        prop_assert!(note_conv.accepts(&message));
        prop_assert!(!other_conv.accepts(&message));
    }
}

/// Sanity outside proptest: the full stack end-to-end with a virtual
/// clock and a typed ThingSpace (exercising every layer in one flow).
#[test]
fn full_stack_smoke() {
    use morena::core::thing::{BoundThing, EmptyThingSlot, ThingObserver, ThingSpace};

    struct Observer {
        tx: crossbeam::channel::Sender<Note>,
    }
    impl ThingObserver<Note> for Observer {
        fn when_discovered(&self, thing: BoundThing<Note>) {
            self.tx.send(thing.value()).unwrap();
        }
        fn when_discovered_empty(&self, slot: EmptyThingSlot<Note>) {
            slot.initialize_ok(
                Note {
                    title: "fresh".into(),
                    body: "initialized on first sight".into(),
                    tags: vec!["auto".into()],
                    priority: 1,
                },
                |_| {},
            );
        }
    }

    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 77);
    let phone = world.add_phone("smoke");
    let ctx = MorenaContext::headless(&world, phone);
    let (tx, rx) = crossbeam::channel::unbounded();
    let _space = ThingSpace::new(&ctx, Arc::new(Observer { tx }));
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(9))));

    // First tap: blank → auto-initialized. Second tap: discovered.
    world.tap_tag(uid, phone);
    std::thread::sleep(std::time::Duration::from_millis(100));
    world.remove_tag_from_field(uid);
    world.tap_tag(uid, phone);
    let note = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
    assert_eq!(note.title, "fresh");
    assert_eq!(note.tags, vec!["auto".to_string()]);
}
