//! End-to-end behavioural equivalence of the two WiFi-sharing
//! implementations (the §4 evaluation pair): driven through identical
//! physical scenarios, the MORENA and handcrafted versions must produce
//! the same observable outcomes — and tags written by one must be
//! readable by the other.

use std::time::Duration;

use morena::apps::wifi::{WifiConfig, WifiManager};
use morena::apps::wifi_handcrafted::HandcraftedWifiApp;
use morena::apps::wifi_morena::MorenaWifiApp;
use morena::prelude::*;

fn world() -> World {
    World::with_link(VirtualClock::shared(), LinkModel::instant(), 99)
}

fn wait_until(cond: impl Fn() -> bool) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// The provision-then-join scenario, outcome captured per implementation.
#[derive(Debug, PartialEq)]
struct ScenarioOutcome {
    provision_toast: bool,
    guest_network: Option<String>,
    guest_join_toast: bool,
}

fn run_morena_scenario(world: &World) -> ScenarioOutcome {
    let host_phone = world.add_phone("m-host");
    let guest_phone = world.add_phone("m-guest");
    let sticker = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));

    let host =
        MorenaWifiApp::launch(&MorenaContext::headless(world, host_phone), WifiManager::new());
    let guest =
        MorenaWifiApp::launch(&MorenaContext::headless(world, guest_phone), WifiManager::new());

    host.provision(WifiConfig::new("shared-net", "pw"));
    world.tap_tag(sticker, host_phone);
    let provision_toast = host.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10));
    world.remove_tag_from_field(sticker);

    world.tap_tag(sticker, guest_phone);
    let guest_join_toast =
        guest.toasts().wait_for("Joining Wifi network shared-net", Duration::from_secs(10));
    wait_until(|| guest.wifi().current_network().is_some());
    let outcome = ScenarioOutcome {
        provision_toast,
        guest_network: guest.wifi().current_network(),
        guest_join_toast,
    };
    host.close();
    guest.close();
    outcome
}

fn run_handcrafted_scenario(world: &World) -> ScenarioOutcome {
    let host_phone = world.add_phone("h-host");
    let guest_phone = world.add_phone("h-guest");
    let sticker = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));

    let host = HandcraftedWifiApp::launch(world, host_phone, WifiManager::new());
    let guest = HandcraftedWifiApp::launch(world, guest_phone, WifiManager::new());

    host.provision(WifiConfig::new("shared-net", "pw"));
    world.tap_tag(sticker, host_phone);
    let provision_toast = host.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10));
    world.remove_tag_from_field(sticker);

    world.tap_tag(sticker, guest_phone);
    let guest_join_toast =
        guest.toasts().wait_for("Joining Wifi network shared-net", Duration::from_secs(10));
    wait_until(|| guest.wifi().current_network().is_some());
    guest.sync();
    ScenarioOutcome {
        provision_toast,
        guest_network: guest.wifi().current_network(),
        guest_join_toast,
    }
}

#[test]
fn both_implementations_produce_identical_outcomes() {
    let world = world();
    let morena = run_morena_scenario(&world);
    let handcrafted = run_handcrafted_scenario(&world);
    assert_eq!(morena, handcrafted);
    assert_eq!(
        morena,
        ScenarioOutcome {
            provision_toast: true,
            guest_network: Some("shared-net".into()),
            guest_join_toast: true,
        }
    );
}

#[test]
fn tag_written_by_morena_is_read_by_handcrafted() {
    let world = world();
    let writer_phone = world.add_phone("writer");
    let reader_phone = world.add_phone("reader");
    let sticker = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));

    let writer =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, writer_phone), WifiManager::new());
    writer.provision(WifiConfig::new("cross-impl", "x"));
    world.tap_tag(sticker, writer_phone);
    assert!(writer.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10)));
    world.remove_tag_from_field(sticker);
    writer.close();

    let reader = HandcraftedWifiApp::launch(&world, reader_phone, WifiManager::new());
    world.tap_tag(sticker, reader_phone);
    assert!(reader.toasts().wait_for("Joining Wifi network cross-impl", Duration::from_secs(10)));
}

#[test]
fn tag_written_by_handcrafted_is_read_by_morena() {
    let world = world();
    let writer_phone = world.add_phone("writer");
    let reader_phone = world.add_phone("reader");
    let sticker = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(4))));

    let writer = HandcraftedWifiApp::launch(&world, writer_phone, WifiManager::new());
    writer.provision(WifiConfig::new("cross-impl-2", "y"));
    world.tap_tag(sticker, writer_phone);
    assert!(writer.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10)));
    world.remove_tag_from_field(sticker);

    let reader =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, reader_phone), WifiManager::new());
    world.tap_tag(sticker, reader_phone);
    assert!(reader.toasts().wait_for("Joining Wifi network cross-impl-2", Duration::from_secs(10)));
    reader.close();
}

#[test]
fn morena_batches_share_where_handcrafted_fails_without_peer() {
    let world = world();
    let m_phone = world.add_phone("m");
    let h_phone = world.add_phone("h");
    let morena =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, m_phone), WifiManager::new());
    let handcrafted = HandcraftedWifiApp::launch(&world, h_phone, WifiManager::new());

    // Neither has a peer in range.
    morena.share(WifiConfig::new("n", "k"));
    handcrafted.share(WifiConfig::new("n", "k"));

    // The handcrafted share fails outright…
    assert!(handcrafted.toasts().wait_for("Failed to share WiFi joiner", Duration::from_secs(10)));
    // …while the MORENA share stays queued, and succeeds when a peer
    // appears.
    assert_eq!(morena.space().broadcast_queue_len(), 1);
    let peer_phone = world.add_phone("late-peer");
    let peer =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, peer_phone), WifiManager::new());
    world.bring_phones_together(m_phone, peer_phone);
    assert!(morena.toasts().wait_for("WiFi joiner shared!", Duration::from_secs(10)));
    assert!(peer.toasts().wait_for("Joining Wifi network n", Duration::from_secs(10)));
    morena.close();
    peer.close();
}
