//! The policy matrix: every backoff curve crossed with write coalescing
//! on/off, both execution policies, and the seeded fault classes a
//! policy most plausibly interacts with. Whatever the knobs say, the
//! §3.2 guarantees must hold in every cell:
//!
//! * exactly-once delivery — each queued write's listener fires once;
//! * FIFO completion order per reference;
//! * byte-identical final tag content — the last queued write, whether
//!   the batch flushed per-op or as one coalesced exchange;
//! * coalescing actually saves exchanges when it legally can.
//!
//! Plus the regression the policy layer exists for: two loops
//! recovering from the same RF drop must not retry in lock-step.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::policy::{Backoff, BackoffState, JitterRng, Policy};
use morena::prelude::*;
use morena::sim::faults::{FaultKind, FaultPlan, FaultRates};

const OPS: usize = 6;

/// Both execution policies, exercised by every matrix cell.
fn exec_policies() -> [ExecutionPolicy; 2] {
    [ExecutionPolicy::ThreadPerLoop, ExecutionPolicy::Sharded { workers: 2 }]
}

/// The three curves, with bounds small enough to keep the matrix fast.
fn curves() -> [Backoff; 3] {
    [
        Backoff::constant(Duration::from_millis(1)),
        Backoff::exponential(Duration::from_millis(1), Duration::from_millis(8)),
        Backoff::decorrelated(Duration::from_millis(1), Duration::from_millis(8)),
    ]
}

fn rates_for(kind: FaultKind) -> FaultRates {
    let rate = match kind {
        FaultKind::TornWrite => 0.35,
        _ => 0.20,
    };
    FaultRates::only(kind, rate)
}

struct CellOutcome {
    /// Completion indices in arrival order.
    order: Vec<usize>,
    /// What a clean read found on the tag after the plan was drained.
    on_tag: Option<String>,
    /// `coalesce.saved_exchanges` at the end of the cell.
    saved_exchanges: u64,
    /// Ground truth from the drained plan.
    injected: u64,
}

/// One cell: N writes queued against an absent tag, one tap flushes the
/// batch under the given curve/coalescing/execution policy while the
/// seeded plan injects `kind`.
fn run_cell(kind: FaultKind, exec: ExecutionPolicy, curve: Backoff, coalesce: bool) -> CellOutcome {
    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 1);
    world.install_fault_plan(
        FaultPlan::new(0x90_11C7 ^ kind as u64, rates_for(kind))
            .with_delays(Duration::from_millis(1), Duration::from_millis(1)),
    );
    let phone = world.add_phone("matrix");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(11))));
    let ctx = MorenaContext::headless_with(&world, phone, exec);
    let tag = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(Duration::from_secs(30))
            .with_backoff(curve)
            .with_coalesce_writes(coalesce),
    );

    // Queue the whole batch while the tag is away, then tap once: the
    // coalescable shape (a contiguous run of same-region writes).
    let (tx, rx) = unbounded();
    for i in 0..OPS {
        let tx = tx.clone();
        tag.write(
            format!("update-{i}"),
            move |_| tx.send(i).unwrap(),
            move |_, f| panic!("write {i} failed permanently: {f}"),
        );
    }
    assert_eq!(tag.queue_len(), OPS, "all writes queue while the tag is away");
    world.tap_tag(uid, phone);

    let mut order = Vec::with_capacity(OPS);
    for _ in 0..OPS {
        order.push(rx.recv_timeout(Duration::from_secs(30)).expect("no stranded listener"));
    }
    // Exactly once: nothing further may arrive.
    std::thread::sleep(Duration::from_millis(30));
    assert!(rx.try_recv().is_err(), "duplicate listener delivery");

    let saved_exchanges = world.obs().metrics().counter("coalesce.saved_exchanges").get();
    let plan = world.clear_fault_plan().expect("plan was installed");
    let on_tag = match ctx.nfc().ndef_read(uid) {
        Ok(bytes) if bytes.is_empty() => None,
        Ok(bytes) => Some(
            String::from_utf8(
                NdefMessage::parse(&bytes).expect("clean read parses").first().payload().to_vec(),
            )
            .expect("clean read is utf-8"),
        ),
        Err(e) => panic!("clean read after clearing the plan failed: {e}"),
    };
    tag.close();
    CellOutcome { order, on_tag, saved_exchanges, injected: plan.stats().total() }
}

/// Every curve × coalescing × execution policy × recoverable fault
/// class: exactly-once, FIFO, and the last write on the tag.
#[test]
fn every_policy_cell_preserves_the_core_guarantees() {
    for kind in [FaultKind::RfDrop, FaultKind::StuckTag, FaultKind::TornWrite] {
        // A coalesced cell flushes the whole batch in one exchange run,
        // so a single cell may legitimately dodge the seeded schedule;
        // across the kind's twelve cells the plan must have fired.
        let mut injected_for_kind = 0;
        for exec in exec_policies() {
            for curve in curves() {
                for coalesce in [false, true] {
                    let label = format!("{kind:?}/{exec:?}/{}/coalesce={coalesce}", curve.label());
                    let cell = run_cell(kind, exec, curve, coalesce);
                    injected_for_kind += cell.injected;
                    assert_eq!(
                        cell.order,
                        (0..OPS).collect::<Vec<_>>(),
                        "FIFO violated under {label}"
                    );
                    assert_eq!(
                        cell.on_tag.as_deref(),
                        Some("update-5"),
                        "final content diverged under {label}"
                    );
                    if !coalesce {
                        assert_eq!(
                            cell.saved_exchanges, 0,
                            "coalescing fired while disabled under {label}"
                        );
                    }
                }
            }
        }
        assert!(injected_for_kind > 0, "the {kind:?} plan never fired across the whole matrix");
    }
}

/// With coalescing on, a stuck tag (held through one tap) still yields
/// the batch win: the queued run collapses and the savings counter
/// records it.
#[test]
fn coalescing_saves_exchanges_under_stuck_tag() {
    for exec in exec_policies() {
        let cell = run_cell(
            FaultKind::StuckTag,
            exec,
            Backoff::exponential(Duration::from_millis(1), Duration::from_millis(8)),
            true,
        );
        // The whole queued run was present at flush, so at least one
        // batch must have collapsed (a full collapse saves OPS-1).
        assert!(
            cell.saved_exchanges > 0,
            "no exchanges saved under stuck_tag/{exec:?} with coalescing on"
        );
        assert!(
            cell.saved_exchanges <= (OPS - 1) as u64,
            "impossible savings {} for {OPS} queued writes",
            cell.saved_exchanges
        );
    }
}

/// The synchronized-retry regression (the bug this layer fixes): two
/// loops recovering from the same RF drop must not re-attempt in
/// lock-step. Per-loop jitter is deterministic (seeded from the loop
/// name), so this asserts the exact anti-phase property, not luck.
#[test]
fn two_loops_recovering_from_the_same_rf_drop_do_not_retry_in_sync() {
    // The loops' names are their jitter seeds; these are the names two
    // tag references would get for these uids.
    let curve = Policy::default().backoff;
    assert!(
        matches!(curve, Backoff::Exponential { .. }),
        "default backoff regressed to a non-jittered curve"
    );
    let mut loop_a = BackoffState::new(JitterRng::from_name("tag-1"));
    let mut loop_b = BackoffState::new(JitterRng::from_name("tag-2"));
    // Same shared fault: both loops' heads fail transiently, repeatedly.
    let schedule_a: Vec<Duration> = (0..8).map(|_| loop_a.next_delay(&curve, 7)).collect();
    let schedule_b: Vec<Duration> = (0..8).map(|_| loop_b.next_delay(&curve, 7)).collect();
    assert_ne!(schedule_a, schedule_b, "loops retry in lock-step after a shared fault");
    // Under the old constant curve every loop retried on the identical
    // grid — the storm this layer exists to prevent.
    let constant = Backoff::constant(Duration::from_millis(25));
    let mut c_a = BackoffState::new(JitterRng::from_name("tag-1"));
    let mut c_b = BackoffState::new(JitterRng::from_name("tag-2"));
    let storm_a: Vec<Duration> = (0..8).map(|_| c_a.next_delay(&constant, 7)).collect();
    let storm_b: Vec<Duration> = (0..8).map(|_| c_b.next_delay(&constant, 7)).collect();
    assert_eq!(storm_a, storm_b, "sanity: the constant curve is the lock-step behavior");
}

/// End-to-end flavor of the same regression: two references on one
/// noisy world retry through a shared RF-drop plan; their observed
/// attempt schedules must diverge (the default policy jitters), and
/// both must still deliver.
#[test]
fn two_references_desynchronize_their_recovery_attempts() {
    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 1);
    let ring = Arc::new(RingSink::new(8192));
    world.obs().install(ring.clone());
    world.install_fault_plan(
        FaultPlan::new(0xDE5C, FaultRates::only(FaultKind::RfDrop, 0.2))
            .with_delays(Duration::from_millis(1), Duration::from_millis(1)),
    );
    let phone = world.add_phone("pair");
    let uid_a = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(21))));
    let uid_b = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(22))));
    world.tap_tag(uid_a, phone);
    world.tap_tag(uid_b, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let converter = Arc::new(StringConverter::plain_text());
    // The jittered exponential curve under test, with bounds small
    // enough to keep the noisy drain quick and a roomy deadline so the
    // plan cannot time an op out.
    let policy = Policy::new()
        .with_timeout(Duration::from_secs(60))
        .with_backoff(Backoff::exponential(Duration::from_millis(1), Duration::from_millis(8)));
    let tag_a =
        TagReference::with_policy(&ctx, uid_a, TagTech::Type2, converter.clone(), policy.clone());
    let tag_b = TagReference::with_policy(&ctx, uid_b, TagTech::Type2, converter, policy);

    // Several writes per reference: across 2×6 operations on a 20%-drop
    // link, both loops retry at least once with near-certainty, keeping
    // the regression check meaningful without a long tail.
    let (tx, rx) = unbounded();
    for (i, tag) in [&tag_a, &tag_b].into_iter().enumerate() {
        for op in 0..OPS {
            let tx = tx.clone();
            tag.write(
                format!("payload-{i}-{op}"),
                move |_| tx.send(i).unwrap(),
                move |_, f| panic!("write {i}-{op} failed: {f}"),
            );
        }
    }
    for _ in 0..2 * OPS {
        rx.recv_timeout(Duration::from_secs(60)).expect("all writes deliver through the noise");
    }
    tag_a.close();
    tag_b.close();

    // Reconstruct each loop's attempt-start schedule from the ring:
    // op_id → loop via OpSubmitted, then OpAttempt starts per loop.
    let events = ring.snapshot();
    let mut op_loop = std::collections::HashMap::new();
    for event in &events {
        if let morena::obs::EventKind::OpEnqueued { op_id, loop_name, .. } = &event.kind {
            op_loop.insert(*op_id, loop_name.clone());
        }
    }
    let name_a = format!("tag-{uid_a}");
    let name_b = format!("tag-{uid_b}");
    let mut starts_a = Vec::new();
    let mut starts_b = Vec::new();
    for event in &events {
        if let morena::obs::EventKind::OpAttempt { op_id, started_nanos, .. } = &event.kind {
            match op_loop.get(op_id) {
                Some(name) if *name == name_a => starts_a.push(*started_nanos),
                Some(name) if *name == name_b => starts_b.push(*started_nanos),
                _ => {}
            }
        }
    }
    assert!(
        starts_a.len() > OPS && starts_b.len() > OPS,
        "the drop plan must force retries on both loops \
         ({} / {} attempts for {OPS} ops each)",
        starts_a.len(),
        starts_b.len()
    );
    // The anti-storm property as observed on the wire: the two loops'
    // attempt instants never line up exactly while both recover.
    let sync_hits = starts_a.iter().filter(|start| starts_b.contains(start)).count();
    assert_eq!(sync_hits, 0, "retry attempts landed on identical instants: lock-step recovery");
}
