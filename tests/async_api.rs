//! Integration coverage for the async futures surface: round trips
//! through `read_async`/`write_async`/`make_read_only_async`, peer and
//! lease futures, and — the load-bearing part — drop/cancel semantics:
//!
//! * dropping a pending future withdraws the operation (it is swept as
//!   cancelled, never completes, and never wakes the dropped waker);
//! * a steady-state submit→drop cycle is allocation-free on the caller
//!   thread, proving the pooled completion core really is reused
//!   (asserted whenever the `alloc-profile` counting allocator is
//!   compiled in — CI runs this suite with `--features alloc-profile`);
//! * a ticket cancel racing completion resolves **exactly once**;
//! * closing the reference delivers a terminal [`OpFailure::Cancelled`]
//!   to blocked sync callers and pending futures instead of hanging.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Wake, Waker};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use morena::obs::profile::{self, AllocScope};
use morena::prelude::*;

const POLICIES: [ExecutionPolicy; 2] =
    [ExecutionPolicy::ThreadPerLoop, ExecutionPolicy::Sharded { workers: 2 }];

/// One phone, one NTAG215 sticker (tapped only when `in_range`), and a
/// far reference driven by the given execution policy over real time.
fn fixture(
    policy: ExecutionPolicy,
    seed: u64,
    in_range: bool,
) -> (World, PhoneId, TagUid, TagReference<StringConverter>) {
    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), seed);
    let phone = world.add_phone("async-api");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(seed as u32))));
    if in_range {
        world.tap_tag(uid, phone);
    }
    let ctx = MorenaContext::headless_with(&world, phone, policy);
    let tag = TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    (world, phone, uid, tag)
}

/// Spins until `done` observes the expected state or `what` is declared
/// hung. Real-time tests only.
fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        thread::sleep(Duration::from_millis(2));
    }
}

struct CountingWaker(AtomicUsize);

impl Wake for CountingWaker {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn futures_round_trip_under_both_policies() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let (_world, _phone, _uid, tag) = fixture(policy, 11 + i as u64, true);

        block_on(tag.write_async("paper".to_string())).unwrap();
        assert_eq!(tag.cached().as_deref(), Some("paper"), "{policy:?}");

        // Forget the cache so the read must decode from the wire again.
        tag.set_cached(None);
        let value = block_on(tag.read_async()).unwrap();
        assert_eq!(value.as_deref(), Some("paper"), "{policy:?}");

        // A byte-identical follow-up read keeps the cached value.
        let value = block_on(tag.read_async_with_timeout(Duration::from_secs(30))).unwrap();
        assert_eq!(value.as_deref(), Some("paper"), "{policy:?}");

        block_on(tag.make_read_only_async()).unwrap();
        let value = block_on(tag.read_async()).unwrap();
        assert_eq!(value.as_deref(), Some("paper"), "{policy:?}");
        tag.close();
    }
}

#[test]
fn future_surfaces_timeout_as_terminal_failure() {
    let (_world, _phone, _uid, tag) = fixture(ExecutionPolicy::ThreadPerLoop, 23, false);
    let err = block_on(tag.read_async_with_timeout(Duration::from_millis(50))).unwrap_err();
    assert_eq!(err, OpFailure::TimedOut);
    tag.close();
}

#[test]
fn dropped_future_cancels_without_waking() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let (world, phone, uid, tag) = fixture(policy, 31 + i as u64, false);
        let wakes = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&wakes));
        let mut cx = Context::from_waker(&waker);

        // Tag out of range: the first poll must park, registering our
        // counting waker with the loop.
        let mut future = tag.read_async();
        assert!(Pin::new(&mut future).poll(&mut cx).is_pending(), "{policy:?}");
        drop(future);

        let stats = tag.stats();
        wait_until("dropped op swept as cancelled", || stats.snapshot().cancelled == 1);

        // The tag arriving *after* the drop must not resurrect the op —
        // nothing completes, and the dropped waker never fires.
        world.tap_tag(uid, phone);
        thread::sleep(Duration::from_millis(50));
        let snap = stats.snapshot();
        assert_eq!(snap.succeeded, 0, "cancelled op completed anyway ({policy:?})");
        assert_eq!(
            wakes.0.load(Ordering::SeqCst),
            0,
            "waker invoked after its future was dropped ({policy:?})"
        );
        tag.close();
    }
}

#[test]
fn dropped_future_returns_its_node_to_the_pool() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let (_world, _phone, _uid, tag) = fixture(policy, 47 + i as u64, false);
        let stats = tag.stats();
        let mut swept = 0u64;
        let mut cycle = |measure: bool| -> u64 {
            let scope = measure.then(AllocScope::thread);
            drop(tag.read_async());
            let allocs = scope.map(|s| s.stats().allocs).unwrap_or(0);
            swept += 1;
            wait_until("submit→drop cycle swept", || stats.snapshot().cancelled >= swept);
            allocs
        };

        // Warm-up populates the completion-core freelist and grows the
        // op queue to its high-water capacity.
        for _ in 0..64 {
            cycle(false);
        }
        if !profile::ENABLED {
            // Without the counting allocator the cycles above still
            // exercise the pool; the zero-allocation claim is CI's.
            continue;
        }
        // The previous core is recycled on the loop thread, so a single
        // measured cycle can race the recycle; any one clean cycle out
        // of five proves the node came from the pool.
        let mut attempts = Vec::new();
        for _ in 0..5 {
            let allocs = cycle(true);
            attempts.push(allocs);
            if allocs == 0 {
                break;
            }
        }
        assert_eq!(
            attempts.last().copied(),
            Some(0),
            "steady-state submit→drop kept allocating ({policy:?}): {attempts:?}"
        );
        tag.close();
    }
}

#[test]
fn cancel_racing_completion_resolves_exactly_once() {
    const ROUNDS: usize = 400;
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let (_world, _phone, _uid, tag) = fixture(policy, 61 + i as u64, true);
        let fired = Arc::new(AtomicUsize::new(0));
        for round in 0..ROUNDS {
            let ok = Arc::clone(&fired);
            let err = Arc::clone(&fired);
            let ticket = tag.read(
                move |_| {
                    ok.fetch_add(1, Ordering::SeqCst);
                },
                move |_, _| {
                    err.fetch_add(1, Ordering::SeqCst);
                },
            );
            // Vary the race window: sometimes cancel lands before the
            // attempt, sometimes mid-completion, sometimes after.
            if round % 3 == 0 {
                thread::yield_now();
            }
            ticket.cancel();
        }

        let stats = tag.stats();
        wait_until("every op reaches a terminal state", || {
            let snap = stats.snapshot();
            snap.succeeded + snap.cancelled + snap.failed + snap.timed_out >= ROUNDS as u64
        });
        wait_until("every listener delivered", || fired.load(Ordering::SeqCst) >= ROUNDS);
        // Grace period to catch any *second* resolution of the same op.
        thread::sleep(Duration::from_millis(100));
        assert_eq!(
            fired.load(Ordering::SeqCst),
            ROUNDS,
            "an op resolved both as completed and as cancelled ({policy:?})"
        );
        tag.close();
    }
}

#[test]
fn close_releases_blocked_sync_callers() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let (_world, _phone, _uid, tag) = fixture(policy, 71 + i as u64, false);
        let (tx, rx) = unbounded();
        let blocked = tag.clone();
        thread::spawn(move || {
            tx.send(blocked.read_sync(Duration::from_secs(600))).unwrap();
        });
        // Let the op queue and the caller park before pulling the plug.
        thread::sleep(Duration::from_millis(50));
        tag.close();
        let result =
            rx.recv_timeout(Duration::from_secs(10)).expect("read_sync still blocked after close");
        assert_eq!(result.unwrap_err(), OpFailure::Cancelled, "{policy:?}");

        // Submitting against a closed reference fails immediately — the
        // sync adapters and the futures give the same terminal answer.
        assert_eq!(
            tag.read_sync(Duration::from_secs(1)).unwrap_err(),
            OpFailure::Cancelled,
            "{policy:?}"
        );
        assert_eq!(
            tag.write_sync("x".to_string(), Duration::from_secs(1)).unwrap_err(),
            OpFailure::Cancelled,
            "{policy:?}"
        );
        assert_eq!(block_on(tag.read_async()).unwrap_err(), OpFailure::Cancelled, "{policy:?}");
        assert_eq!(
            block_on(tag.write_async("y".to_string())).unwrap_err(),
            OpFailure::Cancelled,
            "{policy:?}"
        );
        assert_eq!(
            block_on(tag.make_read_only_async()).unwrap_err(),
            OpFailure::Cancelled,
            "{policy:?}"
        );
    }
}

#[test]
fn close_resolves_pending_futures_with_cancelled() {
    let (_world, _phone, _uid, tag) = fixture(ExecutionPolicy::Sharded { workers: 2 }, 83, false);
    let (tx, rx) = unbounded();
    let pending = tag.clone();
    thread::spawn(move || {
        tx.send(block_on(pending.read_async())).unwrap();
    });
    thread::sleep(Duration::from_millis(50));
    tag.close();
    let result = rx.recv_timeout(Duration::from_secs(10)).expect("future never resolved");
    assert_eq!(result.unwrap_err(), OpFailure::Cancelled);
}

struct Collect {
    tx: Sender<(PhoneId, String)>,
}

impl PeerListener<StringConverter> for Collect {
    fn on_message(&self, from: PhoneId, value: String) {
        self.tx.send((from, value)).unwrap();
    }
}

#[test]
fn peer_send_async_resolves_and_delivers() {
    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 91);
    let alice = world.add_phone("alice");
    let bob = world.add_phone("bob");
    let actx = MorenaContext::headless(&world, alice);
    let bctx = MorenaContext::headless(&world, bob);
    let conv = Arc::new(StringConverter::plain_text());
    let (tx, rx) = unbounded();
    let _inbox = PeerInbox::new(&bctx, Arc::clone(&conv), Arc::new(Collect { tx }));
    let to_bob = PeerReference::new(&actx, bob, Arc::clone(&conv));

    world.bring_phones_together(alice, bob);
    block_on(to_bob.send_async("ping".to_string())).unwrap();
    let (from, value) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!((from, value.as_str()), (alice, "ping"));
    to_bob.close();
}

#[test]
fn lease_futures_run_the_blocking_protocol() {
    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 97);
    let phone = world.add_phone("holder");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(9))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let manager = LeaseManager::new(&ctx);

    assert_eq!(block_on(manager.inspect_async(uid)).unwrap(), None);
    let lease = block_on(manager.acquire_async(uid, Duration::from_secs(60))).unwrap();
    let lease = block_on(manager.renew_async(&lease, Duration::from_secs(120))).unwrap();
    assert!(block_on(manager.inspect_async(uid)).unwrap().is_some());
    block_on(manager.release_async(&lease)).unwrap();
    assert_eq!(block_on(manager.inspect_async(uid)).unwrap(), None);
}
