//! Property tests for the obs crate's hand-rolled JSON: any event —
//! whatever bytes end up in its names — must render as a single line of
//! valid, pure-ASCII JSON whose string values round-trip exactly.

use morena::obs::{AttemptOutcome, EventKind, ObsEvent, OpKind};
use proptest::prelude::*;

/// Offline builds substitute a serde_json stub whose parser always
/// errors; parse-side assertions only mean something against the real
/// crate.
fn parser_available() -> bool {
    serde_json::from_str::<serde_json::Value>("0").is_ok()
}

fn arb_event() -> impl Strategy<Value = ObsEvent> {
    let kind = prop_oneof![
        (any::<u64>(), any::<String>(), any::<u64>(), any::<String>()).prop_map(
            |(op_id, loop_name, phone, target)| EventKind::OpEnqueued {
                op_id,
                loop_name,
                phone,
                target,
                op: OpKind::Write,
                deadline_nanos: 7,
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(op_id, duration_nanos)| EventKind::OpAttempt {
            op_id,
            started_nanos: 1,
            duration_nanos,
            outcome: AttemptOutcome::Transient,
        }),
        (any::<u64>(), any::<String>(), any::<bool>()).prop_map(|(phone, target, redetection)| {
            EventKind::TagDetected { phone, target, redetection }
        }),
        (any::<u64>(), any::<String>()).prop_map(|(phone, target)| EventKind::FaultInjected {
            phone,
            target,
            fault: "torn_write",
        }),
    ];
    (any::<u64>(), any::<u64>(), kind).prop_map(|(seq, at_nanos, kind)| ObsEvent {
        seq,
        at_nanos,
        trace: None,
        kind,
    })
}

/// The string value the event carries in its `target`-like slot, if any.
fn embedded_name(event: &ObsEvent) -> Option<&str> {
    match &event.kind {
        EventKind::OpEnqueued { target, .. }
        | EventKind::TagDetected { target, .. }
        | EventKind::FaultInjected { target, .. } => Some(target),
        _ => None,
    }
}

proptest! {
    /// JSONL lines are pure ASCII and newline-free no matter what bytes
    /// a name contains — control characters, quotes, and non-ASCII all
    /// travel as `\uXXXX` escapes (surrogate pairs beyond the BMP).
    #[test]
    fn event_json_is_always_one_ascii_line(event in arb_event()) {
        let json = event.to_json();
        prop_assert!(json.is_ascii(), "non-ASCII leaked into JSON: {json:?}");
        prop_assert!(!json.contains('\n'), "newline leaked into JSONL line: {json:?}");
        prop_assert!(!json.bytes().any(|b| b < 0x20), "raw control byte: {json:?}");
    }

    /// The rendered line is valid JSON and the escaping is lossless:
    /// parsing recovers the exact original string value.
    #[test]
    fn event_json_parses_and_names_round_trip(event in arb_event()) {
        if parser_available() {
            let parsed: serde_json::Value = serde_json::from_str(&event.to_json())
                .expect("hand-rolled JSON must parse");
            prop_assert_eq!(parsed["seq"].as_u64(), Some(event.seq));
            prop_assert_eq!(parsed["at_ns"].as_u64(), Some(event.at_nanos));
            prop_assert_eq!(parsed["type"].as_str(), Some(event.kind.type_label()));
            if let Some(name) = embedded_name(&event) {
                prop_assert_eq!(parsed["target"].as_str(), Some(name), "lossy escape");
            }
        }
    }
}
