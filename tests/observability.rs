//! Integration tests for the `morena-obs` layer: middleware op events
//! and simulator ground truth flow through one recorder, and
//! [`correlate`] attributes each op's latency into out-of-range wait,
//! exchange time, and queue delay that sum exactly to the total.

use std::io::Write as IoWrite;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::obs::{ObsSink, OpKind, OpOutcome};
use morena::prelude::*;

fn noisy_free_link(setup: Duration) -> LinkModel {
    LinkModel {
        setup_latency: setup,
        per_byte_latency: Duration::from_micros(5),
        base_failure_prob: 0.0,
        edge_failure_prob: 0.0,
        ..LinkModel::realistic()
    }
}

/// Build a world with a ring sink already recording, one phone, and one
/// tag that starts out of range.
fn observed_world(link: LinkModel) -> (World, Arc<RingSink>, PhoneId, TagUid) {
    let world = World::with_link(Arc::new(SystemClock::new()), link, 11);
    let ring = Arc::new(RingSink::new(16_384));
    world.obs().install(ring.clone());
    let phone = world.add_phone("observer");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(9))));
    (world, ring, phone, uid)
}

fn write_and_wait(reference: &TagReference<StringConverter>, value: &str, timeout: Duration) {
    let (tx, rx) = unbounded();
    let err = tx.clone();
    reference.write(
        value.to_string(),
        move |_| {
            let _ = tx.send(true);
        },
        move |_, f| {
            let _ = err.send(false);
            panic!("write failed: {f}");
        },
    );
    assert!(rx.recv_timeout(timeout).unwrap_or(false), "write timed out");
}

/// An op enqueued while the tag is far away must show the time the tag
/// was physically absent as out-of-range wait — and the three latency
/// components must sum exactly to the total.
#[test]
fn out_of_range_wait_is_attributed_and_components_sum_to_total() {
    let (world, ring, phone, uid) = observed_world(noisy_free_link(Duration::from_micros(200)));
    let ctx = MorenaContext::headless(&world, phone);
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));

    // Submit while the tag is nowhere near the phone, let it wait, then
    // tap: the wait is physics, not middleware overhead.
    let (tx, rx) = unbounded();
    let err = tx.clone();
    reference.write(
        "queued far away".to_string(),
        move |_| {
            let _ = tx.send(true);
        },
        move |_, f| {
            let _ = err.send(false);
            panic!("write failed: {f}");
        },
    );
    std::thread::sleep(Duration::from_millis(60));
    world.tap_tag(uid, phone);
    assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap_or(false));
    reference.close();
    world.obs().flush();

    let breakdowns = correlate(&ring.snapshot());
    let write = breakdowns
        .iter()
        .find(|b| b.op == OpKind::Write && b.outcome == OpOutcome::Succeeded)
        .expect("one completed write breakdown");

    assert_eq!(write.target, uid.to_string());
    assert_eq!(write.phone, phone.as_u64());
    assert!(write.attempts >= 1);
    // The tag was absent for ~60ms of the op's lifetime.
    assert!(
        write.out_of_range_nanos >= 20_000_000,
        "expected >=20ms out-of-range wait, got {}ns",
        write.out_of_range_nanos
    );
    for b in &breakdowns {
        assert_eq!(
            b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos,
            b.total_nanos,
            "latency components must sum to total for op {}",
            b.op_id
        );
    }
    assert_eq!(ring.dropped_entries(), 0);
}

/// Back-to-back ops on an in-range tag: the second op's wait behind the
/// first shows up as queue delay, never as out-of-range time.
#[test]
fn head_of_line_blocking_shows_up_as_queue_delay() {
    // A slow link setup makes the first op's exchange long enough that
    // the second op measurably queues behind it.
    let (world, ring, phone, uid) = observed_world(noisy_free_link(Duration::from_millis(5)));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));

    let (tx, rx) = unbounded();
    for i in 0..2 {
        let done = tx.clone();
        let err = tx.clone();
        reference.write(
            format!("burst-{i}"),
            move |_| {
                let _ = done.send(true);
            },
            move |_, f| {
                let _ = err.send(false);
                panic!("write failed: {f}");
            },
        );
    }
    for _ in 0..2 {
        assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap_or(false));
    }
    reference.close();
    world.obs().flush();

    let breakdowns = correlate(&ring.snapshot());
    let writes: Vec<_> = breakdowns.iter().filter(|b| b.op == OpKind::Write).collect();
    assert_eq!(writes.len(), 2);
    // Sorted by op_id = submission order; the tag stayed in range the
    // whole time, so nothing may be blamed on physics.
    let second = writes[1];
    assert_eq!(second.out_of_range_nanos, 0);
    assert!(second.queue_nanos > 0, "second op must have queued behind the first");
    assert_eq!(
        second.out_of_range_nanos + second.exchange_nanos + second.queue_nanos,
        second.total_nanos
    );

    // The middleware counters agree with the trace.
    let metrics = world.obs().metrics().snapshot();
    assert_eq!(metrics.counter("ops.submitted"), 2);
    assert_eq!(metrics.counter("ops.succeeded"), 2);
    let completion = metrics.histogram("op.completion_ns").expect("completion histogram");
    assert_eq!(completion.count(), 2);
}

/// An op still in flight when the stream ends gets a partial breakdown
/// windowed to the stream horizon — and the sum invariant holds for it
/// under the `Sharded` execution policy too (previously only pinned
/// for `ThreadPerLoop`).
#[test]
fn pending_ops_keep_the_sum_invariant_under_sharded_loops() {
    let (world, ring, phone, uid) = observed_world(noisy_free_link(Duration::from_micros(200)));
    let ctx = MorenaContext::headless_with(&world, phone, ExecutionPolicy::Sharded { workers: 2 });

    // Teach the stream where the stuck op's tag is: a brief visit that
    // ends before the op is submitted, so its whole window is absence.
    world.tap_tag(uid, phone);
    std::thread::sleep(Duration::from_millis(20));
    world.remove_tag_from_field(uid);
    std::thread::sleep(Duration::from_millis(5));

    let stuck =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    stuck.write("never lands".to_string(), |_| {}, |_, _| {});
    std::thread::sleep(Duration::from_millis(40));

    // A second tag completes a write, pushing the stream horizon well
    // past the pending op's enqueue.
    let uid2 = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(10))));
    let done =
        TagReference::new(&ctx, uid2, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    world.tap_tag(uid2, phone);
    write_and_wait(&done, "lands", Duration::from_secs(10));
    done.close();
    world.obs().flush();

    let breakdowns = correlate(&ring.snapshot());
    let pending = breakdowns
        .iter()
        .find(|b| b.outcome == OpOutcome::Pending)
        .expect("the stuck write must appear as a pending breakdown");
    assert_eq!(pending.target, uid.to_string());
    assert!(pending.total_nanos > 0, "window must close at the horizon, not the enqueue");
    assert!(
        pending.out_of_range_nanos > 0,
        "the tag was away for the whole pending window: {pending:?}"
    );
    assert!(breakdowns.iter().any(|b| b.outcome == OpOutcome::Succeeded));
    for b in &breakdowns {
        assert_eq!(
            b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos,
            b.total_nanos,
            "sum invariant must hold at the horizon for op {} ({})",
            b.op_id,
            b.outcome.label(),
        );
    }
    stuck.close();
}

/// A `Write`-backed JSONL sink receives one flat, parseable object per
/// event, carrying both middleware and physical event types.
#[test]
fn jsonl_export_is_flat_and_parseable() {
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl IoWrite for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf::default();
    let world = World::with_link(
        Arc::new(SystemClock::new()),
        noisy_free_link(Duration::from_micros(200)),
        3,
    );
    let jsonl = Arc::new(JsonlSink::new(Box::new(buf.clone())));
    world.obs().install(jsonl.clone() as Arc<dyn ObsSink>);
    let phone = world.add_phone("exporter");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(4))));
    world.tap_tag(uid, phone);

    let ctx = MorenaContext::headless(&world, phone);
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    write_and_wait(&reference, "exported", Duration::from_secs(10));
    reference.close();
    world.obs().flush();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("jsonl is utf-8");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty());
    assert_eq!(jsonl.lines_written(), lines.len() as u64);
    assert_eq!(jsonl.write_errors(), 0);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "flat object: {line}");
        for field in ["\"seq\":", "\"at_ns\":", "\"type\":\""] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    // Ground truth and middleware lifecycle share the one stream.
    for needle in [
        "\"type\":\"phys_tag_entered\"",
        "\"type\":\"op_enqueued\"",
        "\"type\":\"op_attempt\"",
        "\"type\":\"op_completed\"",
    ] {
        assert!(lines.iter().any(|l| l.contains(needle)), "no {needle} line in export");
    }
}
