//! Integration tests for live introspection (`morena-obs::inspect`):
//! the watchdog flags a wedged swarm and names the offending loop, a
//! healthy run stays `Healthy`, and the Chrome trace export is
//! well-formed `trace_event` JSON whose event counts match the stream.

use std::sync::Arc;
use std::time::Duration;

use morena::obs::{ChromeTraceSink, EventKind, Health, Watchdog};
use morena::prelude::*;
use morena::sim::faults::{FaultKind, FaultPlan, FaultRates};

fn swarm(world: &World, phones: u64) -> Vec<(TagReference<StringConverter>, TagUid)> {
    (0..phones)
        .map(|i| {
            let phone = world.add_phone(&format!("swarm-{i}"));
            let ctx = MorenaContext::headless(world, phone);
            let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(50 + i as u32))));
            world.tap_tag(uid, phone);
            let tag = TagReference::with_policy(
                &ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
                Policy::new()
                    .with_timeout(Duration::from_secs(30))
                    .with_backoff(Backoff::constant(Duration::from_micros(500))),
            );
            (tag, uid)
        })
        .collect()
}

fn report_for(world: &World) -> (morena::obs::InspectorSnapshot, morena::obs::HealthReport) {
    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let report =
        Watchdog::default().evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    (snapshot, report)
}

/// Every exchange sticks: the head op on each loop piles up retries and
/// the watchdog must flag the run, naming the wedged event loop.
#[test]
fn stuck_tag_swarm_is_flagged_and_the_offending_loop_is_named() {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    world.install_fault_plan(
        FaultPlan::new(5, FaultRates::only(FaultKind::StuckTag, 1.0))
            .with_delays(Duration::from_millis(2), Duration::from_millis(2)),
    );
    let refs = swarm(&world, 2);
    for (tag, _) in &refs {
        tag.write("doomed".to_string(), |_| {}, |_, _| {});
    }

    // Let the retry storm build well past the watchdog's threshold
    // (attempts take ~2 ms each; the default threshold is 8 attempts).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let report = loop {
        std::thread::sleep(Duration::from_millis(40));
        let (_, report) = report_for(&world);
        if report.health != Health::Healthy || std::time::Instant::now() > deadline {
            break report;
        }
    };

    assert_ne!(report.health, Health::Healthy, "a fully stuck swarm must be flagged");
    let expected: Vec<String> = refs.iter().map(|(_, uid)| format!("tag-{uid}")).collect();
    assert!(
        report
            .findings
            .iter()
            .any(|f| expected.iter().any(|name| f.component.contains(name.as_str()))),
        "findings must name a wedged tag loop, got: {:?}",
        report.findings
    );

    // The rendered table carries the same verdict.
    let (snapshot, report) = report_for(&world);
    let top = morena::obs::render_top(&snapshot, &report);
    assert!(top.contains(&report.health.label().to_uppercase()));

    for (tag, _) in refs {
        tag.close();
    }
}

/// The same swarm without a fault plan completes its ops and stays
/// `Healthy` — including the sim's world provider being present.
#[test]
fn healthy_swarm_reports_healthy() {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    let refs = swarm(&world, 2);
    for (tag, _) in &refs {
        tag.write_sync("fine".to_string(), Duration::from_secs(10)).expect("instant link write");
    }

    let (snapshot, report) = report_for(&world);
    assert_eq!(report.health, Health::Healthy, "findings: {:?}", report.findings);
    assert!(report.findings.is_empty());
    assert_eq!(snapshot.loops().count(), 2);
    // The world provider reports both phones with their tag in range.
    let world_state = snapshot.components.iter().find_map(|c| match &c.state {
        morena::obs::ComponentSnapshot::World(w) => Some(w),
        _ => None,
    });
    let world_state = world_state.expect("world snapshot registered");
    assert_eq!(world_state.phones.len(), 2);
    assert!(world_state.phones.iter().all(|p| p.tags_in_range.len() == 1));

    for (tag, _) in refs {
        tag.close();
    }
}

/// The Chrome trace export must be valid `trace_event` JSON and its
/// async begin/end pairs must match the op lifecycle events captured.
#[test]
fn chrome_trace_is_well_formed_and_counts_match_the_stream() {
    // Offline builds substitute a serde_json stub whose parser always
    // errors; the JSON-shape half of this test only means something
    // against the real crate, so probe once and skip if stubbed.
    if serde_json::from_str::<serde_json::Value>("0").is_err() {
        eprintln!("serde_json parser unavailable (offline stub) — skipping trace validation");
        return;
    }
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    let sink = Arc::new(ChromeTraceSink::new());
    world.obs().install(sink.clone());
    let refs = swarm(&world, 2);
    for (tag, _) in &refs {
        for n in 0..3 {
            tag.write_sync(format!("v{n}"), Duration::from_secs(10)).expect("write");
        }
    }
    for (tag, _) in refs {
        tag.close();
    }
    world.obs().flush();

    let json = sink.export();
    let events = sink.take();
    let enqueued = events.iter().filter(|e| matches!(e.kind, EventKind::OpEnqueued { .. })).count();
    let completed =
        events.iter().filter(|e| matches!(e.kind, EventKind::OpCompleted { .. })).count();
    let attempts = events.iter().filter(|e| matches!(e.kind, EventKind::OpAttempt { .. })).count();
    assert_eq!(enqueued, 6);
    assert_eq!(completed, 6);

    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let trace_events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!trace_events.is_empty());
    let count_ph = |ph: &str| trace_events.iter().filter(|e| e["ph"].as_str() == Some(ph)).count();
    assert_eq!(count_ph("b"), enqueued, "one async-begin per enqueue");
    assert_eq!(count_ph("e"), completed, "one async-end per completion");
    assert_eq!(count_ph("X"), attempts, "one complete slice per attempt");
    // Metadata names both processes.
    let names: Vec<&str> = trace_events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M"))
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.contains(&"morena middleware"));
    // Every event carries the required keys (process_name metadata is
    // the only shape without a tid).
    for event in trace_events {
        assert!(event["pid"].is_u64());
        assert!(event["ph"].is_string());
        if event["name"].as_str() != Some("process_name") {
            assert!(event["tid"].is_u64(), "missing tid: {event}");
        }
    }
}
