//! The fault matrix: every injected fault class crossed with both
//! execution policies, driven by the seeded fault-injection layer in
//! `nfc-sim` rather than link-level noise. Under every cell the
//! middleware must keep its §3.2 guarantees:
//!
//! * no stranded listeners — every submitted operation resolves;
//! * exactly-once delivery — each operation's listeners fire once;
//! * FIFO completion order per reference;
//! * a coherent cache — the last value successfully seen, never a
//!   torn or invented one;
//! * write idempotence — retried writes converge on the target value.
//!
//! The schedule is a pure function of the plan's seed, so every cell is
//! reproducible: the same seed yields the same injected-fault log.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::eventloop::OpFailure;
use morena::core::policy::{Backoff, Policy};
use morena::prelude::*;
use morena::sim::faults::{FaultKind, FaultPlan, FaultRates};

/// Both execution policies, exercised by every matrix cell.
fn policies() -> [ExecutionPolicy; 2] {
    [ExecutionPolicy::ThreadPerLoop, ExecutionPolicy::Sharded { workers: 2 }]
}

fn fast_config() -> Policy {
    Policy::new()
        .with_timeout(Duration::from_secs(30))
        .with_backoff(Backoff::exponential(Duration::from_millis(1), Duration::from_millis(8)))
}

/// The injection rate per fault class. Torn writes only fire on write
/// commands (a minority of the exchange stream), so they get a higher
/// rate; corruption gets a lower one because a single faulted exchange
/// can fail an operation permanently and we want a mixed outcome.
fn rates_for(kind: FaultKind) -> FaultRates {
    let rate = match kind {
        FaultKind::TornWrite => 0.35,
        FaultKind::Corruption => 0.10,
        _ => 0.20,
    };
    FaultRates::only(kind, rate)
}

struct CellOutcome {
    /// `(op index, result)` in completion order.
    completions: Vec<(usize, Result<Option<String>, OpFailure>)>,
    /// Values whose writes reported success, in submission order.
    committed: Vec<String>,
    /// What the reference's cache held at the end.
    cached: Option<String>,
    /// The tag's content read directly after the plan was removed.
    on_tag: Option<String>,
    /// Ground truth from the drained plan.
    injected: u64,
    /// The full injected schedule, for determinism comparisons.
    log: Vec<(u64, FaultKind)>,
}

/// Runs one matrix cell: a reference under `policy` against a world with
/// a seeded plan injecting only `kind`, driving an alternating
/// write/read workload and collecting every listener outcome.
fn run_cell(kind: FaultKind, policy: ExecutionPolicy, seed: u64) -> CellOutcome {
    const OPS: usize = 12;

    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 1);
    world.install_fault_plan(
        FaultPlan::new(seed, rates_for(kind))
            .with_delays(Duration::from_millis(2), Duration::from_millis(2)),
    );
    let phone = world.add_phone("tester");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless_with(&world, phone, policy);
    let tag = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        fast_config(),
    );

    // Queue the whole workload up front — writes on even indices, reads
    // on odd — so completions also prove FIFO order under injection.
    let (tx, rx) = unbounded();
    for i in 0..OPS {
        let ok_tx = tx.clone();
        let err_tx = tx.clone();
        if i % 2 == 0 {
            tag.write(
                format!("payload-{i:02}"),
                move |r| ok_tx.send((i, Ok(r.cached()))).unwrap(),
                move |_, f| err_tx.send((i, Err(f))).unwrap(),
            );
        } else {
            tag.read(
                move |r| ok_tx.send((i, Ok(r.cached()))).unwrap(),
                move |_, f| err_tx.send((i, Err(f))).unwrap(),
            );
        }
    }

    let mut completions = Vec::with_capacity(OPS);
    for _ in 0..OPS {
        completions.push(
            rx.recv_timeout(Duration::from_secs(30)).expect("no operation may strand its listener"),
        );
    }
    // Exactly once: nothing else may arrive once everything resolved.
    std::thread::sleep(Duration::from_millis(50));
    assert!(rx.try_recv().is_err(), "duplicate listener delivery under {kind:?}/{policy:?}");

    let committed = completions
        .iter()
        .filter(|(i, r)| i % 2 == 0 && r.is_ok())
        .map(|(i, _)| format!("payload-{i:02}"))
        .collect();
    let cached = tag.cached();
    let plan = world.clear_fault_plan().expect("plan was installed");
    let on_tag = match ctx.nfc().ndef_read(uid) {
        Ok(bytes) if bytes.is_empty() => None,
        Ok(bytes) => Some(
            String::from_utf8(
                NdefMessage::parse(&bytes).expect("clean read parses").first().payload().to_vec(),
            )
            .expect("clean read is utf-8"),
        ),
        Err(e) => panic!("clean read after clearing the plan failed: {e}"),
    };
    tag.close();
    CellOutcome {
        completions,
        committed,
        cached,
        on_tag,
        injected: plan.stats().total(),
        log: plan.log().to_vec(),
    }
}

/// Recoverable classes: every fault is transparently healed by retry
/// (plus verify-after-write), so the full workload must succeed.
#[test]
fn recoverable_faults_are_healed_by_retry() {
    for kind in
        [FaultKind::RfDrop, FaultKind::TornWrite, FaultKind::StuckTag, FaultKind::LatencySpike]
    {
        for policy in policies() {
            let cell = run_cell(kind, policy, 0xFA01);
            assert!(cell.injected > 0, "the plan must actually fire under {kind:?}/{policy:?}");
            let order: Vec<usize> = cell.completions.iter().map(|(i, _)| *i).collect();
            assert_eq!(order, (0..12).collect::<Vec<_>>(), "FIFO under {kind:?}/{policy:?}");
            for (i, result) in &cell.completions {
                assert!(result.is_ok(), "op {i} failed under {kind:?}/{policy:?}: {result:?}");
            }
            let wanted: Vec<String> =
                (0..12).step_by(2).map(|i| format!("payload-{i:02}")).collect();
            assert_eq!(cell.committed, wanted, "all writes commit under {kind:?}/{policy:?}");
            // Idempotent convergence: the tag and the cache both hold
            // the last write, however many times it was retried.
            assert_eq!(cell.on_tag.as_deref(), Some("payload-10"), "{kind:?}/{policy:?}");
            assert_eq!(cell.cached.as_deref(), Some("payload-10"), "{kind:?}/{policy:?}");
        }
    }
}

/// Corruption can fail an operation permanently (a garbled frame is not
/// transient), but it must fail *cleanly*: exactly-once, in order, no
/// timeouts, and whatever ends up on the tag is a genuinely written
/// value — never an invented one.
#[test]
fn corruption_fails_cleanly_without_poisoning_the_tag() {
    for policy in policies() {
        let cell = run_cell(FaultKind::Corruption, policy, 0xFA02);
        assert!(cell.injected > 0, "the plan must actually fire under {policy:?}");
        let order: Vec<usize> = cell.completions.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..12).collect::<Vec<_>>(), "FIFO under corruption/{policy:?}");
        for (i, result) in &cell.completions {
            assert!(
                !matches!(result, Err(OpFailure::TimedOut)),
                "op {i} timed out under corruption/{policy:?}"
            );
        }
        // Corruption only mutates responses, never the tag: its content
        // must be a committed write (or still blank if none landed).
        match &cell.on_tag {
            // Still blank: every write happened to fail before its
            // first page landed. Legal, if unlikely.
            None => {}
            Some(value) => assert!(
                value.starts_with("payload-"),
                "tag holds invented content under {policy:?}: {value:?}"
            ),
        }
    }
}

/// The reproducibility contract of the tentpole: the same seed against
/// the same workload yields the same injected-fault schedule, exchange
/// for exchange.
#[test]
fn same_seed_reproduces_the_same_fault_schedule() {
    for kind in [FaultKind::TornWrite, FaultKind::RfDrop] {
        let first = run_cell(kind, ExecutionPolicy::ThreadPerLoop, 0xFA03);
        let second = run_cell(kind, ExecutionPolicy::ThreadPerLoop, 0xFA03);
        assert!(first.injected > 0, "schedule must be non-trivial for {kind:?}");
        assert_eq!(first.log, second.log, "fault schedule diverged for {kind:?}");
        assert_eq!(first.injected, second.injected);
    }
}

/// Every injected fault is visible to observability: the sim emits one
/// `fault_injected` ground-truth event per firing, correlatable with
/// the middleware's retry activity.
#[test]
fn every_injected_fault_is_observable() {
    let world = World::with_link(SystemClock::shared(), LinkModel::instant(), 1);
    let ring = Arc::new(RingSink::new(4096));
    world.obs().install(ring.clone());
    world.install_fault_plan(FaultPlan::new(7, rates_for(FaultKind::RfDrop)));
    let phone = world.add_phone("watcher");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(9))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let tag = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        fast_config(),
    );
    tag.write_sync("observed".into(), Duration::from_secs(30)).unwrap();
    tag.close();

    let injected = world.fault_stats().total();
    assert!(injected > 0, "plan must fire at least once");
    let seen =
        ring.snapshot().iter().filter(|event| event.kind.type_label() == "fault_injected").count()
            as u64;
    assert_eq!(seen, injected, "each injected fault must emit one obs event");
    assert_eq!(
        world.obs().metrics().counter("sim.fault_injected").get(),
        injected,
        "the sim.fault_injected counter must match the plan's ground truth"
    );
}
