//! MORENA attached to a real (simulated) Android activity — the paper's
//! actual deployment mode: `MorenaContext::from_activity` must deliver
//! every listener on *that activity's* main thread, and the middleware
//! must keep working across the activity lifecycle.

use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use morena::core::discovery::DiscoveryListener;
use morena::prelude::*;
use parking_lot::Mutex;

/// An activity that starts a MORENA discoverer in `on_create` and
/// records which thread its listeners run on.
struct MorenaActivity {
    listener_thread: Sender<ThreadId>,
    discoverer: Mutex<Option<TagDiscoverer<StringConverter>>>,
}

struct ThreadProbe {
    tx: Sender<ThreadId>,
}

impl DiscoveryListener<StringConverter> for ThreadProbe {
    fn on_tag_detected(&self, _reference: TagReference<StringConverter>) {
        self.tx.send(std::thread::current().id()).unwrap();
    }
    fn on_tag_redetected(&self, _reference: TagReference<StringConverter>) {
        self.tx.send(std::thread::current().id()).unwrap();
    }
    fn on_empty_tag(&self, _reference: TagReference<StringConverter>) {
        self.tx.send(std::thread::current().id()).unwrap();
    }
}

impl Activity for MorenaActivity {
    fn on_create(&self, ctx: &ActivityContext) {
        // The paper's pattern: wire MORENA up once, from the activity.
        let morena_ctx = MorenaContext::from_activity(ctx);
        let discoverer = TagDiscoverer::new(
            &morena_ctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(ThreadProbe { tx: self.listener_thread.clone() }),
        );
        *self.discoverer.lock() = Some(discoverer);
    }

    fn on_destroy(&self, _ctx: &ActivityContext) {
        if let Some(discoverer) = self.discoverer.lock().take() {
            discoverer.stop();
        }
    }
}

#[test]
fn listeners_run_on_the_activitys_main_thread() {
    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 31);
    let phone = world.add_phone("activity-phone");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));

    let (tx, rx) = unbounded();
    let activity = Arc::new(MorenaActivity { listener_thread: tx, discoverer: Mutex::new(None) });
    let host = ActivityHost::launch(&world, phone, "morena-activity", activity.clone());

    // The activity's main thread id, observed from inside it.
    let main_id = host.run_sync(|| std::thread::current().id());

    // A blank tap triggers on_empty_tag; its listener must be on main.
    world.tap_tag(uid, phone);
    let listener_ran_on = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(listener_ran_on, main_id, "listener must run on the activity main thread");

    // The discoverer created the unique reference as usual.
    let discoverer_guard = activity.discoverer.lock();
    let discoverer = discoverer_guard.as_ref().unwrap();
    assert!(discoverer.reference_for(uid).is_some());
}

#[test]
fn activity_destruction_stops_discovery_but_not_references() {
    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 32);
    let phone = world.add_phone("activity-phone");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));

    let (tx, rx) = unbounded();
    let activity = Arc::new(MorenaActivity { listener_thread: tx, discoverer: Mutex::new(None) });
    let host = ActivityHost::launch(&world, phone, "morena-activity", activity.clone());

    world.tap_tag(uid, phone);
    rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let reference = activity.discoverer.lock().as_ref().unwrap().reference_for(uid).unwrap();

    // Keep a clone of the reference past the activity's death.
    drop(host);
    std::thread::sleep(Duration::from_millis(50));

    // Discovery is stopped: a re-tap reports nothing.
    world.remove_tag_from_field(uid);
    world.tap_tag(uid, phone);
    assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());

    // But the reference still works (the programmer owns its lifecycle,
    // §3.2) — note its listeners were wired to the dead activity's main
    // thread, so we use the synchronous adapter through a fresh context.
    assert!(reference.is_connected());
    reference.close();
}

#[test]
fn morena_and_raw_intents_coexist_on_one_activity() {
    // An activity can keep using raw intent handling for some flows
    // while MORENA handles others — the decoupling the paper promises.
    struct Hybrid {
        intents_seen: Sender<IntentAction>,
        morena_strings: Sender<String>,
        discoverer: Mutex<Option<TagDiscoverer<StringConverter>>>,
    }

    struct Probe {
        tx: Sender<String>,
    }
    impl DiscoveryListener<StringConverter> for Probe {
        fn on_tag_detected(&self, reference: TagReference<StringConverter>) {
            self.tx.send(reference.cached().unwrap_or_default()).unwrap();
        }
        fn on_tag_redetected(&self, reference: TagReference<StringConverter>) {
            self.tx.send(reference.cached().unwrap_or_default()).unwrap();
        }
    }

    impl Activity for Hybrid {
        fn on_create(&self, ctx: &ActivityContext) {
            let morena_ctx = MorenaContext::from_activity(ctx);
            *self.discoverer.lock() = Some(TagDiscoverer::new(
                &morena_ctx,
                Arc::new(StringConverter::plain_text()),
                Arc::new(Probe { tx: self.morena_strings.clone() }),
            ));
        }
        fn on_new_intent(&self, _ctx: &ActivityContext, intent: Intent) {
            self.intents_seen.send(intent.action()).unwrap();
        }
    }

    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 33);
    let phone = world.add_phone("hybrid");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));

    // Preload a text payload.
    let nfc = NfcHandle::new(world.clone(), phone);
    world.tap_tag(uid, phone);
    nfc.ndef_write(
        uid,
        &NdefMessage::single(NdefRecord::mime("text/plain", b"both worlds".to_vec()).unwrap())
            .to_bytes(),
    )
    .unwrap();
    world.remove_tag_from_field(uid);

    let (intent_tx, intent_rx) = unbounded();
    let (morena_tx, morena_rx) = unbounded();
    let _host = ActivityHost::launch(
        &world,
        phone,
        "hybrid",
        Arc::new(Hybrid {
            intents_seen: intent_tx,
            morena_strings: morena_tx,
            discoverer: Mutex::new(None),
        }),
    );

    world.tap_tag(uid, phone);
    // The raw intent path and the MORENA path both see the same tap.
    assert_eq!(
        intent_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
        IntentAction::NdefDiscovered
    );
    assert_eq!(morena_rx.recv_timeout(Duration::from_secs(10)).unwrap(), "both worlds");
}
