//! Paper conformance suite: one test per load-bearing claim of the
//! MORENA paper, with the claim quoted verbatim. Where the paper
//! promises a behaviour, this file is the checklist proving the
//! reproduction delivers it.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::discovery::DiscoveryListener;
use morena::core::eventloop::OpFailure;
use morena::core::policy::{Backoff, Policy};
use morena::prelude::*;
use parking_lot::Mutex;

fn world() -> (World, PhoneId, MorenaContext) {
    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 2012);
    let phone = world.add_phone("paper");
    let ctx = MorenaContext::headless(&world, phone);
    (world, phone, ctx)
}

fn text_tag(world: &World, ctx: &MorenaContext, seed: u32, content: &str) -> TagUid {
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(seed))));
    world.tap_tag(uid, ctx.phone());
    let msg = StringConverter::plain_text().to_message(&content.to_string()).unwrap();
    ctx.nfc().ndef_write(uid, &msg.to_bytes()).unwrap();
    world.remove_tag_from_field(uid);
    uid
}

/// §1.2: "Ambient-oriented programming requires these primitives to be
/// non-blocking: a process or thread of control should not be suspended
/// if the operation cannot be completed immediately."
#[test]
fn s1_2_operations_never_block_the_caller() {
    let (_world, _phone, ctx) = world();
    let uid = TagUid::from_seed(1);
    // No tag with this uid even exists; submission must return at once.
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    let started = std::time::Instant::now();
    for i in 0..100 {
        reference.write(format!("op-{i}"), |_| {}, |_, _| {});
    }
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "100 submissions against an absent tag must not block"
    );
    assert_eq!(reference.queue_len(), 100);
    reference.close();
}

/// §1.2: "far references … store messages directed towards the remote
/// objects that could not be sent due to physical phenomena" and
/// "attempts to forward its stored messages (in the correct order)".
#[test]
fn s1_2_far_references_store_and_forward_in_order() {
    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    let (tx, rx) = unbounded();
    for i in 0..5 {
        let tx = tx.clone();
        reference.write(format!("stored-{i}"), move |_| tx.send(i).unwrap(), |_, f| panic!("{f}"));
    }
    world.tap_tag(uid, phone); // connectivity restored
    let order: Vec<i32> =
        (0..5).map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
    assert_eq!(order, vec![0, 1, 2, 3, 4]);
    reference.close();
}

/// §3.2: "It is guaranteed that a message is never processed before
/// previously scheduled messages are processed first."
#[test]
fn s3_2_strict_fifo_even_when_later_ops_would_be_faster() {
    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    // A big write queued first, a tiny read queued second: the read must
    // still complete strictly after the write.
    let (tx, rx) = unbounded();
    let tx2 = tx.clone();
    reference.write("x".repeat(400), move |_| tx.send("write").unwrap(), |_, f| panic!("{f}"));
    reference.read(move |_| tx2.send("read").unwrap(), |_, f| panic!("{f}"));
    world.tap_tag(uid, phone);
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "write");
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "read");
    reference.close();
}

/// §3.2: "If an operation times out, it is removed from the queue as
/// well and the next operation is attempted, but this time the failure
/// listener associated with the operation is triggered."
#[test]
fn s3_2_timeout_removes_op_and_fires_failure_listener() {
    let clock = VirtualClock::shared();
    let world = World::with_link(Arc::clone(&clock) as Arc<dyn Clock>, LinkModel::instant(), 3);
    let phone = world.add_phone("paper");
    let ctx = MorenaContext::headless(&world, phone);
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(4))));
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    let (tx, rx) = unbounded();
    let tx_ok = tx.clone();
    reference.write_with_timeout(
        "doomed".into(),
        Duration::from_secs(1),
        |_| panic!("never connects in time"),
        move |_, f| tx.send(("first", format!("{f}"))).unwrap(),
    );
    reference.write_with_timeout(
        "survives".into(),
        Duration::from_secs(3600),
        move |_| tx_ok.send(("second", "ok".into())).unwrap(),
        |_, f| panic!("{f}"),
    );
    clock.advance(Duration::from_secs(2)); // first op's deadline passes
    let (which, failure) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(which, "first");
    assert!(failure.contains("timed out"));
    // The next operation is attempted once connectivity exists.
    world.tap_tag(uid, phone);
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap().0, "second");
    reference.close();
}

/// §3.2: "Listeners … are always asynchronously scheduled for execution
/// in the activity's main thread, which frees the programmer of manual
/// concurrency management."
#[test]
fn s3_2_all_listeners_share_one_main_thread() {
    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(5))));
    world.tap_tag(uid, phone);
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    let (tx, rx) = unbounded();
    for i in 0..8 {
        let tx = tx.clone();
        reference.write(
            format!("{i}"),
            move |_| tx.send(std::thread::current().id()).unwrap(),
            |_, f| panic!("{f}"),
        );
    }
    let ids: Vec<_> = (0..8).map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
    assert!(ids.windows(2).all(|w| w[0] == w[1]), "all listeners on one thread");
    assert_ne!(ids[0], std::thread::current().id(), "and it is not the caller's thread");
    reference.close();
}

/// §3.2: "Within one Android activity, only a single unique tag
/// reference can exist to the same RFID tag" (per-discoverer identity).
#[test]
fn s3_2_one_reference_per_tag() {
    let (world, phone, ctx) = world();
    let uid = text_tag(&world, &ctx, 6, "identity");

    struct Noop;
    impl DiscoveryListener<StringConverter> for Noop {
        fn on_tag_detected(&self, _r: TagReference<StringConverter>) {}
        fn on_tag_redetected(&self, _r: TagReference<StringConverter>) {}
    }
    let discoverer =
        TagDiscoverer::new(&ctx, Arc::new(StringConverter::plain_text()), Arc::new(Noop));
    for round in 0..3 {
        world.tap_tag(uid, phone);
        // Let each sighting be fully processed before the tag leaves.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while discoverer.reference_for(uid).is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(discoverer.reference_for(uid).is_some(), "sighting {round} processed");
        world.remove_tag_from_field(uid);
    }
    assert_eq!(discoverer.references().len(), 1, "three taps, one unique reference");
}

/// §3.2 (cache): the reference "encapsulates a cached version of the
/// contents of the RFID tag, which is updated after each read and write
/// operation", with synchronous access.
#[test]
fn s3_2_cache_updates_after_each_operation() {
    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(7))));
    world.tap_tag(uid, phone);
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    assert_eq!(reference.cached(), None);
    reference.write_sync("v1".into(), Duration::from_secs(10)).unwrap();
    assert_eq!(reference.cached().as_deref(), Some("v1")); // after write
                                                           // Another device changes the tag behind our back…
    ctx.nfc()
        .ndef_write(
            uid,
            &StringConverter::plain_text().to_message(&"v2".to_string()).unwrap().to_bytes(),
        )
        .unwrap();
    assert_eq!(reference.cached().as_deref(), Some("v1"), "cache is stale, as documented");
    // …an asynchronous read refreshes it.
    reference.read_sync(Duration::from_secs(10)).unwrap();
    assert_eq!(reference.cached().as_deref(), Some("v2")); // after read
    reference.close();
}

/// §3.4: "Only when these predicates are satisfied, the listeners are
/// triggered."
#[test]
fn s3_4_check_condition_gates_listeners() {
    let (world, phone, ctx) = world();
    let wanted = text_tag(&world, &ctx, 8, "magic");
    let unwanted = text_tag(&world, &ctx, 9, "mundane");

    struct OnlyMagic {
        hits: Arc<Mutex<Vec<TagUid>>>,
    }
    impl DiscoveryListener<StringConverter> for OnlyMagic {
        fn on_tag_detected(&self, r: TagReference<StringConverter>) {
            self.hits.lock().push(r.uid());
        }
        fn on_tag_redetected(&self, r: TagReference<StringConverter>) {
            self.hits.lock().push(r.uid());
        }
        fn check_condition(&self, r: &TagReference<StringConverter>) -> bool {
            r.cached().as_deref() == Some("magic")
        }
    }
    let hits = Arc::new(Mutex::new(Vec::new()));
    let _d = TagDiscoverer::new(
        &ctx,
        Arc::new(StringConverter::plain_text()),
        Arc::new(OnlyMagic { hits: Arc::clone(&hits) }),
    );
    world.tap_tag(unwanted, phone);
    world.remove_tag_from_field(unwanted);
    world.tap_tag(wanted, phone);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while hits.lock().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(*hits.lock(), vec![wanted]);
}

/// §2.2/§2.4 overloads: "Various overloaded versions of initialize
/// exist, such that for example the failure listener can be omitted or
/// the timeout value can be manually specified."
#[test]
fn s2_overload_surface_exists() {
    // A compile-time conformance check, executed for good measure.
    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(10))));
    world.tap_tag(uid, phone);
    let reference =
        TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
    let (tx, rx) = unbounded();
    reference.write_ok("no failure listener".into(), {
        let tx = tx.clone();
        move |_| tx.send(()).unwrap()
    });
    rx.recv_timeout(Duration::from_secs(10)).unwrap();
    reference.write_with_timeout(
        "explicit timeout".into(),
        Duration::from_secs(30),
        move |_| tx.send(()).unwrap(),
        |_, f| panic!("{f}"),
    );
    rx.recv_timeout(Duration::from_secs(10)).unwrap();
    reference.read_ok(|_| {});
    reference.close();
}

/// §2.5: "Things received via broadcast will not be bound to a
/// particular RFID tag (although they can later be by initializing
/// empty tags with them)."
#[test]
fn s2_5_beamed_things_can_be_bound_later() {
    use morena::core::thing::{BoundThing, EmptyThingSlot, Thing, ThingObserver, ThingSpace};
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Coupon {
        code: String,
    }
    impl Thing for Coupon {
        const TYPE_NAME: &'static str = "coupon";
    }

    struct Keep {
        received: Arc<Mutex<Option<Coupon>>>,
        bound: Arc<Mutex<Option<TagUid>>>,
    }
    impl ThingObserver<Coupon> for Keep {
        fn when_discovered(&self, thing: BoundThing<Coupon>) {
            *self.bound.lock() = Some(thing.uid());
        }
        fn when_discovered_empty(&self, slot: EmptyThingSlot<Coupon>) {
            // Bind the beamed coupon to the first blank tag we see.
            if let Some(coupon) = self.received.lock().clone() {
                slot.initialize_ok(coupon, |_| {});
            }
        }
        fn when_received(&self, thing: Coupon) {
            *self.received.lock() = Some(thing);
        }
    }

    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 25);
    let sender = world.add_phone("sender");
    let receiver = world.add_phone("receiver");
    let sender_ctx = MorenaContext::headless(&world, sender);
    let receiver_ctx = MorenaContext::headless(&world, receiver);

    let received = Arc::new(Mutex::new(None));
    let bound = Arc::new(Mutex::new(None));
    let _space = ThingSpace::<Coupon>::new(
        &receiver_ctx,
        Arc::new(Keep { received: Arc::clone(&received), bound: Arc::clone(&bound) }),
    );
    let sender_space = ThingSpace::<Coupon>::new(
        &sender_ctx,
        Arc::new(Keep { received: Arc::new(Mutex::new(None)), bound: Arc::new(Mutex::new(None)) }),
    );

    // Beam the (unbound) coupon.
    world.bring_phones_together(sender, receiver);
    sender_space.broadcast(Coupon { code: "SAVE10".into() }, || {}, |f| panic!("{f}"));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while received.lock().is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(received.lock().clone().unwrap().code, "SAVE10");

    // Later, a blank tag is tapped: the coupon gets bound to it.
    let blank = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(11))));
    world.tap_tag(blank, receiver);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while receiver_ctx.nfc().ndef_read(blank).map(|b| b.is_empty()).unwrap_or(true)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Re-tap: now it is discovered as a bound thing.
    world.remove_tag_from_field(blank);
    world.tap_tag(blank, receiver);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while bound.lock().is_none() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(*bound.lock(), Some(blank));
}

/// §2.3: "such a thing object like wc encapsulates a cached version of
/// this deserialized object which allows synchronous access to its
/// fields and methods."
#[test]
fn s2_3_things_allow_synchronous_access_after_discovery() {
    use morena::core::thing::{BoundThing, Thing, ThingObserver, ThingSpace};
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Wifi {
        ssid: String,
        key: String,
    }
    impl Thing for Wifi {
        const TYPE_NAME: &'static str = "conformance-wifi";
    }

    struct JoinOnSight {
        joined: Arc<Mutex<Vec<String>>>,
    }
    impl ThingObserver<Wifi> for JoinOnSight {
        fn when_discovered(&self, thing: BoundThing<Wifi>) {
            // Synchronous field access and "method call" right in the
            // callback — the paper's §2.3 usage pattern.
            let wc = thing.value();
            self.joined.lock().push(wc.ssid.clone());
        }
    }

    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(20))));
    world.tap_tag(uid, phone);
    ctx.nfc()
        .ndef_write(uid, &{
            use morena::core::convert::TagDataConverter;
            Wifi::converter()
                .to_message(&Wifi { ssid: "synchronous".into(), key: "k".into() })
                .unwrap()
                .to_bytes()
        })
        .unwrap();
    world.remove_tag_from_field(uid);

    let joined = Arc::new(Mutex::new(Vec::new()));
    let _space = ThingSpace::new(&ctx, Arc::new(JoinOnSight { joined: Arc::clone(&joined) }));
    world.tap_tag(uid, phone);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while joined.lock().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(*joined.lock(), vec!["synchronous".to_string()]);
}

/// §1.1 (drawback being removed): "failure is the rule instead of the
/// exception" — a permanent failure is still reported exactly once, not
/// retried forever.
#[test]
fn s1_1_permanent_failures_are_not_retried() {
    let (world, phone, ctx) = world();
    let uid = world.add_tag(Box::new({
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(12));
        tag.set_read_only(true);
        tag
    }));
    world.tap_tag(uid, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new().with_backoff(Backoff::constant(Duration::from_millis(1))),
    );
    let (tx, rx) = unbounded();
    reference.write("nope".into(), |_| panic!("read-only"), move |_, f| tx.send(f).unwrap());
    assert!(matches!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::Failed(_)));
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(reference.stats().snapshot().attempts, 1, "no retry of permanent failures");
    reference.close();
}
