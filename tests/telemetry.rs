//! Integration tests for the continuous telemetry plane: the
//! OpenMetrics exposition endpoint scraped over real TCP against live
//! middleware metrics, the background sampler's series over a running
//! swarm (including the sim's fault-injection ground truth), and the
//! flight recorder's automatic stall dump naming the stuck component.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use morena::obs::{FlightRecorder, Health, SamplerConfig, WatchdogConfig};
use morena::prelude::*;
use morena::sim::faults::{FaultKind, FaultPlan, FaultRates};

fn tagged_phone(
    world: &World,
    seed: u32,
    timeout: Duration,
) -> (MorenaContext, TagReference<StringConverter>, TagUid) {
    let phone = world.add_phone(&format!("telemetry-{seed}"));
    let ctx = MorenaContext::headless(world, phone);
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(seed))));
    world.tap_tag(uid, phone);
    let tag = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(timeout)
            .with_backoff(Backoff::constant(Duration::from_micros(500))),
    );
    (ctx, tag, uid)
}

fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exposition endpoint");
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: morena\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").expect("header/body split").1
}

/// Value of a single-sample metric line (`<name> <value>`), if present.
fn sample(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("morena-telemetry-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A real Prometheus-style scrape over TCP: valid OpenMetrics framing,
/// live health gauge, ordered cumulative histogram buckets, and counter
/// monotonicity across scrapes while the middleware does work.
#[test]
fn exposition_scrape_is_valid_openmetrics_against_live_metrics() {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    let (ctx, tag, _) = tagged_phone(&world, 91, Duration::from_secs(10));
    tag.write_sync("first".to_string(), Duration::from_secs(10)).expect("instant write");

    let server = ctx.serve_metrics(("127.0.0.1", 0), WatchdogConfig::default()).expect("bind");
    let first = scrape(server.local_addr());
    assert!(first.starts_with("HTTP/1.1 200 OK\r\n"), "got: {first}");
    assert!(first.contains("application/openmetrics-text"), "content type missing: {first}");
    let first_body = body_of(&first).to_string();
    assert!(first_body.trim_end().ends_with("# EOF"), "missing terminator");
    assert_eq!(sample(&first_body, "morena_health"), Some(0.0), "idle swarm must scrape healthy");

    // Histogram framing: `le` bounds strictly increase, cumulative
    // counts never decrease, `+Inf` equals `_count`, and the metadata
    // line precedes the samples.
    assert!(first_body.contains("# TYPE morena_op_attempt_seconds histogram\n"));
    let mut last_le = f64::NEG_INFINITY;
    let mut last_count = 0u64;
    let mut buckets = 0;
    for line in first_body.lines() {
        let Some(rest) = line.strip_prefix("morena_op_attempt_seconds_bucket{le=\"") else {
            continue;
        };
        let (le, count) = rest.split_once("\"} ").expect("bucket sample shape");
        let le: f64 = if le == "+Inf" { f64::INFINITY } else { le.parse().expect("le float") };
        let count: u64 = count.parse().expect("bucket count");
        assert!(le > last_le, "le bounds must increase: {line}");
        assert!(count >= last_count, "cumulative counts must not decrease: {line}");
        last_le = le;
        last_count = count;
        buckets += 1;
    }
    assert!(buckets > 2, "expected a full bucket ladder, saw {buckets}");
    assert_eq!(
        Some(last_count as f64),
        sample(&first_body, "morena_op_attempt_seconds_count"),
        "+Inf bucket must equal _count"
    );

    // More work, then rescrape: every counter present in both scrapes
    // must be monotonic, and the op counters must actually move.
    for n in 0..5 {
        tag.write_sync(format!("more-{n}"), Duration::from_secs(10)).expect("instant write");
    }
    let second_body = body_of(&scrape(server.local_addr())).to_string();
    let mut compared = 0;
    for line in first_body.lines() {
        let Some((name, value)) = line.split_once(' ') else { continue };
        if !name.ends_with("_total") {
            continue;
        }
        let earlier: f64 = value.parse().expect("counter value");
        let later = sample(&second_body, name)
            .unwrap_or_else(|| panic!("counter {name} vanished between scrapes"));
        assert!(later >= earlier, "counter {name} went backwards: {earlier} -> {later}");
        compared += 1;
    }
    assert!(compared >= 3, "expected several counters to compare, got {compared}");
    let submitted = |body: &str| sample(body, "morena_ops_submitted_total").unwrap_or(0.0);
    assert!(
        submitted(&second_body) >= submitted(&first_body) + 5.0,
        "five more writes must show up in ops.submitted"
    );

    tag.close();
}

/// The sampler turns a live fault-injected swarm into rate series —
/// including the simulator's per-class fault ground truth — and the
/// series render as sparklines in `render_top_with_series`.
#[test]
fn sampler_captures_swarm_rates_and_fault_ground_truth() {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    world.install_fault_plan(
        FaultPlan::new(7, FaultRates::only(FaultKind::RfDrop, 0.4))
            .with_delays(Duration::from_micros(200), Duration::from_micros(200)),
    );
    let (ctx, tag, _) = tagged_phone(&world, 92, Duration::from_secs(30));
    let mut sampler = ctx.start_sampler(SamplerConfig {
        interval: Duration::from_millis(5),
        ..SamplerConfig::default()
    });

    for n in 0..40 {
        tag.write_sync(format!("v{n}"), Duration::from_secs(30)).expect("write with retries");
    }
    // Let the sampler tick over the finished work until the series
    // land and a post-completion tick records the recovered verdict
    // (a tick raced mid-run may have seen a transient retry storm).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (sampler.series().latest("ops.submitted").is_none()
        || sampler.series().latest("sim.fault.rf_drop").is_none()
        || sampler.series().latest("inspect.health") != Some(0.0))
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    sampler.stop();

    let store = sampler.series();
    assert!(store.latest("ops.submitted").is_some(), "series: {:?}", store.names());
    assert!(
        store.latest("world.faults_injected").unwrap_or(0.0) > 0.0,
        "world ground-truth series must report injected faults"
    );
    assert!(
        store.points("sim.fault.rf_drop").map_or(0, |p| p.len()) > 0,
        "per-class fault counter must become a series"
    );
    assert_eq!(store.latest("inspect.health"), Some(0.0), "swarm finished healthy");
    assert!(store.latest("inspect.mem_bytes").unwrap_or(0.0) > 0.0);
    // Rate queries work on the retained window.
    assert!(store.derivative_per_sec("inspect.queue_depth").is_some());

    // History renders: TREND column for the loop, series lines below.
    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let report = morena::obs::Watchdog::default()
        .evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    let top = morena::obs::render_top_with_series(&snapshot, &report, store);
    assert!(top.contains("TREND"), "got: {top}");
    assert!(top.contains("series ops.submitted"), "got: {top}");

    // The sampler metered its own cost for the overhead bench to gate.
    let metrics = world.obs().metrics().snapshot();
    assert!(metrics.counter("obs.sampler.ticks") > 0);
    assert!(metrics.histogram("obs.sampler.tick_ns").is_some());

    tag.close();
}

/// Killing a deliberately stalled swarm produces a flight dump naming
/// the stuck component and carrying the pre-stall event sequence.
#[test]
fn stalled_swarm_dumps_flight_recorder_naming_the_culprit() {
    let dump_dir = fresh_dir("stall");
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    world.install_fault_plan(
        FaultPlan::new(5, FaultRates::only(FaultKind::StuckTag, 1.0))
            .with_delays(Duration::from_millis(2), Duration::from_millis(2)),
    );

    let flight = Arc::new(FlightRecorder::default());
    world.obs().attach(flight.clone());

    // A 1 s op budget plus an aggressive stall threshold (20% of
    // budget) turns "every exchange sticks" into a Stalled verdict in
    // a few hundred milliseconds of wall time.
    let (ctx, tag, uid) = tagged_phone(&world, 93, Duration::from_secs(1));
    let mut sampler = ctx.start_sampler(SamplerConfig {
        interval: Duration::from_millis(10),
        watchdog: WatchdogConfig { stall_factor: 0.2, degrade_fraction: 0.1, ..Default::default() },
        flight: Some(flight.clone()),
        dump_dir: Some(dump_dir.clone()),
        ..SamplerConfig::default()
    });
    tag.write("doomed".to_string(), |_| {}, |_, _| {});

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let dump_path = loop {
        let found = std::fs::read_dir(&dump_dir).ok().and_then(|entries| {
            entries.filter_map(Result::ok).map(|e| e.path()).find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flight-stalled-"))
            })
        });
        if let Some(path) = found {
            break path;
        }
        assert!(std::time::Instant::now() < deadline, "no stall dump within 20s");
        std::thread::sleep(Duration::from_millis(20));
    };
    sampler.stop();

    let dump = std::fs::read_to_string(&dump_path).expect("read dump");
    let loop_name = format!("tag-{uid}");
    assert!(dump.contains("\"reason\":\"stalled\""), "got: {dump}");
    assert!(dump.contains(&loop_name), "dump must name the stuck loop {loop_name}: {dump}");
    assert!(dump.contains("\"type\":\"op_attempt\""), "pre-stall attempts missing: {dump}");
    assert!(dump.contains("\"health\":\"stalled\""), "health history missing: {dump}");
    assert!(dump.contains("\"rule\":\"head_op_stall\""), "triggering report missing: {dump}");

    // The in-memory recorder agrees with what hit the disk.
    assert!(flight
        .component_events(&loop_name)
        .iter()
        .any(|e| { matches!(e.kind, morena::obs::EventKind::OpAttempt { .. }) }));
    assert!(flight.health_history().iter().any(|&(_, h)| h == Health::Stalled));
    assert!(world.obs().metrics().snapshot().counter("obs.flight.stall_dumps") >= 1);

    tag.close();
    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// The watchdog's degradation-onset timestamp survives into report
/// JSON and the rendered top view over a genuinely degrading swarm.
#[test]
fn degradation_onset_is_reported_over_a_live_swarm() {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 3);
    world.install_fault_plan(
        FaultPlan::new(9, FaultRates::only(FaultKind::StuckTag, 1.0))
            .with_delays(Duration::from_millis(2), Duration::from_millis(2)),
    );
    let (_ctx, tag, _) = tagged_phone(&world, 94, Duration::from_secs(30));
    let watchdog = morena::obs::Watchdog::default();
    tag.write("doomed".to_string(), |_| {}, |_, _| {});

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let report = loop {
        std::thread::sleep(Duration::from_millis(40));
        let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
        let report = watchdog.evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
        if report.health != Health::Healthy || std::time::Instant::now() > deadline {
            break report;
        }
    };
    assert_ne!(report.health, Health::Healthy, "stuck swarm must degrade");
    let since = report.degraded_since_nanos.expect("onset timestamp");
    assert!(since <= report.at_nanos);
    assert!(report.to_json().contains("\"degraded_since_ns\":"));
    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let report = watchdog.evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    if report.health != Health::Healthy {
        let top = morena::obs::render_top(&snapshot, &report);
        assert!(top.contains("(degraded for"), "got: {top}");
    }
    tag.close();
}
