//! End-to-end causal tracing: a beam from one phone triggers a tag
//! write in the receiver's handler, and the whole chain — sender op,
//! in-band NDEF trace record, receiver handler, handler-issued write —
//! carries **one** trace id with correct parent/child span edges,
//! under both execution policies.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::beam::{BeamListener, BeamReceiver, Beamer};
use morena::obs::{analyze_traces, export_chrome_trace, EventKind, OpKind, TraceContext};
use morena::prelude::*;

/// On beam receipt, write the payload to a tag and report both steps.
struct WriteOnBeam {
    tag: Arc<TagReference<StringConverter>>,
    received: crossbeam::channel::Sender<()>,
    written: crossbeam::channel::Sender<bool>,
}

impl BeamListener<StringConverter> for WriteOnBeam {
    fn on_beam_received(&self, value: String) {
        let done = self.written.clone();
        let err = self.written.clone();
        self.tag.write(
            value,
            move |_| {
                let _ = done.send(true);
            },
            move |_, _| {
                let _ = err.send(false);
            },
        );
        let _ = self.received.send(());
    }
}

/// The trace context of the first matching traced event.
fn traced<'a>(
    events: &'a [morena::obs::ObsEvent],
    mut pick: impl FnMut(&EventKind) -> bool,
) -> (TraceContext, &'a EventKind) {
    events
        .iter()
        .find_map(|e| {
            let ctx = e.trace?;
            pick(&e.kind).then_some((ctx, &e.kind))
        })
        .expect("expected a traced event of the requested kind")
}

/// Drive beam → handler → write across two phones and assert the span
/// chain, the critical-path analysis, and the Chrome flow export.
fn beam_chain_carries_one_trace(policy: ExecutionPolicy, seed: u64) {
    // A real clock: the analyzer's dominant-hop/component verdicts need
    // wall time to actually accrue on each hop.
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), seed);
    let ring = Arc::new(RingSink::new(16_384));
    world.obs().install(ring.clone());

    let sender = world.add_phone("sender");
    let receiver = world.add_phone("receiver");
    let sctx = MorenaContext::headless_with(&world, sender, policy);
    let rctx = MorenaContext::headless_with(&world, receiver, policy);
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(7))));

    let tag = Arc::new(TagReference::new(
        &rctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
    ));
    let (received_tx, received_rx) = unbounded();
    let (written_tx, written_rx) = unbounded();
    let _inbox = BeamReceiver::new(
        &rctx,
        Arc::new(StringConverter::plain_text()),
        Arc::new(WriteOnBeam { tag: Arc::clone(&tag), received: received_tx, written: written_tx }),
    );

    let beamer = Beamer::new(&sctx, Arc::new(StringConverter::plain_text()));
    world.bring_phones_together(sender, receiver);
    beamer.beam_ok("relayed".to_string());

    // The handler has run (and queued its write); now hand it the tag.
    received_rx.recv_timeout(Duration::from_secs(10)).expect("beam never arrived");
    world.tap_tag(uid, receiver);
    assert!(
        written_rx.recv_timeout(Duration::from_secs(10)).unwrap_or(false),
        "handler write did not succeed"
    );
    tag.close();
    world.obs().flush();
    let events = ring.snapshot();

    // One trace id spans both phones, with root → receipt → write edges.
    let (push, _) =
        traced(&events, |k| matches!(k, EventKind::OpEnqueued { op: OpKind::Push, .. }));
    assert!(push.is_root(), "the sender's beam op must be the trace root");
    let (receipt, receipt_kind) = traced(&events, |k| matches!(k, EventKind::BeamReceived { .. }));
    let EventKind::BeamReceived { phone, from, .. } = receipt_kind else { unreachable!() };
    assert_eq!((*phone, *from), (receiver.as_u64(), sender.as_u64()));
    assert_eq!(receipt.trace_id, push.trace_id, "receipt must join the sender's trace");
    assert_eq!(receipt.parent_span_id, push.span_id, "receipt span must parent on the beam op");
    let (write, _) =
        traced(&events, |k| matches!(k, EventKind::OpEnqueued { op: OpKind::Write, .. }));
    assert_eq!(write.trace_id, push.trace_id, "handler write must join the sender's trace");
    assert_eq!(write.parent_span_id, receipt.span_id, "write span must parent on the receipt");

    // The payload the handler saw had the trace record stripped.
    assert_eq!(tag.cached().as_deref(), Some("relayed"));

    // The critical-path analyzer sees one connected, two-phone trace
    // whose hop attributions each satisfy the sum invariant.
    let analysis = analyze_traces(&events);
    let trace =
        analysis.iter().find(|a| a.trace_id == push.trace_id).expect("analysis for the beam trace");
    assert!(trace.connected, "span graph must be one tree: {trace:?}");
    assert!(trace.spans >= 3, "expected >=3 spans, got {}", trace.spans);
    assert!(trace.phones >= 2, "trace must span both phones, got {}", trace.phones);
    assert!(trace.hops.len() >= 2, "beam op and handler write are both hops");
    assert!(trace.dominant_hop.is_some() && trace.dominant_component.is_some());
    for hop in &trace.hops {
        let b = &hop.breakdown;
        assert_eq!(b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos, b.total_nanos);
    }

    // The Chrome export links the chain with flow events.
    let chrome = export_chrome_trace(&events);
    assert!(chrome.contains("\"cat\":\"trace\""), "flow events missing from export");
    assert!(chrome.contains("\"ph\":\"s\"") && chrome.contains("\"ph\":\"f\""));
    assert!(chrome.contains(&format!("\"name\":\"trace-{}\"", push.trace_id)));
}

#[test]
fn beam_chain_carries_one_trace_thread_per_loop() {
    beam_chain_carries_one_trace(ExecutionPolicy::ThreadPerLoop, 61);
}

#[test]
fn beam_chain_carries_one_trace_sharded() {
    beam_chain_carries_one_trace(ExecutionPolicy::Sharded { workers: 2 }, 62);
}

/// A trace-stamped message is passed through untouched by the
/// pre-trace baseline `Ndef` tech: old peers neither strip nor choke
/// on the reserved record, and a tracing peer reading the same bytes
/// recovers the app content (wire compatibility in both directions).
#[test]
fn baseline_ndef_tech_ignores_the_trace_record() {
    use morena::baseline::ndef_tech::Ndef;
    use morena::core::convert::TagDataConverter;
    use morena::core::tracewire::{strip_trace, with_trace};

    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 88);
    let phone = world.add_phone("legacy");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(6))));
    world.tap_tag(uid, phone);

    let app = StringConverter::plain_text().to_message(&"hello".to_string()).unwrap();
    let stamped = with_trace(&app, TraceContext::root(9, 1));

    let mut ndef = Ndef::get(NfcHandle::new(world.clone(), phone), uid);
    ndef.connect().unwrap();
    ndef.write_ndef_message(&stamped).unwrap();
    let read_back = ndef.ndef_message().unwrap().expect("message on tag");
    assert_eq!(read_back.to_bytes(), stamped.to_bytes());
    assert_eq!(strip_trace(&read_back).to_bytes(), app.to_bytes());
}

/// With sampling off (`SampleRate::never`) no event carries a context
/// and nothing rides the wire — but delivery still works.
#[test]
fn unsampled_traces_stay_off_events_and_wire() {
    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 63);
    let ring = Arc::new(RingSink::new(4_096));
    world.obs().install(ring.clone());

    let sender = world.add_phone("sender");
    let receiver = world.add_phone("receiver");
    let sctx = MorenaContext::headless(&world, sender);
    sctx.set_default_policy(Policy::default().with_trace_sample(SampleRate::never()));
    let rctx = MorenaContext::headless(&world, receiver);

    let (tx, rx) = unbounded();
    struct Forward(crossbeam::channel::Sender<String>);
    impl BeamListener<StringConverter> for Forward {
        fn on_beam_received(&self, value: String) {
            self.0.send(value).unwrap();
        }
    }
    let _inbox =
        BeamReceiver::new(&rctx, Arc::new(StringConverter::plain_text()), Arc::new(Forward(tx)));
    let beamer = Beamer::new(&sctx, Arc::new(StringConverter::plain_text()));
    world.bring_phones_together(sender, receiver);
    beamer.beam_ok("quiet".to_string());
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "quiet");
    world.obs().flush();

    let events = ring.snapshot();
    assert!(!events.is_empty());
    assert!(
        events.iter().all(|e| e.trace.is_none()),
        "unsampled contexts must never reach the event stream"
    );
    assert!(analyze_traces(&events).is_empty());
}
