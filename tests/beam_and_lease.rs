//! Integration tests for the peer-to-peer half of the middleware (Beam)
//! and the leasing extension under real multi-threaded contention.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::beam::{BeamListener, BeamReceiver, Beamer};
use morena::core::lease::{LeaseError, LeaseManager};
use morena::prelude::*;
use parking_lot::Mutex;

struct Collect {
    tx: crossbeam::channel::Sender<String>,
}

impl BeamListener<StringConverter> for Collect {
    fn on_beam_received(&self, value: String) {
        self.tx.send(value).unwrap();
    }
}

#[test]
fn beams_flow_between_three_phones_in_a_chain() {
    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 21);
    let a = world.add_phone("a");
    let b = world.add_phone("b");
    let c = world.add_phone("c");
    let actx = MorenaContext::headless(&world, a);
    let bctx = MorenaContext::headless(&world, b);
    let cctx = MorenaContext::headless(&world, c);

    let (b_tx, b_rx) = unbounded();
    let (c_tx, c_rx) = unbounded();
    let _b_recv = BeamReceiver::new(
        &bctx,
        Arc::new(StringConverter::plain_text()),
        Arc::new(Collect { tx: b_tx }),
    );
    let _c_recv = BeamReceiver::new(
        &cctx,
        Arc::new(StringConverter::plain_text()),
        Arc::new(Collect { tx: c_tx }),
    );

    let a_beamer = Beamer::new(&actx, Arc::new(StringConverter::plain_text()));
    let b_beamer = Beamer::new(&bctx, Arc::new(StringConverter::plain_text()));

    // a → b
    world.bring_phones_together(a, b);
    a_beamer.beam_ok("hop-1".to_string());
    assert_eq!(b_rx.recv_timeout(Duration::from_secs(10)).unwrap(), "hop-1");

    // b moves to c, forwards it
    world.separate_phone(b);
    world.bring_phones_together(c, b);
    b_beamer.beam_ok("hop-2".to_string());
    assert_eq!(c_rx.recv_timeout(Duration::from_secs(10)).unwrap(), "hop-2");
    // a never received anything (no receiver registered there anyway),
    // and b got exactly one message.
    assert!(b_rx.try_recv().is_err());
}

#[test]
fn beam_delivers_to_all_peers_in_range() {
    let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 22);
    let sender = world.add_phone("sender");
    let sctx = MorenaContext::headless(&world, sender);
    let mut receivers = Vec::new();
    for i in 0..3 {
        let phone = world.add_phone(&format!("peer-{i}"));
        let ctx = MorenaContext::headless(&world, phone);
        let (tx, rx) = unbounded();
        let receiver = BeamReceiver::new(
            &ctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Collect { tx }),
        );
        world.bring_phones_together(sender, phone);
        receivers.push((receiver, rx));
    }
    let beamer = Beamer::new(&sctx, Arc::new(StringConverter::plain_text()));
    let (ok_tx, ok_rx) = unbounded();
    beamer.beam("to everyone".to_string(), move || ok_tx.send(()).unwrap(), |f| panic!("{f}"));
    ok_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    for (_, rx) in &receivers {
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "to everyone");
    }
}

#[test]
fn lease_contention_grants_exclusively_under_threads() {
    let world = World::with_link(
        SystemClock::shared(),
        LinkModel {
            setup_latency: Duration::from_micros(200),
            per_byte_latency: Duration::from_micros(2),
            ..LinkModel::reliable()
        },
        23,
    );
    let uid = world.add_tag(Box::new(Type2Tag::ntag216(TagUid::from_seed(1))));
    world.set_tag_position(uid, morena::sim::geometry::Point::ORIGIN);

    let grants: Arc<Mutex<Vec<(u64, std::time::Instant, std::time::Instant)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let stop_at = std::time::Instant::now() + Duration::from_millis(800);

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let phone = world.add_phone(&format!("contender-{i}"));
            world.set_phone_position(phone, morena::sim::geometry::Point::ORIGIN);
            let ctx = MorenaContext::headless(&world, phone);
            let manager = LeaseManager::new(&ctx);
            let grants = Arc::clone(&grants);
            std::thread::spawn(move || {
                let mut granted = 0u32;
                while std::time::Instant::now() < stop_at {
                    match manager.acquire(uid, Duration::from_millis(100)) {
                        Ok(lease) => {
                            let from = std::time::Instant::now();
                            std::thread::sleep(Duration::from_millis(10));
                            if manager.release(&lease).is_ok() {
                                grants.lock().push((
                                    manager.device().0,
                                    from,
                                    std::time::Instant::now(),
                                ));
                            }
                            granted += 1;
                        }
                        Err(LeaseError::Held { .. }) => {
                            std::thread::sleep(Duration::from_millis(1))
                        }
                        Err(_) => {}
                    }
                }
                granted
            })
        })
        .collect();
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total >= 3, "contention should still produce grants, got {total}");

    // No two grant intervals from different devices overlap.
    let grants = grants.lock();
    for (i, a) in grants.iter().enumerate() {
        for b in grants.iter().skip(i + 1) {
            if a.0 != b.0 {
                assert!(
                    a.2 <= b.1 || b.2 <= a.1,
                    "grant intervals overlapped between devices {} and {}",
                    a.0,
                    b.0
                );
            }
        }
    }
}

#[test]
fn expired_lease_does_not_block_the_tag_forever() {
    let clock = VirtualClock::shared();
    let world = World::with_link(Arc::clone(&clock) as Arc<dyn Clock>, LinkModel::instant(), 24);
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
    world.set_tag_position(uid, morena::sim::geometry::Point::ORIGIN);
    let a_phone = world.add_phone("a");
    let b_phone = world.add_phone("b");
    world.set_phone_position(a_phone, morena::sim::geometry::Point::ORIGIN);
    world.set_phone_position(b_phone, morena::sim::geometry::Point::ORIGIN);
    let a = LeaseManager::new(&MorenaContext::headless(&world, a_phone));
    let b = LeaseManager::new(&MorenaContext::headless(&world, b_phone));

    // a takes a lease and walks away without releasing (crashed app).
    a.acquire(uid, Duration::from_secs(10)).unwrap();
    assert!(matches!(b.acquire(uid, Duration::from_secs(1)), Err(LeaseError::Held { .. })));
    // After expiry, b can take over without a's cooperation.
    clock.advance(Duration::from_secs(11));
    let lease = b.acquire(uid, Duration::from_secs(1)).unwrap();
    assert_eq!(lease.holder, b.device());
}
