//! Swarm stress: many phones, many tags, many references, all active at
//! once over a noisy link — the "industrial scalability" frontier the
//! paper's related-work section draws a line at. The middleware must
//! stay correct (every operation resolves exactly once, caches converge
//! to the last write per tag) even if it was never designed for
//! warehouse-scale deployments.
//!
//! Every scenario runs under both execution policies: the historical
//! thread-per-loop mode and the sharded worker pool that multiplexes
//! all far-reference loops onto a bounded number of threads.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::policy::{Backoff, Policy};
use morena::obs::{FlightRecorder, Health, Sampler, SamplerConfig};
use morena::prelude::*;

fn swarm_config() -> Policy {
    Policy::new()
        .with_timeout(Duration::from_secs(60))
        .with_backoff(Backoff::exponential(Duration::from_micros(300), Duration::from_millis(4)))
}

/// Black-box the heavyweight scenarios: a flight recorder tees into the
/// world's event stream and a panic (any failing assertion below) dumps
/// the pre-failure event sequence to `MORENA_FLIGHT_DIR` (CI uploads
/// that directory as an artifact on failure). The sampler also feeds
/// the recorder's health ring so the dump carries verdict history.
fn flight_harness(world: &World) -> Sampler {
    let flight = Arc::new(FlightRecorder::default());
    world.obs().attach(flight.clone());
    let dump_dir = std::env::var_os("MORENA_FLIGHT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("morena-flight"));
    morena::obs::install_panic_hook(&flight, dump_dir.clone());
    let clock = Arc::clone(world.clock());
    Sampler::spawn(
        Arc::clone(world.obs()),
        move || clock.now().as_nanos(),
        SamplerConfig {
            interval: Duration::from_millis(50),
            flight: Some(flight),
            dump_dir: Some(dump_dir),
            ..SamplerConfig::default()
        },
    )
}

/// 64 far references (8 phones × 8 tags) with a backlog each, over a
/// 10%-lossy link. Every operation must resolve exactly once and every
/// tag must converge to its last write.
fn many_phones_many_tags(policy: ExecutionPolicy, seed: u64) {
    const PHONES: usize = 8;
    const TAGS_PER_PHONE: usize = 8;
    const OPS_PER_TAG: usize = 2;

    let link = LinkModel {
        setup_latency: Duration::from_micros(100),
        per_byte_latency: Duration::from_micros(1),
        base_failure_prob: 0.10,
        edge_failure_prob: 0.10,
        ..LinkModel::realistic()
    };
    let world = World::with_link(SystemClock::shared(), link, seed);
    let mut sampler = flight_harness(&world);

    let (done_tx, done_rx) = unbounded();
    let mut references = Vec::new();
    let mut expected = Vec::new();

    for p in 0..PHONES {
        let phone = world.add_phone(&format!("phone-{p}"));
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        for t in 0..TAGS_PER_PHONE {
            let uid =
                world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed((p * 100 + t) as u32))));
            // Each phone keeps its tags at distinct offsets so fields do
            // not overlap between phones.
            world.tap_tag(uid, phone);
            let reference = TagReference::with_policy(
                &ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
                swarm_config(),
            );
            for op in 0..OPS_PER_TAG {
                let done_tx = done_tx.clone();
                let payload = format!("p{p}-t{t}-op{op}");
                reference.write(
                    payload.clone(),
                    move |_| done_tx.send(payload).unwrap(),
                    |_, f| panic!("swarm write failed permanently: {f}"),
                );
            }
            expected.push((reference.clone(), format!("p{p}-t{t}-op{}", OPS_PER_TAG - 1)));
            references.push(reference);
        }
    }

    // Every queued operation must complete exactly once.
    let total = PHONES * TAGS_PER_PHONE * OPS_PER_TAG;
    let mut completions = Vec::with_capacity(total);
    for _ in 0..total {
        completions.push(done_rx.recv_timeout(Duration::from_secs(60)).expect("op completes"));
    }
    assert!(done_rx.try_recv().is_err(), "no duplicate completions");
    completions.sort();
    let mut wanted: Vec<String> = (0..PHONES)
        .flat_map(|p| {
            (0..TAGS_PER_PHONE)
                .flat_map(move |t| (0..OPS_PER_TAG).map(move |op| format!("p{p}-t{t}-op{op}")))
        })
        .collect();
    wanted.sort();
    assert_eq!(completions, wanted);

    // Every tag converged to its last write.
    for (reference, last) in &expected {
        let value = reference.read_sync(Duration::from_secs(60)).expect("final read succeeds");
        assert_eq!(value.as_deref(), Some(last.as_str()));
        let stats = reference.stats().snapshot();
        assert_eq!(stats.succeeded, OPS_PER_TAG as u64 + 1); // + the final read
        assert_eq!(stats.timed_out, 0);
        assert_eq!(stats.failed, 0);
    }
    for reference in references {
        reference.close();
    }

    // The CI gate: after a clean drain and shutdown the watchdog must
    // not see a stalled component anywhere in the swarm.
    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let report =
        Watchdog::default().evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    assert_ne!(
        report.health,
        Health::Stalled,
        "watchdog reported Stalled at shutdown: {:?}",
        report.findings
    );
    sampler.stop();
}

#[test]
fn many_phones_many_tags_all_resolve() {
    many_phones_many_tags(ExecutionPolicy::ThreadPerLoop, 4242);
}

#[test]
fn many_phones_many_tags_all_resolve_sharded() {
    many_phones_many_tags(ExecutionPolicy::Sharded { workers: 4 }, 4243);
}

/// One phone, several tags that keep entering and leaving while a
/// backlog drains — connectivity churn at queue scale.
fn roaming_tags_converge(policy: ExecutionPolicy, seed: u64) {
    const TAGS: usize = 4;
    const OPS: usize = 4;

    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), seed);
    let phone = world.add_phone("roamer");
    let ctx = MorenaContext::headless_with(&world, phone, policy);

    let (done_tx, done_rx) = unbounded();
    let references: Vec<_> = (0..TAGS)
        .map(|t| {
            let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(500 + t as u32))));
            let reference = TagReference::with_policy(
                &ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
                swarm_config(),
            );
            for op in 0..OPS {
                let done_tx = done_tx.clone();
                reference.write(
                    format!("t{t}-op{op}"),
                    move |_| done_tx.send(()).unwrap(),
                    |_, f| panic!("roaming write failed: {f}"),
                );
            }
            (uid, reference)
        })
        .collect();

    // Tags take turns in the field, several rounds, with gaps.
    let mut scenario = Scenario::new();
    for round in 0..6 {
        for (i, (uid, _)) in references.iter().enumerate() {
            let at = Duration::from_millis((round * TAGS + i) as u64 * 30);
            let uid = *uid;
            scenario = scenario
                .at(at, |s| s.tap_tag(uid, phone))
                .at(at + Duration::from_millis(25), |s| s.remove_tag(uid));
        }
    }
    scenario.spawn(&world).join().expect("scenario");

    // Give stragglers one final generous window each.
    for (uid, _) in &references {
        world.tap_tag(*uid, phone);
        world.sleep(Duration::from_millis(50));
        std::thread::sleep(Duration::from_millis(30));
        world.remove_tag_from_field(*uid);
    }
    // Everything must have drained by now (or drain on these last taps).
    let total = TAGS * OPS;
    let mut done = 0;
    while done < total {
        match done_rx.recv_timeout(Duration::from_secs(5)) {
            Ok(()) => done += 1,
            Err(_) => {
                // Provide connectivity until the backlog clears.
                for (uid, _) in &references {
                    world.tap_tag(*uid, phone);
                }
            }
        }
    }
    for (_, reference) in &references {
        assert_eq!(reference.queue_len(), 0);
        reference.close();
    }
}

#[test]
fn swarm_with_roaming_tags_still_converges() {
    roaming_tags_converge(ExecutionPolicy::ThreadPerLoop, 77);
}

#[test]
fn swarm_with_roaming_tags_still_converges_sharded() {
    roaming_tags_converge(ExecutionPolicy::Sharded { workers: 2 }, 78);
}

/// A discoverer watching a long stream of disposable tags: each one is
/// detected, written, and its reference closed — the lifecycle of a
/// warehouse conveyor. The discoverer's identity map must stay bounded
/// by the *live* reference population instead of accumulating one dead
/// entry (and one stopped event loop) per retired tag.
fn discovery_map_stays_bounded(policy: ExecutionPolicy, seed: u64) {
    const GENERATIONS: usize = 12;

    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), seed);
    let phone = world.add_phone("conveyor");
    let ctx = MorenaContext::headless_with(&world, phone, policy);

    struct Notify(crossbeam::channel::Sender<TagUid>);
    impl DiscoveryListener<StringConverter> for Notify {
        fn on_tag_detected(&self, reference: TagReference<StringConverter>) {
            self.0.send(reference.uid()).unwrap();
        }
        fn on_tag_redetected(&self, reference: TagReference<StringConverter>) {
            self.0.send(reference.uid()).unwrap();
        }
        fn on_empty_tag(&self, reference: TagReference<StringConverter>) {
            self.0.send(reference.uid()).unwrap();
        }
    }

    let (tx, rx) = unbounded();
    let disco =
        TagDiscoverer::new(&ctx, Arc::new(StringConverter::plain_text()), Arc::new(Notify(tx)));

    for generation in 0..GENERATIONS {
        let uid =
            world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(900 + generation as u32))));
        world.tap_tag(uid, phone);
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)).expect("sighting"), uid);
        let reference = disco.reference_for(uid).expect("reference for sighted tag");
        reference.write_sync(format!("gen-{generation}"), Duration::from_secs(30)).unwrap();
        world.remove_tag_from_field(uid);
        reference.close();
        // At most the reference just closed (swept on the next sighting)
        // plus the one for the current generation may linger.
        let live = disco.references().len();
        assert!(live <= 2, "identity map grew to {live} entries at generation {generation}");
    }
    disco.stop();
}

#[test]
fn swarm_discovery_map_stays_bounded() {
    discovery_map_stays_bounded(ExecutionPolicy::ThreadPerLoop, 91);
}

#[test]
fn swarm_discovery_map_stays_bounded_sharded() {
    discovery_map_stays_bounded(ExecutionPolicy::Sharded { workers: 2 }, 92);
}
