//! Full-stack fault-injection tests: the middleware's decoupling-in-time
//! guarantees under a lossy link, mid-operation field loss, timeouts,
//! and torn tag states.
//!
//! Every scenario runs under both execution policies — thread-per-loop
//! and the sharded worker pool — since fault handling must not depend on
//! how loops get processor time.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::eventloop::OpFailure;
use morena::core::policy::{Backoff, Policy};
use morena::prelude::*;

/// Both execution policies, exercised by every scenario in this file.
fn policies() -> [ExecutionPolicy; 2] {
    [ExecutionPolicy::ThreadPerLoop, ExecutionPolicy::Sharded { workers: 2 }]
}

fn flaky_world(noise: f64, seed: u64) -> World {
    let link = LinkModel {
        setup_latency: Duration::from_micros(200),
        per_byte_latency: Duration::from_micros(2),
        base_failure_prob: noise,
        edge_failure_prob: noise,
        ..LinkModel::realistic()
    };
    World::with_link(SystemClock::shared(), link, seed)
}

fn fast_config() -> Policy {
    Policy::new()
        .with_timeout(Duration::from_secs(30))
        .with_backoff(Backoff::exponential(Duration::from_millis(1), Duration::from_millis(8)))
}

#[test]
fn writes_eventually_succeed_through_heavy_noise() {
    for policy in policies() {
        let world = flaky_world(0.30, 5);
        let phone = world.add_phone("user");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        world.tap_tag(uid, phone);
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let tag = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            fast_config(),
        );
        let (tx, rx) = unbounded();
        tag.write(
            "survives noise".to_string(),
            move |r| tx.send(r.cached()).unwrap(),
            |_, f| panic!("must not fail permanently: {f}"),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap().as_deref(),
            Some("survives noise")
        );
        let stats = tag.stats().snapshot();
        assert!(
            stats.attempts >= 1 && stats.succeeded == 1,
            "stats should show the retry work under {policy:?}: {stats:?}"
        );
        tag.close();
    }
}

#[test]
fn torn_write_is_repaired_by_automatic_retry() {
    for policy in policies() {
        // Deterministic torn state: tag leaves mid-write, then returns.
        let world = World::with_link(
            SystemClock::shared(),
            LinkModel {
                setup_latency: Duration::from_millis(2),
                per_byte_latency: Duration::from_micros(20),
                ..LinkModel::reliable()
            },
            6,
        );
        let phone = world.add_phone("user");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
        world.tap_tag(uid, phone);
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let tag = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            fast_config(),
        );
        let payload = "x".repeat(300); // long write: many page commands
        let (tx, rx) = unbounded();
        tag.write(payload.clone(), move |r| tx.send(r.cached()).unwrap(), |_, f| panic!("{f}"));

        // Yank the tag away mid-write, twice, then let it stay.
        for _ in 0..2 {
            std::thread::sleep(Duration::from_millis(8));
            world.remove_tag_from_field(uid);
            std::thread::sleep(Duration::from_millis(5));
            world.tap_tag(uid, phone);
        }
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)).unwrap(), Some(payload.clone()));
        // The tag's final content is the complete message, not a torn state.
        let nfc = NfcHandle::new(world.clone(), phone);
        let bytes = nfc.ndef_read(uid).expect("readable");
        let message = NdefMessage::parse(&bytes).expect("well-formed despite the interruptions");
        assert_eq!(message.first().payload(), payload.as_bytes());
        tag.close();
    }
}

#[test]
fn timeout_fires_when_the_tag_never_returns() {
    for policy in policies() {
        let clock = VirtualClock::shared();
        let world = World::with_link(Arc::clone(&clock) as Arc<dyn Clock>, LinkModel::instant(), 7);
        let phone = world.add_phone("user");
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(3))));
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let tag =
            TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));

        let (tx, rx) = unbounded();
        tag.write_with_timeout(
            "never delivered".to_string(),
            Duration::from_secs(5),
            |_| panic!("tag never appears"),
            move |_, failure| tx.send(failure).unwrap(),
        );
        // Nothing happens until virtual time passes the deadline.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        clock.advance(Duration::from_secs(6));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::TimedOut);
        assert_eq!(tag.stats().snapshot().timed_out, 1);
        tag.close();
    }
}

#[test]
fn queued_ops_survive_many_disconnection_cycles_in_order() {
    for policy in policies() {
        let world = flaky_world(0.10, 8);
        let phone = world.add_phone("user");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(4))));
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let tag = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            fast_config(),
        );

        let (tx, rx) = unbounded();
        for i in 0..6 {
            let tx = tx.clone();
            tag.write(format!("op-{i}"), move |_| tx.send(i).unwrap(), |_, f| panic!("{f}"));
        }
        // Drive a presence square wave until everything drains.
        Scenario::new()
            .presence_duty_cycle(uid, phone, Duration::from_millis(40), 0.5, 40)
            .spawn(&world);
        let completed: Vec<i32> =
            (0..6).map(|_| rx.recv_timeout(Duration::from_secs(30)).unwrap()).collect();
        assert_eq!(completed, vec![0, 1, 2, 3, 4, 5], "strict FIFO across disconnections");
        assert_eq!(tag.cached().as_deref(), Some("op-5"));
        tag.close();
    }
}

#[test]
fn a_sweep_gesture_is_enough_to_deliver_a_queued_write() {
    for policy in policies() {
        // The tag never rests: it approaches, dwells 150 ms near the
        // phone, and retreats — one realistic swipe. The queued write
        // must land during the usable part of the gesture.
        let world = flaky_world(0.05, 11);
        let phone = world.add_phone("swiper");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(7))));
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let tag = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            fast_config(),
        );
        let (tx, rx) = unbounded();
        tag.write(
            "swiped in".to_string(),
            move |r| tx.send(r.cached()).unwrap(),
            |_, f| panic!("{f}"),
        );
        Scenario::new()
            .sweep_tag(
                uid,
                phone,
                0.002,                      // almost touching at the closest point
                Duration::from_millis(120), // approach
                Duration::from_millis(150), // dwell
                12,
            )
            .spawn(&world)
            .join()
            .expect("sweep");
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap().as_deref(), Some("swiped in"));
        assert!(!tag.is_connected(), "the sweep ended outside the field");
        tag.close();
    }
}

#[test]
fn read_only_tag_fails_fast_and_permanently() {
    for policy in policies() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 9);
        let phone = world.add_phone("user");
        let uid = world.add_tag(Box::new({
            let mut t = Type2Tag::ntag213(TagUid::from_seed(5));
            t.set_read_only(true);
            t
        }));
        world.tap_tag(uid, phone);
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let tag =
            TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));
        let (tx, rx) = unbounded();
        tag.write("nope".to_string(), |_| panic!("read-only"), move |_, f| tx.send(f).unwrap());
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            OpFailure::Failed(e) => assert!(!e.is_transient(), "permanent failure expected"),
            other => panic!("expected permanent failure, got {other:?}"),
        }
        // Exactly one physical attempt: permanent failures are not retried.
        assert_eq!(tag.stats().snapshot().attempts, 1);
        tag.close();
    }
}

#[test]
fn discovery_keeps_working_under_noise() {
    use morena::core::discovery::DiscoveryListener;
    use parking_lot::Mutex;

    struct Count {
        detections: Mutex<usize>,
    }
    impl DiscoveryListener<StringConverter> for Count {
        fn on_tag_detected(&self, _r: TagReference<StringConverter>) {
            *self.detections.lock() += 1;
        }
        fn on_tag_redetected(&self, _r: TagReference<StringConverter>) {
            *self.detections.lock() += 1;
        }
        fn on_empty_tag(&self, _r: TagReference<StringConverter>) {
            *self.detections.lock() += 1;
        }
    }

    for policy in policies() {
        let world = flaky_world(0.15, 10);
        let phone = world.add_phone("user");
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(6))));
        let ctx = MorenaContext::headless_with(&world, phone, policy);
        let listener = Arc::new(Count { detections: Mutex::new(0) });
        let _disco =
            TagDiscoverer::new(&ctx, Arc::new(StringConverter::plain_text()), listener.clone());

        let mut seen = 0usize;
        for _ in 0..10 {
            world.tap_tag(uid, phone);
            std::thread::sleep(Duration::from_millis(30));
            world.remove_tag_from_field(uid);
            std::thread::sleep(Duration::from_millis(5));
            seen = *listener.detections.lock();
            if seen >= 5 {
                break;
            }
        }
        assert!(seen >= 5, "discovery must survive a 15%-noise link under {policy:?}, saw {seen}");
    }
}
