//! # morena
//!
//! A full-system Rust reproduction of **MORENA: A Middleware for
//! Programming NFC-Enabled Android Applications as Distributed
//! Object-Oriented Programs** (Lombide Carreton, Pinte, De Meuter —
//! Middleware 2012).
//!
//! MORENA treats RFID tags as *intermittently connected remote objects*:
//! first-class far references with private event loops queue
//! asynchronous reads and writes, retry them transparently while tags
//! drift in and out of the tiny NFC field, convert application data
//! automatically, and deliver listeners on the application's main
//! thread. This facade crate re-exports the whole stack:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `morena-core` | the middleware: tag references, discovery, things, Beam, leasing |
//! | [`ndef`] | `morena-ndef` | the NDEF wire format |
//! | [`sim`] | `morena-nfc-sim` | simulated NFC hardware: tags, radio link, world, scenarios |
//! | [`android`] | `morena-android-sim` | activities, intents, main-thread looper |
//! | [`baseline`] | `morena-baseline` | the raw blocking API the paper compares against |
//! | [`apps`] | `morena-apps` | the evaluation applications (WiFi sharing, text tool, asset tracker) |
//! | [`obs`] | `morena-obs` | unified tracing & metrics: structured events, sinks, histograms, latency correlation |
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use morena::prelude::*;
//!
//! // A simulated world with one phone and one NFC sticker.
//! let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
//! let phone = world.add_phone("alice");
//! let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
//!
//! // Attach MORENA (headless — no activity needed).
//! let ctx = MorenaContext::headless(&world, phone);
//! let tag = TagReference::new(&ctx, uid, TagTech::Type2,
//!                             Arc::new(StringConverter::plain_text()));
//!
//! // Queue a write while the tag is nowhere near the phone…
//! let (tx, rx) = crossbeam::channel::unbounded();
//! tag.write("hello".to_string(), move |r| { tx.send(r.cached()).unwrap(); },
//!           |_, f| panic!("{f}"));
//!
//! // …and it is delivered automatically on the next tap.
//! world.tap_tag(uid, phone);
//! let stored = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
//! assert_eq!(stored.as_deref(), Some("hello"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use morena_android_sim as android;
pub use morena_apps as apps;
pub use morena_baseline as baseline;
pub use morena_core as core;
pub use morena_ndef as ndef;
pub use morena_nfc_sim as sim;
pub use morena_obs as obs;

/// The most commonly used items of the whole stack, for glob import.
pub mod prelude {
    pub use morena_android_sim::activity::{Activity, ActivityContext, ActivityHost};
    pub use morena_android_sim::intent::{Intent, IntentAction};
    pub use morena_core::beam::{BeamListener, BeamReceiver, Beamer};
    pub use morena_core::context::MorenaContext;
    pub use morena_core::convert::{
        BytesConverter, JsonConverter, StringConverter, TagDataConverter,
    };
    pub use morena_core::discovery::{DiscoveryListener, TagDiscoverer};
    pub use morena_core::eventloop::{OpFailure, OpTicket};
    pub use morena_core::future::{block_on, UnitFuture};
    pub use morena_core::keyed::{KeyedConverter, MemoryStore, ObjectStore};
    pub use morena_core::lease::{Lease, LeaseFuture, LeaseManager};
    pub use morena_core::peer::{PeerInbox, PeerListener, PeerReference};
    pub use morena_core::policy::{Backoff, Policy, SampleRate};
    pub use morena_core::sched::ExecutionPolicy;
    pub use morena_core::tagref::{ReadFuture, TagReference, WriteFuture};
    pub use morena_core::thing::{BoundThing, EmptyThingSlot, Thing, ThingObserver, ThingSpace};
    pub use morena_ndef::{NdefMessage, NdefRecord, Tnf};
    pub use morena_nfc_sim::clock::{Clock, SystemClock, VirtualClock};
    pub use morena_nfc_sim::controller::NfcHandle;
    pub use morena_nfc_sim::link::LinkModel;
    pub use morena_nfc_sim::scenario::Scenario;
    pub use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag, Type4Tag};
    pub use morena_nfc_sim::world::{NfcEvent, PhoneId, World};
    pub use morena_obs::{
        correlate, export_chrome_trace, render_top, ChromeTraceSink, Health, HealthReport,
        Inspector, InspectorSnapshot, JsonlSink, MetricsSnapshot, ObsEvent, Recorder, RingSink,
        TeeSink, Watchdog, WatchdogConfig,
    };
}
