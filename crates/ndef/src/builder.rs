use crate::message::NdefMessage;
use crate::record::NdefRecord;
use crate::rtd::{AndroidApplicationRecord, SmartPoster, TextRecord, UriRecord};
use crate::NdefError;

/// A fluent builder assembling multi-record [`NdefMessage`]s — the
/// common shapes (payload + text label + AAR) without manual record
/// plumbing.
///
/// # Examples
///
/// ```
/// use morena_ndef::NdefMessageBuilder;
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let message = NdefMessageBuilder::new()
///     .mime("application/vnd.app+json", br#"{"v":1}"#.to_vec())?
///     .text("en", "Config card")
///     .uri("https://example.com/help")
///     .android_app("com.example.app")
///     .build();
/// assert_eq!(message.records().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NdefMessageBuilder {
    records: Vec<NdefRecord>,
}

impl NdefMessageBuilder {
    /// An empty builder.
    pub fn new() -> NdefMessageBuilder {
        NdefMessageBuilder::default()
    }

    /// Appends an already-built record.
    pub fn record(mut self, record: NdefRecord) -> NdefMessageBuilder {
        self.records.push(record);
        self
    }

    /// Appends a MIME record.
    ///
    /// # Errors
    ///
    /// [`NdefError`] when the type or payload exceeds record limits.
    pub fn mime(
        mut self,
        mime_type: &str,
        payload: Vec<u8>,
    ) -> Result<NdefMessageBuilder, NdefError> {
        self.records.push(NdefRecord::mime(mime_type, payload)?);
        Ok(self)
    }

    /// Appends an RTD Text record.
    ///
    /// # Panics
    ///
    /// Panics on an invalid language code, like [`TextRecord::new`].
    pub fn text(mut self, language: &str, text: &str) -> NdefMessageBuilder {
        self.records.push(TextRecord::new(language, text).to_record());
        self
    }

    /// Appends an RTD URI record.
    pub fn uri(mut self, uri: &str) -> NdefMessageBuilder {
        self.records.push(UriRecord::new(uri).to_record());
        self
    }

    /// Appends a smart poster.
    pub fn smart_poster(mut self, poster: &SmartPoster) -> NdefMessageBuilder {
        self.records.push(poster.to_record());
        self
    }

    /// Appends an Android Application Record pinning `package`.
    pub fn android_app(mut self, package: &str) -> NdefMessageBuilder {
        self.records.push(AndroidApplicationRecord::new(package).to_record());
        self
    }

    /// Appends an NFC Forum external-type record.
    ///
    /// # Errors
    ///
    /// [`NdefError`] when the type or payload exceeds record limits.
    pub fn external(
        mut self,
        domain_type: &str,
        payload: Vec<u8>,
    ) -> Result<NdefMessageBuilder, NdefError> {
        self.records.push(NdefRecord::external(domain_type, payload)?);
        Ok(self)
    }

    /// Number of records queued so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Builds the message (an empty builder yields the canonical blank
    /// message, as [`NdefMessage::new`] documents).
    pub fn build(self) -> NdefMessage {
        NdefMessage::new(self.records)
    }
}

impl From<NdefMessageBuilder> for NdefMessage {
    fn from(builder: NdefMessageBuilder) -> NdefMessage {
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtd::PosterAction;
    use crate::Tnf;

    #[test]
    fn builds_multi_record_messages_in_order() {
        let message = NdefMessageBuilder::new()
            .mime("a/b", vec![1, 2])
            .unwrap()
            .text("en", "label")
            .uri("tel:+123")
            .android_app("com.app")
            .external("ex.com:t", vec![9])
            .unwrap()
            .build();
        let tnfs: Vec<Tnf> = message.iter().map(|r| r.tnf()).collect();
        assert_eq!(
            tnfs,
            vec![Tnf::MimeMedia, Tnf::WellKnown, Tnf::WellKnown, Tnf::External, Tnf::External]
        );
        // Round trips like any message.
        assert_eq!(NdefMessage::parse(&message.to_bytes()).unwrap(), message);
    }

    #[test]
    fn empty_builder_yields_blank_message() {
        let builder = NdefMessageBuilder::new();
        assert!(builder.is_empty());
        assert_eq!(builder.len(), 0);
        assert!(builder.build().is_blank());
    }

    #[test]
    fn smart_poster_and_raw_records_compose() {
        let poster = SmartPoster::new("https://e.com").with_action(PosterAction::Execute);
        let message: NdefMessage = NdefMessageBuilder::new()
            .smart_poster(&poster)
            .record(NdefRecord::absolute_uri("https://raw.example").unwrap())
            .into();
        assert_eq!(message.records().len(), 2);
        assert_eq!(SmartPoster::from_record(message.first()).unwrap(), poster);
    }

    #[test]
    fn builder_errors_propagate() {
        let long_type = "x".repeat(300);
        assert!(NdefMessageBuilder::new().mime(&long_type, vec![]).is_err());
        assert!(NdefMessageBuilder::new().external(&long_type, vec![]).is_err());
    }
}
