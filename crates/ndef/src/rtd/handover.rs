use crate::message::NdefMessage;
use crate::record::{NdefRecord, NdefRecordBuilder, Tnf};
use crate::NdefError;

/// The Connection Handover specification version this codec speaks
/// (1.3, encoded major.minor in one byte).
pub const HANDOVER_VERSION: u8 = 0x13;

/// Carrier Power State of an alternative carrier (2-bit field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CarrierPowerState {
    /// The carrier is currently off.
    Inactive = 0,
    /// The carrier is on and ready.
    Active = 1,
    /// The carrier is being switched on.
    Activating = 2,
    /// The sender cannot tell.
    Unknown = 3,
}

impl CarrierPowerState {
    fn from_bits(bits: u8) -> CarrierPowerState {
        match bits & 0b11 {
            0 => CarrierPowerState::Inactive,
            1 => CarrierPowerState::Active,
            2 => CarrierPowerState::Activating,
            _ => CarrierPowerState::Unknown,
        }
    }
}

/// One alternative carrier inside a handover record: a power state and
/// the id of the carrier-configuration record it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlternativeCarrier {
    /// Power state of the carrier.
    pub power_state: CarrierPowerState,
    /// The `id` of the carrier configuration record in the same message.
    pub carrier_ref: Vec<u8>,
}

impl AlternativeCarrier {
    fn to_record(&self) -> Result<NdefRecord, NdefError> {
        let mut payload = Vec::with_capacity(3 + self.carrier_ref.len());
        payload.push(self.power_state as u8);
        payload.push(self.carrier_ref.len() as u8);
        payload.extend_from_slice(&self.carrier_ref);
        payload.push(0); // auxiliary data reference count: none
        NdefRecord::well_known(b"ac", payload)
    }

    fn from_record(record: &NdefRecord) -> Result<AlternativeCarrier, NdefError> {
        if record.tnf() != Tnf::WellKnown || record.record_type() != b"ac" {
            return Err(NdefError::MalformedRtd { detail: "not an alternative carrier record" });
        }
        let payload = record.payload();
        let [cps, ref_len, rest @ ..] = payload else {
            return Err(NdefError::MalformedRtd { detail: "ac record too short" });
        };
        let ref_len = *ref_len as usize;
        if rest.len() < ref_len + 1 {
            return Err(NdefError::MalformedRtd { detail: "ac carrier reference truncated" });
        }
        Ok(AlternativeCarrier {
            power_state: CarrierPowerState::from_bits(*cps),
            carrier_ref: rest[..ref_len].to_vec(),
        })
    }
}

/// An NFC Forum **Handover Select** record (`"Hs"`): how a device offers
/// one or more out-of-band carriers (WiFi, Bluetooth, …) to a peer that
/// just tapped it — the standards-based version of the paper's WiFi
/// sharing scenario.
///
/// The payload is a version byte followed by a nested NDEF message of
/// alternative-carrier records; the carrier *configuration* records
/// travel next to the `Hs` record in the same top-level message,
/// addressed by record id.
///
/// # Examples
///
/// ```
/// use morena_ndef::rtd::{CarrierPowerState, HandoverSelect, WifiCredential};
/// use morena_ndef::NdefMessage;
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let wifi = WifiCredential::new("venue-guest", "w1f1-pass");
/// let message = HandoverSelect::new()
///     .with_carrier(CarrierPowerState::Active, b"w0", wifi.to_record(b"w0")?)
///     .to_message()?;
/// let parsed = HandoverSelect::from_message(&message)?;
/// assert_eq!(parsed.carriers().len(), 1);
/// let credential = parsed.wifi_credential(&message).expect("wifi carrier");
/// assert_eq!(credential.ssid(), "venue-guest");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HandoverSelect {
    carriers: Vec<AlternativeCarrier>,
    carrier_records: Vec<NdefRecord>,
}

impl HandoverSelect {
    /// The RTD type name of handover select records.
    pub const TYPE: &'static [u8] = b"Hs";

    /// An empty offer.
    pub fn new() -> HandoverSelect {
        HandoverSelect::default()
    }

    /// Adds a carrier: its power state, the record id linking the two,
    /// and the configuration record itself (its id is overwritten with
    /// `carrier_ref`).
    pub fn with_carrier(
        mut self,
        power_state: CarrierPowerState,
        carrier_ref: &[u8],
        configuration: NdefRecord,
    ) -> HandoverSelect {
        self.carriers.push(AlternativeCarrier { power_state, carrier_ref: carrier_ref.to_vec() });
        // Rebuild the configuration record with the linking id.
        let rebuilt = NdefRecordBuilder::new(configuration.tnf())
            .record_type(configuration.record_type())
            .id(carrier_ref)
            .payload(configuration.payload().to_vec())
            .build()
            .expect("existing record stays valid with a new id");
        self.carrier_records.push(rebuilt);
        self
    }

    /// The offered carriers.
    pub fn carriers(&self) -> &[AlternativeCarrier] {
        &self.carriers
    }

    /// Encodes the complete top-level message: the `Hs` record followed
    /// by every carrier configuration record.
    ///
    /// # Errors
    ///
    /// [`NdefError`] when a record exceeds wire limits.
    pub fn to_message(&self) -> Result<NdefMessage, NdefError> {
        let mut nested = Vec::with_capacity(self.carriers.len());
        for carrier in &self.carriers {
            nested.push(carrier.to_record()?);
        }
        let mut payload = vec![HANDOVER_VERSION];
        NdefMessage::new(nested).to_bytes_into(&mut payload);
        let mut records = vec![NdefRecord::well_known(HandoverSelect::TYPE, payload)?];
        records.extend(self.carrier_records.iter().cloned());
        Ok(NdefMessage::new(records))
    }

    /// Decodes a handover select offer from a top-level message whose
    /// first record is `Hs`.
    ///
    /// # Errors
    ///
    /// [`NdefError::MalformedRtd`] on structural violations. Versions
    /// other than 1.x are rejected (the specification demands major-
    /// version agreement).
    pub fn from_message(message: &NdefMessage) -> Result<HandoverSelect, NdefError> {
        let record = message.first();
        if record.tnf() != Tnf::WellKnown || record.record_type() != HandoverSelect::TYPE {
            return Err(NdefError::MalformedRtd { detail: "not a handover select record" });
        }
        let payload = record.payload();
        let Some((&version, nested_bytes)) = payload.split_first() else {
            return Err(NdefError::MalformedRtd { detail: "handover payload missing version" });
        };
        if version >> 4 != HANDOVER_VERSION >> 4 {
            return Err(NdefError::MalformedRtd { detail: "unsupported handover major version" });
        }
        let nested = NdefMessage::parse(nested_bytes).map_err(|_| NdefError::MalformedRtd {
            detail: "nested handover message unparseable",
        })?;
        let mut carriers = Vec::new();
        for sub in nested.records() {
            if sub.tnf() == Tnf::WellKnown && sub.record_type() == b"ac" {
                carriers.push(AlternativeCarrier::from_record(sub)?);
            }
            // Other nested records (collision resolution, errors) are
            // ignored by a selector-side reader.
        }
        let carrier_records = message.records()[1..].to_vec();
        Ok(HandoverSelect { carriers, carrier_records })
    }

    /// Resolves a carrier reference to its configuration record in the
    /// top-level `message`.
    pub fn configuration_for<'m>(
        &self,
        message: &'m NdefMessage,
        carrier_ref: &[u8],
    ) -> Option<&'m NdefRecord> {
        message.iter().find(|r| r.id() == carrier_ref)
    }

    /// Convenience: the first WiFi credential offered, if any.
    pub fn wifi_credential(&self, message: &NdefMessage) -> Option<WifiCredential> {
        self.carriers.iter().find_map(|carrier| {
            let record = self.configuration_for(message, &carrier.carrier_ref)?;
            WifiCredential::from_record(record).ok()
        })
    }
}

/// WiFi Simple Configuration attribute: SSID.
const WSC_ATTR_SSID: u16 = 0x1045;
/// WiFi Simple Configuration attribute: network key.
const WSC_ATTR_NETWORK_KEY: u16 = 0x1027;
/// The MIME type of WiFi Simple Configuration carrier records.
pub const WSC_MIME: &str = "application/vnd.wfa.wsc";

/// A WiFi credential in (simplified) **WiFi Simple Configuration** TLV
/// form — the carrier configuration payload Android actually writes when
/// sharing a network over NFC.
///
/// Only the SSID and network-key attributes are modeled; unknown
/// attributes are skipped on decode, as the WSC spec requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WifiCredential {
    ssid: String,
    network_key: String,
}

impl WifiCredential {
    /// Creates a credential.
    pub fn new(ssid: &str, network_key: &str) -> WifiCredential {
        WifiCredential { ssid: ssid.to_owned(), network_key: network_key.to_owned() }
    }

    /// The network name.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// The network key.
    pub fn network_key(&self) -> &str {
        &self.network_key
    }

    fn push_attr(out: &mut Vec<u8>, attr: u16, value: &[u8]) {
        out.extend_from_slice(&attr.to_be_bytes());
        out.extend_from_slice(&(value.len() as u16).to_be_bytes());
        out.extend_from_slice(value);
    }

    /// Encodes as a WSC MIME record carrying `id` (the handover linking
    /// id).
    ///
    /// # Errors
    ///
    /// [`NdefError`] when the credential exceeds record limits.
    pub fn to_record(&self, id: &[u8]) -> Result<NdefRecord, NdefError> {
        let mut payload = Vec::new();
        WifiCredential::push_attr(&mut payload, WSC_ATTR_SSID, self.ssid.as_bytes());
        WifiCredential::push_attr(&mut payload, WSC_ATTR_NETWORK_KEY, self.network_key.as_bytes());
        NdefRecordBuilder::new(Tnf::MimeMedia)
            .record_type(WSC_MIME.as_bytes())
            .id(id)
            .payload(payload)
            .build()
    }

    /// Decodes from a WSC MIME record, skipping unknown attributes.
    ///
    /// # Errors
    ///
    /// [`NdefError::MalformedRtd`] on wrong record kind, truncated TLVs,
    /// or a missing SSID; [`NdefError::InvalidUtf8`] on non-UTF-8 values.
    pub fn from_record(record: &NdefRecord) -> Result<WifiCredential, NdefError> {
        if !record.is_mime(WSC_MIME) {
            return Err(NdefError::MalformedRtd { detail: "not a WSC carrier record" });
        }
        let payload = record.payload();
        let mut ssid = None;
        let mut network_key = String::new();
        let mut i = 0usize;
        while i < payload.len() {
            if i + 4 > payload.len() {
                return Err(NdefError::MalformedRtd { detail: "truncated WSC attribute header" });
            }
            let attr = u16::from_be_bytes([payload[i], payload[i + 1]]);
            let len = u16::from_be_bytes([payload[i + 2], payload[i + 3]]) as usize;
            let start = i + 4;
            let end = start + len;
            if end > payload.len() {
                return Err(NdefError::MalformedRtd { detail: "truncated WSC attribute value" });
            }
            let value = &payload[start..end];
            match attr {
                WSC_ATTR_SSID => {
                    ssid = Some(
                        std::str::from_utf8(value).map_err(|_| NdefError::InvalidUtf8)?.to_owned(),
                    );
                }
                WSC_ATTR_NETWORK_KEY => {
                    network_key =
                        std::str::from_utf8(value).map_err(|_| NdefError::InvalidUtf8)?.to_owned();
                }
                _ => {} // unknown attribute: skip
            }
            i = end;
        }
        let ssid = ssid.ok_or(NdefError::MalformedRtd { detail: "WSC payload missing SSID" })?;
        Ok(WifiCredential { ssid, network_key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wifi_carrier_round_trips() {
        let wifi = WifiCredential::new("lab-net", "hunter2");
        let message = HandoverSelect::new()
            .with_carrier(CarrierPowerState::Active, b"w0", wifi.to_record(b"w0").unwrap())
            .to_message()
            .unwrap();
        // Survives the wire format.
        let wire = message.to_bytes();
        let parsed_message = NdefMessage::parse(&wire).unwrap();
        let select = HandoverSelect::from_message(&parsed_message).unwrap();
        assert_eq!(select.carriers().len(), 1);
        assert_eq!(select.carriers()[0].power_state, CarrierPowerState::Active);
        assert_eq!(select.wifi_credential(&parsed_message).unwrap(), wifi);
    }

    #[test]
    fn multiple_carriers_resolve_by_reference() {
        let wifi_a = WifiCredential::new("net-a", "ka");
        let wifi_b = WifiCredential::new("net-b", "kb");
        let message = HandoverSelect::new()
            .with_carrier(CarrierPowerState::Activating, b"a", wifi_a.to_record(b"a").unwrap())
            .with_carrier(CarrierPowerState::Active, b"b", wifi_b.to_record(b"b").unwrap())
            .to_message()
            .unwrap();
        let select = HandoverSelect::from_message(&message).unwrap();
        assert_eq!(select.carriers().len(), 2);
        let config_b = select.configuration_for(&message, b"b").unwrap();
        assert_eq!(WifiCredential::from_record(config_b).unwrap(), wifi_b);
        // First WiFi credential is the first listed carrier.
        assert_eq!(select.wifi_credential(&message).unwrap(), wifi_a);
    }

    #[test]
    fn power_states_round_trip() {
        for cps in [
            CarrierPowerState::Inactive,
            CarrierPowerState::Active,
            CarrierPowerState::Activating,
            CarrierPowerState::Unknown,
        ] {
            let ac = AlternativeCarrier { power_state: cps, carrier_ref: b"x".to_vec() };
            let back = AlternativeCarrier::from_record(&ac.to_record().unwrap()).unwrap();
            assert_eq!(back, ac);
        }
    }

    #[test]
    fn wrong_major_version_is_rejected() {
        let mut payload = vec![0x21]; // version 2.1
        payload.extend_from_slice(&NdefMessage::empty_tag().to_bytes());
        let message = NdefMessage::single(NdefRecord::well_known(b"Hs", payload).unwrap());
        assert!(matches!(
            HandoverSelect::from_message(&message).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
        // Same major, different minor: accepted.
        let mut payload = vec![0x12]; // version 1.2
        payload.extend_from_slice(&NdefMessage::empty_tag().to_bytes());
        let message = NdefMessage::single(NdefRecord::well_known(b"Hs", payload).unwrap());
        assert!(HandoverSelect::from_message(&message).is_ok());
    }

    #[test]
    fn malformed_structures_are_rejected() {
        // Not an Hs record at all.
        let message = NdefMessage::single(NdefRecord::mime("a/b", vec![]).unwrap());
        assert!(HandoverSelect::from_message(&message).is_err());
        // Empty payload.
        let message = NdefMessage::single(NdefRecord::well_known(b"Hs", vec![]).unwrap());
        assert!(HandoverSelect::from_message(&message).is_err());
        // Truncated ac record.
        assert!(AlternativeCarrier::from_record(
            &NdefRecord::well_known(b"ac", vec![0x01]).unwrap()
        )
        .is_err());
        assert!(AlternativeCarrier::from_record(
            &NdefRecord::well_known(b"ac", vec![0x01, 0x05, b'x']).unwrap()
        )
        .is_err());
    }

    #[test]
    fn wsc_skips_unknown_attributes_and_validates() {
        // Unknown attribute (0x1003) before the SSID.
        let mut payload = Vec::new();
        WifiCredential::push_attr(&mut payload, 0x1003, &[1, 2, 3]);
        WifiCredential::push_attr(&mut payload, WSC_ATTR_SSID, b"net");
        let record = NdefRecordBuilder::new(Tnf::MimeMedia)
            .record_type(WSC_MIME.as_bytes())
            .payload(payload)
            .build()
            .unwrap();
        let credential = WifiCredential::from_record(&record).unwrap();
        assert_eq!(credential.ssid(), "net");
        assert_eq!(credential.network_key(), "");

        // Missing SSID.
        let mut payload = Vec::new();
        WifiCredential::push_attr(&mut payload, WSC_ATTR_NETWORK_KEY, b"k");
        let record = NdefRecord::mime(WSC_MIME, payload).unwrap();
        assert!(WifiCredential::from_record(&record).is_err());

        // Truncated header / value.
        let record = NdefRecord::mime(WSC_MIME, vec![0x10]).unwrap();
        assert!(WifiCredential::from_record(&record).is_err());
        let record = NdefRecord::mime(WSC_MIME, vec![0x10, 0x45, 0x00, 0x09, b'x']).unwrap();
        assert!(WifiCredential::from_record(&record).is_err());

        // Wrong mime.
        let record = NdefRecord::mime("a/b", vec![]).unwrap();
        assert!(WifiCredential::from_record(&record).is_err());
    }
}
