use crate::message::NdefMessage;
use crate::record::{NdefRecord, Tnf};
use crate::rtd::{TextRecord, UriRecord};
use crate::NdefError;

/// The recommended action of a smart poster (`"act"` sub-record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum PosterAction {
    /// `0x00` — perform the action immediately (open the URI, dial, …).
    #[default]
    Execute = 0x00,
    /// `0x01` — save the content for later.
    Save = 0x01,
    /// `0x02` — open the content for editing.
    Edit = 0x02,
}

impl PosterAction {
    fn from_byte(byte: u8) -> Result<PosterAction, NdefError> {
        match byte {
            0x00 => Ok(PosterAction::Execute),
            0x01 => Ok(PosterAction::Save),
            0x02 => Ok(PosterAction::Edit),
            _ => Err(NdefError::MalformedRtd { detail: "unknown smart poster action" }),
        }
    }
}

/// An NFC Forum RTD Smart Poster (`"Sp"`): a URI bundled with optional
/// titles and a recommended action, encoded as a nested NDEF message.
///
/// # Examples
///
/// ```
/// use morena_ndef::rtd::{PosterAction, SmartPoster};
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let poster = SmartPoster::new("https://example.com/menu")
///     .with_title("en", "Today's menu")
///     .with_action(PosterAction::Execute);
/// let record = poster.to_record();
/// let back = SmartPoster::from_record(&record)?;
/// assert_eq!(back.uri(), "https://example.com/menu");
/// assert_eq!(back.title_for("en"), Some("Today's menu"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmartPoster {
    uri: UriRecord,
    titles: Vec<TextRecord>,
    action: Option<PosterAction>,
}

impl SmartPoster {
    /// The RTD type name for smart posters.
    pub const TYPE: &'static [u8] = b"Sp";

    /// Creates a smart poster around `uri` with no titles and no action.
    pub fn new(uri: &str) -> SmartPoster {
        SmartPoster { uri: UriRecord::new(uri), titles: Vec::new(), action: None }
    }

    /// Adds a language-tagged title (builder style).
    ///
    /// # Panics
    ///
    /// Panics on an invalid language code, like [`TextRecord::new`].
    pub fn with_title(mut self, language: &str, title: &str) -> SmartPoster {
        self.titles.push(TextRecord::new(language, title));
        self
    }

    /// Sets the recommended action (builder style).
    pub fn with_action(mut self, action: PosterAction) -> SmartPoster {
        self.action = Some(action);
        self
    }

    /// The poster's URI.
    pub fn uri(&self) -> &str {
        self.uri.uri()
    }

    /// All titles, in insertion order.
    pub fn titles(&self) -> &[TextRecord] {
        &self.titles
    }

    /// The title for an exact language code, when present.
    pub fn title_for(&self, language: &str) -> Option<&str> {
        self.titles.iter().find(|t| t.language() == language).map(TextRecord::text)
    }

    /// The recommended action, when present.
    pub fn action(&self) -> Option<PosterAction> {
        self.action
    }

    /// Encodes as an [`NdefRecord`] of well-known type `"Sp"` whose payload
    /// is a nested NDEF message.
    pub fn to_record(&self) -> NdefRecord {
        let mut records = Vec::with_capacity(2 + self.titles.len());
        records.push(self.uri.to_record());
        for title in &self.titles {
            records.push(title.to_record());
        }
        if let Some(action) = self.action {
            records.push(
                NdefRecord::well_known(b"act", vec![action as u8])
                    .expect("action payload within limits"),
            );
        }
        let nested = NdefMessage::new(records);
        NdefRecord::well_known(SmartPoster::TYPE, nested.to_bytes())
            .expect("poster payload within limits")
    }

    /// Decodes from a well-known `"Sp"` [`NdefRecord`].
    ///
    /// Unknown sub-records (e.g. icons, `"s"` size hints) are ignored, as
    /// the specification instructs readers to do.
    ///
    /// # Errors
    ///
    /// [`NdefError::MalformedRtd`] when the record is not a smart poster,
    /// its nested message does not parse, or it lacks the mandatory URI
    /// sub-record.
    pub fn from_record(record: &NdefRecord) -> Result<SmartPoster, NdefError> {
        if record.tnf() != Tnf::WellKnown || record.record_type() != SmartPoster::TYPE {
            return Err(NdefError::MalformedRtd { detail: "not an RTD Smart Poster record" });
        }
        let nested = NdefMessage::parse(record.payload())
            .map_err(|_| NdefError::MalformedRtd { detail: "nested poster message unparseable" })?;
        let mut uri = None;
        let mut titles = Vec::new();
        let mut action = None;
        for sub in nested.records() {
            if sub.tnf() != Tnf::WellKnown {
                continue;
            }
            match sub.record_type() {
                b"U" => {
                    if uri.is_none() {
                        uri = Some(UriRecord::from_record(sub)?);
                    } else {
                        return Err(NdefError::MalformedRtd {
                            detail: "smart poster with multiple URI sub-records",
                        });
                    }
                }
                b"T" => titles.push(TextRecord::from_record(sub)?),
                b"act" => {
                    let byte = *sub.payload().first().ok_or(NdefError::MalformedRtd {
                        detail: "empty smart poster action payload",
                    })?;
                    action = Some(PosterAction::from_byte(byte)?);
                }
                _ => {}
            }
        }
        let uri = uri.ok_or(NdefError::MalformedRtd { detail: "smart poster missing URI" })?;
        Ok(SmartPoster { uri, titles, action })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_poster_round_trips() {
        let poster = SmartPoster::new("https://example.com");
        let back = SmartPoster::from_record(&poster.to_record()).unwrap();
        assert_eq!(back, poster);
        assert_eq!(back.action(), None);
        assert!(back.titles().is_empty());
    }

    #[test]
    fn full_poster_round_trips() {
        let poster = SmartPoster::new("tel:+3225551234")
            .with_title("en", "Call us")
            .with_title("nl", "Bel ons")
            .with_action(PosterAction::Save);
        let back = SmartPoster::from_record(&poster.to_record()).unwrap();
        assert_eq!(back, poster);
        assert_eq!(back.title_for("nl"), Some("Bel ons"));
        assert_eq!(back.title_for("fr"), None);
        assert_eq!(back.action(), Some(PosterAction::Save));
    }

    #[test]
    fn unknown_sub_records_are_ignored() {
        let nested = NdefMessage::new(vec![
            UriRecord::new("https://e.com").to_record(),
            NdefRecord::well_known(b"s", vec![0, 0, 1, 0]).unwrap(),
            NdefRecord::mime("image/png", vec![1, 2, 3]).unwrap(),
        ]);
        let record = NdefRecord::well_known(b"Sp", nested.to_bytes()).unwrap();
        let poster = SmartPoster::from_record(&record).unwrap();
        assert_eq!(poster.uri(), "https://e.com");
    }

    #[test]
    fn missing_uri_is_rejected() {
        let nested = NdefMessage::new(vec![TextRecord::new("en", "no uri").to_record()]);
        let record = NdefRecord::well_known(b"Sp", nested.to_bytes()).unwrap();
        assert!(matches!(
            SmartPoster::from_record(&record).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }

    #[test]
    fn duplicate_uri_is_rejected() {
        let nested = NdefMessage::new(vec![
            UriRecord::new("https://a.com").to_record(),
            UriRecord::new("https://b.com").to_record(),
        ]);
        let record = NdefRecord::well_known(b"Sp", nested.to_bytes()).unwrap();
        assert!(matches!(
            SmartPoster::from_record(&record).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }

    #[test]
    fn bad_nested_payload_is_rejected() {
        let record = NdefRecord::well_known(b"Sp", vec![0xFF, 0x00]).unwrap();
        assert!(matches!(
            SmartPoster::from_record(&record).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }

    #[test]
    fn unknown_action_byte_is_rejected() {
        let nested = NdefMessage::new(vec![
            UriRecord::new("https://e.com").to_record(),
            NdefRecord::well_known(b"act", vec![0x09]).unwrap(),
        ]);
        let record = NdefRecord::well_known(b"Sp", nested.to_bytes()).unwrap();
        assert!(matches!(
            SmartPoster::from_record(&record).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let r = NdefRecord::mime("a/b", vec![]).unwrap();
        assert!(matches!(
            SmartPoster::from_record(&r).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }
}
