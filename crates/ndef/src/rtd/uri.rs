use crate::record::{NdefRecord, Tnf};
use crate::NdefError;

/// The NFC Forum URI abbreviation table: index = identifier code byte.
///
/// Code `0x00` means "no abbreviation"; codes above the table are reserved
/// and decoded as if they were `0x00`, per the specification's guidance.
const URI_PREFIXES: [&str; 36] = [
    "",
    "http://www.",
    "https://www.",
    "http://",
    "https://",
    "tel:",
    "mailto:",
    "ftp://anonymous:anonymous@",
    "ftp://ftp.",
    "ftps://",
    "sftp://",
    "smb://",
    "nfs://",
    "ftp://",
    "dav://",
    "news:",
    "telnet://",
    "imap:",
    "rtsp://",
    "urn:",
    "pop:",
    "sip:",
    "sips:",
    "tftp:",
    "btspp://",
    "btl2cap://",
    "btgoep://",
    "tcpobex://",
    "irdaobex://",
    "file://",
    "urn:epc:id:",
    "urn:epc:tag:",
    "urn:epc:pat:",
    "urn:epc:raw:",
    "urn:epc:",
    "urn:nfc:",
];

/// An NFC Forum RTD URI record (`"U"`): a URI compressed with the standard
/// prefix abbreviation table.
///
/// # Examples
///
/// ```
/// use morena_ndef::rtd::UriRecord;
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let uri = UriRecord::new("https://www.example.com/menu");
/// let record = uri.to_record();
/// // "https://www." is stored as the single identifier byte 0x02.
/// assert_eq!(record.payload()[0], 0x02);
/// assert_eq!(UriRecord::from_record(&record)?.uri(), "https://www.example.com/menu");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UriRecord {
    uri: String,
}

impl UriRecord {
    /// The RTD type name for URI records.
    pub const TYPE: &'static [u8] = b"U";

    /// Creates a URI record. The abbreviation table is applied at encode
    /// time; the full URI is kept here.
    pub fn new(uri: &str) -> UriRecord {
        UriRecord { uri: uri.to_owned() }
    }

    /// The full, unabbreviated URI.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Returns the `(identifier_code, remainder)` this URI abbreviates to.
    ///
    /// The longest matching prefix wins, mirroring every deployed encoder.
    pub fn abbreviate(&self) -> (u8, &str) {
        let mut best = (0u8, self.uri.as_str());
        for (code, prefix) in URI_PREFIXES.iter().enumerate().skip(1) {
            if let Some(rest) = self.uri.strip_prefix(prefix) {
                if prefix.len() > URI_PREFIXES[best.0 as usize].len() {
                    best = (code as u8, rest);
                }
            }
        }
        best
    }

    /// Encodes as an [`NdefRecord`] of well-known type `"U"`.
    pub fn to_record(&self) -> NdefRecord {
        let (code, rest) = self.abbreviate();
        let mut payload = Vec::with_capacity(1 + rest.len());
        payload.push(code);
        payload.extend_from_slice(rest.as_bytes());
        NdefRecord::well_known(UriRecord::TYPE, payload).expect("uri payload within limits")
    }

    /// Decodes from a well-known `"U"` [`NdefRecord`].
    ///
    /// Reserved identifier codes (>= `0x24`) are treated as `0x00`
    /// ("no prefix"), per the specification.
    ///
    /// # Errors
    ///
    /// * [`NdefError::MalformedRtd`] — wrong TNF/type or empty payload.
    /// * [`NdefError::InvalidUtf8`] — remainder bytes that do not decode.
    pub fn from_record(record: &NdefRecord) -> Result<UriRecord, NdefError> {
        if record.tnf() != Tnf::WellKnown || record.record_type() != UriRecord::TYPE {
            return Err(NdefError::MalformedRtd { detail: "not an RTD URI record" });
        }
        let payload = record.payload();
        let code = *payload
            .first()
            .ok_or(NdefError::MalformedRtd { detail: "uri payload missing identifier byte" })?;
        let prefix = URI_PREFIXES.get(code as usize).copied().unwrap_or("");
        let rest = std::str::from_utf8(&payload[1..]).map_err(|_| NdefError::InvalidUtf8)?;
        Ok(UriRecord { uri: format!("{prefix}{rest}") })
    }
}

impl std::fmt::Display for UriRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.uri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_prefix_round_trips() {
        for (code, prefix) in URI_PREFIXES.iter().enumerate().skip(1) {
            let uri = format!("{prefix}path/{code}");
            let record = UriRecord::new(&uri).to_record();
            assert_eq!(UriRecord::from_record(&record).unwrap().uri(), uri, "prefix {prefix:?}");
        }
    }

    #[test]
    fn longest_prefix_wins() {
        // "https://www." (0x02) must beat "https://" (0x04).
        let uri = UriRecord::new("https://www.example.com");
        let (code, rest) = uri.abbreviate();
        assert_eq!(code, 0x02);
        assert_eq!(rest, "example.com");
        // "urn:epc:id:" (0x1E) must beat "urn:" (0x13) and "urn:epc:" (0x22).
        let uri = UriRecord::new("urn:epc:id:sgtin:1");
        let (code, rest) = uri.abbreviate();
        assert_eq!(code, 0x1E);
        assert_eq!(rest, "sgtin:1");
    }

    #[test]
    fn unknown_scheme_uses_code_zero() {
        let uri = UriRecord::new("geo:50.85,4.35");
        let (code, rest) = uri.abbreviate();
        assert_eq!(code, 0);
        assert_eq!(rest, "geo:50.85,4.35");
        let record = UriRecord::new("geo:50.85,4.35").to_record();
        assert_eq!(UriRecord::from_record(&record).unwrap().uri(), "geo:50.85,4.35");
    }

    #[test]
    fn reserved_codes_decode_as_no_prefix() {
        let r = NdefRecord::well_known(b"U", vec![0x7F, b'x', b'y']).unwrap();
        assert_eq!(UriRecord::from_record(&r).unwrap().uri(), "xy");
    }

    #[test]
    fn rejects_wrong_record_kind() {
        let r = NdefRecord::mime("text/plain", vec![0, b'a']).unwrap();
        assert!(matches!(UriRecord::from_record(&r).unwrap_err(), NdefError::MalformedRtd { .. }));
        let empty = NdefRecord::well_known(b"U", vec![]).unwrap();
        assert!(matches!(
            UriRecord::from_record(&empty).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }

    #[test]
    fn rejects_invalid_utf8_remainder() {
        let r = NdefRecord::well_known(b"U", vec![0x01, 0xFF]).unwrap();
        assert_eq!(UriRecord::from_record(&r).unwrap_err(), NdefError::InvalidUtf8);
    }

    #[test]
    fn display_shows_full_uri() {
        assert_eq!(UriRecord::new("tel:+3225551234").to_string(), "tel:+3225551234");
    }

    #[test]
    fn empty_uri_round_trips() {
        let record = UriRecord::new("").to_record();
        assert_eq!(UriRecord::from_record(&record).unwrap().uri(), "");
    }
}
