use crate::record::{NdefRecord, Tnf};
use crate::NdefError;

/// Character encoding of an RTD Text record, stored in bit 7 of the status
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TextEncoding {
    /// UTF-8 (status bit clear) — the overwhelmingly common case.
    #[default]
    Utf8,
    /// UTF-16 with byte-order mark (status bit set).
    ///
    /// This implementation stores and reads UTF-16 payloads as big-endian
    /// when no BOM is present, matching the specification's default.
    Utf16,
}

/// An NFC Forum RTD Text record (`"T"`): a language-tagged string.
///
/// Wire layout: one status byte (bit 7 = UTF-16 flag, bits 5..0 = language
/// code length), the IANA language code, then the text.
///
/// # Examples
///
/// ```
/// use morena_ndef::rtd::TextRecord;
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let record = TextRecord::new("en", "Hello").to_record();
/// let back = TextRecord::from_record(&record)?;
/// assert_eq!(back.text(), "Hello");
/// assert_eq!(back.language(), "en");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TextRecord {
    language: String,
    text: String,
    encoding: TextEncoding,
}

impl TextRecord {
    /// The RTD type name for text records.
    pub const TYPE: &'static [u8] = b"T";

    /// Creates a UTF-8 text record.
    ///
    /// # Panics
    ///
    /// Panics if `language` is empty or longer than 63 bytes (the status
    /// byte cannot represent it). Use [`TextRecord::try_new`] to handle the
    /// error instead.
    pub fn new(language: &str, text: &str) -> TextRecord {
        TextRecord::try_new(language, text, TextEncoding::Utf8)
            .expect("language code must be 1..=63 bytes")
    }

    /// Creates a text record, validating the language code.
    ///
    /// # Errors
    ///
    /// Returns [`NdefError::BadLanguageCode`] when `language` is empty or
    /// longer than 63 bytes.
    pub fn try_new(
        language: &str,
        text: &str,
        encoding: TextEncoding,
    ) -> Result<TextRecord, NdefError> {
        if language.is_empty() || language.len() > 63 {
            return Err(NdefError::BadLanguageCode);
        }
        Ok(TextRecord { language: language.to_owned(), text: text.to_owned(), encoding })
    }

    /// The IANA language code, e.g. `"en"` or `"nl-BE"`.
    pub fn language(&self) -> &str {
        &self.language
    }

    /// The text content.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The character encoding used on the wire.
    pub fn encoding(&self) -> TextEncoding {
        self.encoding
    }

    /// Encodes this text as an [`NdefRecord`] of well-known type `"T"`.
    pub fn to_record(&self) -> NdefRecord {
        let mut payload = Vec::with_capacity(1 + self.language.len() + self.text.len());
        let mut status = self.language.len() as u8;
        if self.encoding == TextEncoding::Utf16 {
            status |= 0x80;
        }
        payload.push(status);
        payload.extend_from_slice(self.language.as_bytes());
        match self.encoding {
            TextEncoding::Utf8 => payload.extend_from_slice(self.text.as_bytes()),
            TextEncoding::Utf16 => {
                // Emit an explicit big-endian BOM (the specification's
                // recommendation). Without it a text beginning with U+FEFF
                // would be indistinguishable from a BOM on decode.
                payload.extend_from_slice(&[0xFE, 0xFF]);
                for unit in self.text.encode_utf16() {
                    payload.extend_from_slice(&unit.to_be_bytes());
                }
            }
        }
        NdefRecord::well_known(TextRecord::TYPE, payload).expect("text payload within limits")
    }

    /// Decodes a text record from a well-known `"T"` [`NdefRecord`].
    ///
    /// # Errors
    ///
    /// * [`NdefError::MalformedRtd`] — wrong TNF/type, truncated payload,
    ///   or a language length exceeding the payload.
    /// * [`NdefError::InvalidUtf8`] — text bytes that do not decode.
    pub fn from_record(record: &NdefRecord) -> Result<TextRecord, NdefError> {
        if record.tnf() != Tnf::WellKnown || record.record_type() != TextRecord::TYPE {
            return Err(NdefError::MalformedRtd { detail: "not an RTD Text record" });
        }
        let payload = record.payload();
        let status = *payload
            .first()
            .ok_or(NdefError::MalformedRtd { detail: "text payload missing status byte" })?;
        let lang_len = (status & 0x3F) as usize;
        if lang_len == 0 {
            return Err(NdefError::BadLanguageCode);
        }
        if payload.len() < 1 + lang_len {
            return Err(NdefError::MalformedRtd { detail: "language code truncated" });
        }
        let language = std::str::from_utf8(&payload[1..1 + lang_len])
            .map_err(|_| NdefError::InvalidUtf8)?
            .to_owned();
        let body = &payload[1 + lang_len..];
        let (text, encoding) = if status & 0x80 != 0 {
            (decode_utf16_be(body)?, TextEncoding::Utf16)
        } else {
            (
                std::str::from_utf8(body).map_err(|_| NdefError::InvalidUtf8)?.to_owned(),
                TextEncoding::Utf8,
            )
        };
        Ok(TextRecord { language, text, encoding })
    }
}

fn decode_utf16_be(body: &[u8]) -> Result<String, NdefError> {
    if !body.len().is_multiple_of(2) {
        return Err(NdefError::MalformedRtd { detail: "odd UTF-16 payload length" });
    }
    // Honor a byte-order mark when present; default to big-endian.
    let (units, little) = match body {
        [0xFE, 0xFF, rest @ ..] => (rest, false),
        [0xFF, 0xFE, rest @ ..] => (rest, true),
        rest => (rest, false),
    };
    let decoded: Vec<u16> = units
        .chunks_exact(2)
        .map(|pair| {
            if little {
                u16::from_le_bytes([pair[0], pair[1]])
            } else {
                u16::from_be_bytes([pair[0], pair[1]])
            }
        })
        .collect();
    String::from_utf16(&decoded).map_err(|_| NdefError::InvalidUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utf8_round_trip() {
        let t = TextRecord::new("en", "hello, wörld ✓");
        let back = TextRecord::from_record(&t.to_record()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn utf16_round_trip() {
        let t = TextRecord::try_new("nl-BE", "smiley \u{1F600}", TextEncoding::Utf16).unwrap();
        let back = TextRecord::from_record(&t.to_record()).unwrap();
        assert_eq!(back.text(), t.text());
        assert_eq!(back.encoding(), TextEncoding::Utf16);
    }

    #[test]
    fn utf16_bom_variants_decode() {
        // "hi" in UTF-16BE with BOM.
        let mut payload = vec![0x82, b'e', b'n'];
        payload.extend_from_slice(&[0xFE, 0xFF, 0x00, b'h', 0x00, b'i']);
        let r = NdefRecord::well_known(b"T", payload).unwrap();
        assert_eq!(TextRecord::from_record(&r).unwrap().text(), "hi");
        // Little-endian BOM.
        let mut payload = vec![0x82, b'e', b'n'];
        payload.extend_from_slice(&[0xFF, 0xFE, b'h', 0x00, b'i', 0x00]);
        let r = NdefRecord::well_known(b"T", payload).unwrap();
        assert_eq!(TextRecord::from_record(&r).unwrap().text(), "hi");
    }

    #[test]
    fn bad_language_codes_rejected() {
        assert_eq!(
            TextRecord::try_new("", "x", TextEncoding::Utf8).unwrap_err(),
            NdefError::BadLanguageCode
        );
        let long = "a".repeat(64);
        assert_eq!(
            TextRecord::try_new(&long, "x", TextEncoding::Utf8).unwrap_err(),
            NdefError::BadLanguageCode
        );
        assert!(TextRecord::try_new(&"a".repeat(63), "x", TextEncoding::Utf8).is_ok());
    }

    #[test]
    #[should_panic(expected = "language code")]
    fn new_panics_on_bad_language() {
        TextRecord::new("", "x");
    }

    #[test]
    fn from_record_rejects_wrong_type() {
        let r = NdefRecord::mime("text/plain", b"x".to_vec()).unwrap();
        assert!(matches!(TextRecord::from_record(&r).unwrap_err(), NdefError::MalformedRtd { .. }));
    }

    #[test]
    fn from_record_rejects_truncated_payloads() {
        let empty = NdefRecord::well_known(b"T", vec![]).unwrap();
        assert!(TextRecord::from_record(&empty).is_err());
        // Status claims a 5-byte language but only 2 bytes follow.
        let short = NdefRecord::well_known(b"T", vec![0x05, b'e', b'n']).unwrap();
        assert!(matches!(
            TextRecord::from_record(&short).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
    }

    #[test]
    fn from_record_rejects_invalid_utf8_text() {
        let r = NdefRecord::well_known(b"T", vec![0x02, b'e', b'n', 0xFF, 0xFE, 0xFD]).unwrap();
        // 0xFF 0xFE 0xFD is not valid UTF-8.
        assert_eq!(TextRecord::from_record(&r).unwrap_err(), NdefError::InvalidUtf8);
    }

    #[test]
    fn odd_utf16_length_rejected() {
        let r = NdefRecord::well_known(b"T", vec![0x82, b'e', b'n', 0x00]).unwrap();
        assert!(matches!(TextRecord::from_record(&r).unwrap_err(), NdefError::MalformedRtd { .. }));
    }

    #[test]
    fn empty_text_is_fine() {
        let t = TextRecord::new("en", "");
        assert_eq!(TextRecord::from_record(&t.to_record()).unwrap().text(), "");
    }
}
