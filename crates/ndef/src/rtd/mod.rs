//! NFC Forum *Record Type Definitions* (RTDs).
//!
//! These are the well-known record types (`Tnf::WellKnown`) that mainstream
//! NFC applications actually store on tags: human-readable text
//! ([`TextRecord`]), URIs with the standard abbreviation table
//! ([`UriRecord`]), and composite smart posters ([`SmartPoster`]).
//!
//! Each RTD offers `to_record` / `from_record` conversions so applications
//! and the MORENA converter layer can move between typed values and raw
//! [`crate::NdefRecord`]s.

mod aar;
mod handover;
mod smart_poster;
mod text;
mod uri;

pub use aar::AndroidApplicationRecord;
pub use handover::{
    AlternativeCarrier, CarrierPowerState, HandoverSelect, WifiCredential, HANDOVER_VERSION,
    WSC_MIME,
};
pub use smart_poster::{PosterAction, SmartPoster};
pub use text::{TextEncoding, TextRecord};
pub use uri::UriRecord;
