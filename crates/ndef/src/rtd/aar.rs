use crate::record::{NdefRecord, Tnf};
use crate::NdefError;

/// An **Android Application Record** (AAR): the external-type record
/// (`android.com:pkg`) Android uses to route a scanned tag to a specific
/// application, bypassing intent filters.
///
/// Appending an AAR to a message is how deployed NFC stickers pin
/// themselves to one app; the MORENA evaluation applications use it in
/// tests to assert cross-record coexistence.
///
/// # Examples
///
/// ```
/// use morena_ndef::rtd::AndroidApplicationRecord;
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let aar = AndroidApplicationRecord::new("com.example.wifijoiner");
/// let record = aar.to_record();
/// let back = AndroidApplicationRecord::from_record(&record)?;
/// assert_eq!(back.package(), "com.example.wifijoiner");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AndroidApplicationRecord {
    package: String,
}

impl AndroidApplicationRecord {
    /// The external record type of AARs.
    pub const TYPE: &'static str = "android.com:pkg";

    /// Creates an AAR for `package`.
    pub fn new(package: &str) -> AndroidApplicationRecord {
        AndroidApplicationRecord { package: package.to_owned() }
    }

    /// The target package name.
    pub fn package(&self) -> &str {
        &self.package
    }

    /// Encodes as an external-type [`NdefRecord`].
    pub fn to_record(&self) -> NdefRecord {
        NdefRecord::external(AndroidApplicationRecord::TYPE, self.package.as_bytes().to_vec())
            .expect("package name within limits")
    }

    /// Decodes from an external-type [`NdefRecord`].
    ///
    /// # Errors
    ///
    /// [`NdefError::MalformedRtd`] for a record of any other kind;
    /// [`NdefError::InvalidUtf8`] for a non-UTF-8 package payload.
    pub fn from_record(record: &NdefRecord) -> Result<AndroidApplicationRecord, NdefError> {
        if record.tnf() != Tnf::External
            || record.record_type() != AndroidApplicationRecord::TYPE.as_bytes()
        {
            return Err(NdefError::MalformedRtd { detail: "not an Android Application Record" });
        }
        let package =
            std::str::from_utf8(record.payload()).map_err(|_| NdefError::InvalidUtf8)?.to_owned();
        Ok(AndroidApplicationRecord { package })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let aar = AndroidApplicationRecord::new("be.vub.soft.morena");
        let back = AndroidApplicationRecord::from_record(&aar.to_record()).unwrap();
        assert_eq!(back, aar);
        assert_eq!(back.package(), "be.vub.soft.morena");
    }

    #[test]
    fn rejects_other_records() {
        let other = NdefRecord::mime("a/b", b"x".to_vec()).unwrap();
        assert!(matches!(
            AndroidApplicationRecord::from_record(&other).unwrap_err(),
            NdefError::MalformedRtd { .. }
        ));
        let wrong_type = NdefRecord::external("other.com:x", b"p".to_vec()).unwrap();
        assert!(AndroidApplicationRecord::from_record(&wrong_type).is_err());
    }

    #[test]
    fn rejects_invalid_utf8() {
        let bad = NdefRecord::external(AndroidApplicationRecord::TYPE, vec![0xFF, 0xFE]).unwrap();
        assert_eq!(
            AndroidApplicationRecord::from_record(&bad).unwrap_err(),
            NdefError::InvalidUtf8
        );
    }

    #[test]
    fn coexists_with_payload_records_in_a_message() {
        use crate::NdefMessage;
        let message = NdefMessage::new(vec![
            NdefRecord::mime("application/vnd.app+json", br#"{"x":1}"#.to_vec()).unwrap(),
            AndroidApplicationRecord::new("com.example.app").to_record(),
        ]);
        let parsed = NdefMessage::parse(&message.to_bytes()).unwrap();
        let aar =
            parsed.iter().find_map(|r| AndroidApplicationRecord::from_record(r).ok()).unwrap();
        assert_eq!(aar.package(), "com.example.app");
    }
}
