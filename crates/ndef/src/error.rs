use std::error::Error;
use std::fmt;

/// Errors produced while constructing, encoding, or decoding NDEF data.
///
/// Every variant pinpoints the structural rule of the NDEF specification
/// that was violated, so callers (and tests) can assert on the precise
/// failure mode instead of a generic "parse error".
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NdefError {
    /// The input ended before a complete record could be read.
    ///
    /// Carries the number of additional bytes that were needed at the point
    /// of failure (a lower bound; more may be required after those).
    UnexpectedEof {
        /// How many more bytes were needed, at minimum.
        needed: usize,
    },
    /// The reserved TNF value `0x07` was encountered.
    ReservedTnf,
    /// A record with TNF `Empty` carried a non-empty type, id, or payload.
    NonEmptyEmptyRecord,
    /// A record with TNF `Unknown` carried a non-empty type field.
    UnknownWithType,
    /// A record with TNF `Unchanged` appeared outside a chunk sequence.
    UnexpectedUnchanged,
    /// A chunk sequence was started (CF=1) but not terminated before the
    /// message ended or another record began.
    UnterminatedChunk,
    /// A middle or terminating chunk carried a type or id, which only the
    /// initial chunk may do.
    ChunkWithType,
    /// The first record did not have the Message Begin flag set.
    MissingMessageBegin,
    /// A record after the first had the Message Begin flag set.
    DuplicateMessageBegin,
    /// The final record did not have the Message End flag set.
    MissingMessageEnd,
    /// Data followed a record with the Message End flag set.
    TrailingData {
        /// Number of unconsumed bytes after the message end.
        trailing: usize,
    },
    /// A length field exceeded [`crate::MAX_PAYLOAD_LEN`].
    PayloadTooLarge {
        /// The declared length.
        declared: usize,
    },
    /// A type field longer than 255 bytes was supplied at build time.
    TypeTooLong {
        /// The supplied length.
        len: usize,
    },
    /// An id field longer than 255 bytes was supplied at build time.
    IdTooLong {
        /// The supplied length.
        len: usize,
    },
    /// An empty message (zero records) was asked to encode itself.
    ///
    /// The NDEF specification requires at least one record; encode an
    /// explicit empty record (TNF `Empty`) to represent "nothing".
    EmptyMessage,
    /// A well-known record (RTD) payload failed structural validation.
    MalformedRtd {
        /// Human-readable description of the violation.
        detail: &'static str,
    },
    /// A language code outside `[1, 63]` bytes was supplied to a text
    /// record, which cannot be represented in the status byte.
    BadLanguageCode,
    /// Payload bytes that should have been UTF-8 were not.
    InvalidUtf8,
}

impl fmt::Display for NdefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdefError::UnexpectedEof { needed } => {
                write!(f, "unexpected end of NDEF data, {needed} more byte(s) needed")
            }
            NdefError::ReservedTnf => write!(f, "reserved TNF value 0x07"),
            NdefError::NonEmptyEmptyRecord => {
                write!(f, "TNF Empty record must have empty type, id, and payload")
            }
            NdefError::UnknownWithType => {
                write!(f, "TNF Unknown record must have an empty type field")
            }
            NdefError::UnexpectedUnchanged => {
                write!(f, "TNF Unchanged record outside a chunk sequence")
            }
            NdefError::UnterminatedChunk => write!(f, "chunk sequence was never terminated"),
            NdefError::ChunkWithType => {
                write!(f, "non-initial chunk carries a type or id field")
            }
            NdefError::MissingMessageBegin => {
                write!(f, "first record lacks the message-begin flag")
            }
            NdefError::DuplicateMessageBegin => {
                write!(f, "message-begin flag repeated inside the message")
            }
            NdefError::MissingMessageEnd => {
                write!(f, "last record lacks the message-end flag")
            }
            NdefError::TrailingData { trailing } => {
                write!(f, "{trailing} byte(s) of trailing data after message end")
            }
            NdefError::PayloadTooLarge { declared } => {
                write!(f, "declared payload length {declared} exceeds the decoder limit")
            }
            NdefError::TypeTooLong { len } => {
                write!(f, "record type of {len} bytes exceeds the 255-byte limit")
            }
            NdefError::IdTooLong { len } => {
                write!(f, "record id of {len} bytes exceeds the 255-byte limit")
            }
            NdefError::EmptyMessage => {
                write!(f, "an NDEF message must contain at least one record")
            }
            NdefError::MalformedRtd { detail } => {
                write!(f, "malformed well-known record: {detail}")
            }
            NdefError::BadLanguageCode => {
                write!(f, "text record language code must be 1..=63 bytes")
            }
            NdefError::InvalidUtf8 => write!(f, "payload is not valid UTF-8"),
        }
    }
}

impl Error for NdefError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            NdefError::UnexpectedEof { needed: 3 },
            NdefError::ReservedTnf,
            NdefError::NonEmptyEmptyRecord,
            NdefError::UnknownWithType,
            NdefError::UnexpectedUnchanged,
            NdefError::UnterminatedChunk,
            NdefError::ChunkWithType,
            NdefError::MissingMessageBegin,
            NdefError::DuplicateMessageBegin,
            NdefError::MissingMessageEnd,
            NdefError::TrailingData { trailing: 1 },
            NdefError::PayloadTooLarge { declared: 9 },
            NdefError::TypeTooLong { len: 300 },
            NdefError::IdTooLong { len: 300 },
            NdefError::EmptyMessage,
            NdefError::MalformedRtd { detail: "x" },
            NdefError::BadLanguageCode,
            NdefError::InvalidUtf8,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NdefError>();
    }
}
