//! # morena-ndef
//!
//! A standalone implementation of the **NFC Data Exchange Format (NDEF)**
//! wire format, as standardized by the NFC Forum and used by the Android
//! NFC stack that the MORENA middleware (Middleware 2012) is built on.
//!
//! The crate provides:
//!
//! * [`NdefRecord`] — a single NDEF record with its type name format
//!   ([`Tnf`]), type, optional id, and payload.
//! * [`NdefMessage`] — an ordered sequence of records with binary
//!   encoding/decoding, including support for *chunked* records
//!   (`CF`/`TNF_UNCHANGED` reassembly).
//! * [`rtd`] — the NFC Forum *Record Type Definitions* most applications
//!   use: [`rtd::TextRecord`], [`rtd::UriRecord`] (with the standard URI
//!   abbreviation table), [`rtd::SmartPoster`], plus MIME and external
//!   types.
//!
//! The encoder and decoder are strict: a message that round-trips through
//! [`NdefMessage::to_bytes`] and [`NdefMessage::parse`] is guaranteed to be
//! structurally identical, and malformed input is rejected with a precise
//! [`NdefError`].
//!
//! # Examples
//!
//! ```
//! use morena_ndef::{NdefMessage, rtd::TextRecord};
//!
//! # fn main() -> Result<(), morena_ndef::NdefError> {
//! let text = TextRecord::new("en", "hello world");
//! let message = NdefMessage::new(vec![text.to_record()]);
//! let bytes = message.to_bytes();
//! let parsed = NdefMessage::parse(&bytes)?;
//! assert_eq!(parsed, message);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod message;
mod record;

pub mod rtd;

pub use builder::NdefMessageBuilder;
pub use error::NdefError;
pub use message::NdefMessage;
pub use record::{NdefRecord, NdefRecordBuilder, Tnf};

/// Maximum payload size this implementation accepts for a single record.
///
/// The NDEF specification allows payloads up to `u32::MAX` bytes; real NFC
/// tags top out in the kilobyte range. We cap at 1 MiB to keep the decoder
/// resistant to hostile length fields while remaining far above anything a
/// tag can store.
pub const MAX_PAYLOAD_LEN: usize = 1 << 20;

/// Reserved external record type carrying a MORENA causal trace context
/// on beam/peer payloads (see `morena-obs`' trace module for the payload
/// layout: version byte + trace id + sender span id, big-endian).
///
/// The record is middleware-internal: the sender's executor appends it
/// and the receiver strips it before application delivery, so converters
/// and `check_condition` predicates never observe it. Decoders that do
/// not understand the type (pre-trace peers, the `baseline` tech stack)
/// carry it through untouched — it is a well-formed NFC Forum external
/// record, nothing more.
pub const TRACE_RECORD_TYPE: &str = "morena.example:trace";
