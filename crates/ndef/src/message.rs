use crate::record::{NdefRecord, Tnf};
use crate::{NdefError, MAX_PAYLOAD_LEN};

const FLAG_MB: u8 = 0x80;
const FLAG_ME: u8 = 0x40;
const FLAG_CF: u8 = 0x20;
const FLAG_SR: u8 = 0x10;
const FLAG_IL: u8 = 0x08;
const TNF_MASK: u8 = 0x07;

/// An ordered sequence of [`NdefRecord`]s — the unit of data stored on an
/// NFC tag or pushed between devices.
///
/// # Invariant
///
/// A message always contains at least one record. Constructing a message
/// from an empty vector yields the canonical single-empty-record message,
/// which is also how a formatted-but-blank tag is represented on the wire.
///
/// # Examples
///
/// ```
/// use morena_ndef::{NdefMessage, NdefRecord};
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let msg = NdefMessage::new(vec![NdefRecord::mime("text/plain", b"hi".to_vec())?]);
/// let wire = msg.to_bytes();
/// assert_eq!(NdefMessage::parse(&wire)?, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NdefMessage {
    records: Vec<NdefRecord>,
}

impl NdefMessage {
    /// Creates a message from `records`, normalizing the empty vector to
    /// the canonical empty-record message (see the type-level invariant).
    pub fn new(records: Vec<NdefRecord>) -> NdefMessage {
        if records.is_empty() {
            NdefMessage { records: vec![NdefRecord::empty()] }
        } else {
            NdefMessage { records }
        }
    }

    /// Creates a message holding a single record.
    pub fn single(record: NdefRecord) -> NdefMessage {
        NdefMessage { records: vec![record] }
    }

    /// The message written to a freshly formatted tag: one empty record.
    pub fn empty_tag() -> NdefMessage {
        NdefMessage::single(NdefRecord::empty())
    }

    /// Returns `true` when the message is the canonical blank-tag message.
    pub fn is_blank(&self) -> bool {
        self.records.len() == 1 && self.records[0].is_empty_record()
    }

    /// The records of the message, in order.
    pub fn records(&self) -> &[NdefRecord] {
        &self.records
    }

    /// Consumes the message, returning its records.
    pub fn into_records(self) -> Vec<NdefRecord> {
        self.records
    }

    /// The first record. A message always has one (see invariant).
    pub fn first(&self) -> &NdefRecord {
        &self.records[0]
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, NdefRecord> {
        self.records.iter()
    }

    /// Total encoded size in bytes (without chunking).
    pub fn encoded_len(&self) -> usize {
        self.records.iter().map(NdefRecord::encoded_len).sum()
    }

    /// Encodes the message to its binary wire form, one wire record per
    /// logical record (no chunking).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.to_bytes_into(&mut out);
        out
    }

    /// Appends the binary wire form to `out` without allocating a fresh
    /// buffer (beyond growing `out` once to fit, when needed). Hot paths
    /// reuse one scratch buffer across encodes; [`to_bytes`]
    /// (NdefMessage::to_bytes) is this over a fresh `Vec`.
    pub fn to_bytes_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        let last = self.records.len() - 1;
        for (i, record) in self.records.iter().enumerate() {
            encode_wire_record(
                out,
                i == 0,
                i == last,
                false,
                record.tnf().bits(),
                record.record_type(),
                record.id(),
                record.payload(),
            );
        }
    }

    /// Encodes the message, splitting any payload larger than `max_chunk`
    /// bytes into a chunked record sequence (`CF` + `TNF_UNCHANGED`).
    ///
    /// Chunked encoding exists so transports with small frame limits can
    /// stream a large record; [`NdefMessage::parse`] transparently
    /// reassembles the sequence.
    ///
    /// # Panics
    ///
    /// Panics if `max_chunk` is zero.
    pub fn to_bytes_chunked(&self, max_chunk: usize) -> Vec<u8> {
        assert!(max_chunk > 0, "max_chunk must be positive");
        let mut out = Vec::new();
        let last = self.records.len() - 1;
        for (i, record) in self.records.iter().enumerate() {
            let mb = i == 0;
            let me = i == last;
            let payload = record.payload();
            if payload.len() <= max_chunk {
                encode_wire_record(
                    &mut out,
                    mb,
                    me,
                    false,
                    record.tnf().bits(),
                    record.record_type(),
                    record.id(),
                    payload,
                );
            } else {
                let chunks: Vec<&[u8]> = payload.chunks(max_chunk).collect();
                let last_chunk = chunks.len() - 1;
                for (c, chunk) in chunks.iter().enumerate() {
                    let initial = c == 0;
                    let terminal = c == last_chunk;
                    encode_wire_record(
                        &mut out,
                        mb && initial,
                        me && terminal,
                        !terminal,
                        if initial { record.tnf().bits() } else { Tnf::Unchanged.bits() },
                        if initial { record.record_type() } else { &[] },
                        if initial { record.id() } else { &[] },
                        chunk,
                    );
                }
            }
        }
        out
    }

    /// Decodes a message from its binary wire form, reassembling chunked
    /// record sequences into logical records.
    ///
    /// # Errors
    ///
    /// Any violation of the NDEF structural rules is reported with a
    /// specific [`NdefError`]: truncated input, reserved TNF, misplaced
    /// begin/end flags, malformed chunk sequences, trailing bytes, or
    /// oversized length fields.
    pub fn parse(data: &[u8]) -> Result<NdefMessage, NdefError> {
        let mut cursor = Cursor { data, pos: 0 };
        let mut records = Vec::new();
        let mut chunk: Option<ChunkState> = None;
        let mut saw_end = false;
        let mut first = true;

        while !saw_end {
            if !first && cursor.pos == data.len() {
                // The input ran out cleanly on a record boundary without
                // any record carrying ME: either a chunk sequence cut
                // off mid-stream or a message whose tail records were
                // lost. Both must be structural errors, not EOF noise —
                // and never a silently shortened message.
                return Err(if chunk.is_some() {
                    NdefError::UnterminatedChunk
                } else {
                    NdefError::MissingMessageEnd
                });
            }
            let wire = cursor.read_wire_record()?;
            if first {
                if !wire.mb {
                    return Err(NdefError::MissingMessageBegin);
                }
                first = false;
            } else if wire.mb {
                return Err(NdefError::DuplicateMessageBegin);
            }
            saw_end = wire.me;

            match (&mut chunk, wire.tnf) {
                (None, Tnf::Unchanged) => return Err(NdefError::UnexpectedUnchanged),
                (None, tnf) => {
                    if wire.cf {
                        if wire.me {
                            // A chunk sequence cannot end the message on its
                            // initial chunk.
                            return Err(NdefError::UnterminatedChunk);
                        }
                        chunk = Some(ChunkState {
                            tnf,
                            record_type: wire.record_type,
                            id: wire.id,
                            payload: wire.payload,
                        });
                    } else {
                        records.push(build_record(tnf, wire.record_type, wire.id, wire.payload)?);
                    }
                }
                (Some(state), Tnf::Unchanged) => {
                    if !wire.record_type.is_empty() || !wire.id.is_empty() {
                        return Err(NdefError::ChunkWithType);
                    }
                    if state.payload.len() + wire.payload.len() > MAX_PAYLOAD_LEN {
                        return Err(NdefError::PayloadTooLarge {
                            declared: state.payload.len() + wire.payload.len(),
                        });
                    }
                    state.payload.extend_from_slice(&wire.payload);
                    if !wire.cf {
                        let done = chunk.take().expect("chunk state present");
                        records.push(build_record(
                            done.tnf,
                            done.record_type,
                            done.id,
                            done.payload,
                        )?);
                    } else if wire.me {
                        return Err(NdefError::UnterminatedChunk);
                    }
                }
                (Some(_), _) => return Err(NdefError::UnterminatedChunk),
            }
        }

        if chunk.is_some() {
            return Err(NdefError::UnterminatedChunk);
        }
        if cursor.pos != data.len() {
            return Err(NdefError::TrailingData { trailing: data.len() - cursor.pos });
        }
        if records.is_empty() {
            // Unreachable with the flag rules above, but keep the invariant airtight.
            return Err(NdefError::MissingMessageEnd);
        }
        Ok(NdefMessage { records })
    }
}

impl From<NdefRecord> for NdefMessage {
    fn from(record: NdefRecord) -> NdefMessage {
        NdefMessage::single(record)
    }
}

impl<'a> IntoIterator for &'a NdefMessage {
    type Item = &'a NdefRecord;
    type IntoIter = std::slice::Iter<'a, NdefRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for NdefMessage {
    type Item = NdefRecord;
    type IntoIter = std::vec::IntoIter<NdefRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl FromIterator<NdefRecord> for NdefMessage {
    fn from_iter<I: IntoIterator<Item = NdefRecord>>(iter: I) -> NdefMessage {
        NdefMessage::new(iter.into_iter().collect())
    }
}

fn build_record(
    tnf: Tnf,
    record_type: Vec<u8>,
    id: Vec<u8>,
    payload: Vec<u8>,
) -> Result<NdefRecord, NdefError> {
    NdefRecord::new(tnf, record_type, id, payload)
}

struct ChunkState {
    tnf: Tnf,
    record_type: Vec<u8>,
    id: Vec<u8>,
    payload: Vec<u8>,
}

struct WireRecord {
    mb: bool,
    me: bool,
    cf: bool,
    tnf: Tnf,
    record_type: Vec<u8>,
    id: Vec<u8>,
    payload: Vec<u8>,
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NdefError> {
        if self.pos + n > self.data.len() {
            return Err(NdefError::UnexpectedEof { needed: self.pos + n - self.data.len() });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_u8(&mut self) -> Result<u8, NdefError> {
        Ok(self.take(1)?[0])
    }

    fn read_wire_record(&mut self) -> Result<WireRecord, NdefError> {
        let header = self.read_u8()?;
        let tnf = Tnf::from_bits(header & TNF_MASK)?;
        let type_len = self.read_u8()? as usize;
        let payload_len = if header & FLAG_SR != 0 {
            self.read_u8()? as usize
        } else {
            let b = self.take(4)?;
            u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize
        };
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(NdefError::PayloadTooLarge { declared: payload_len });
        }
        let id_len = if header & FLAG_IL != 0 { self.read_u8()? as usize } else { 0 };
        let record_type = self.take(type_len)?.to_vec();
        let id = self.take(id_len)?.to_vec();
        let payload = self.take(payload_len)?.to_vec();
        Ok(WireRecord {
            mb: header & FLAG_MB != 0,
            me: header & FLAG_ME != 0,
            cf: header & FLAG_CF != 0,
            tnf,
            record_type,
            id,
            payload,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_wire_record(
    out: &mut Vec<u8>,
    mb: bool,
    me: bool,
    cf: bool,
    tnf_bits: u8,
    record_type: &[u8],
    id: &[u8],
    payload: &[u8],
) {
    let short = payload.len() <= u8::MAX as usize;
    let mut header = tnf_bits;
    if mb {
        header |= FLAG_MB;
    }
    if me {
        header |= FLAG_ME;
    }
    if cf {
        header |= FLAG_CF;
    }
    if short {
        header |= FLAG_SR;
    }
    if !id.is_empty() {
        header |= FLAG_IL;
    }
    out.push(header);
    out.push(record_type.len() as u8);
    if short {
        out.push(payload.len() as u8);
    } else {
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    }
    if !id.is_empty() {
        out.push(id.len() as u8);
    }
    out.extend_from_slice(record_type);
    out.extend_from_slice(id);
    out.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mime(t: &str, p: &[u8]) -> NdefRecord {
        NdefRecord::mime(t, p.to_vec()).unwrap()
    }

    #[test]
    fn round_trip_single_record() {
        let msg = NdefMessage::single(mime("text/plain", b"hello"));
        let parsed = NdefMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn round_trip_multi_record() {
        let msg = NdefMessage::new(vec![
            mime("text/plain", b"one"),
            NdefRecord::well_known(b"T", vec![0x02, b'e', b'n', b'h', b'i']).unwrap(),
            NdefRecord::external("ex.com:t", vec![1, 2, 3]).unwrap(),
        ]);
        assert_eq!(NdefMessage::parse(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn to_bytes_into_appends_and_matches_to_bytes() {
        let msg = NdefMessage::new(vec![mime("text/plain", b"one"), mime("a/b", b"two")]);
        let mut buf = vec![0xEE];
        msg.to_bytes_into(&mut buf);
        assert_eq!(buf[0], 0xEE, "existing content is preserved");
        assert_eq!(&buf[1..], msg.to_bytes().as_slice());
        // A reused scratch buffer with enough capacity never reallocates.
        buf.clear();
        buf.reserve(msg.encoded_len());
        let cap = buf.capacity();
        msg.to_bytes_into(&mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf, msg.to_bytes());
    }

    #[test]
    fn empty_vector_normalizes_to_blank() {
        let msg = NdefMessage::new(Vec::new());
        assert!(msg.is_blank());
        assert_eq!(NdefMessage::parse(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn long_payload_uses_long_record_form() {
        let payload = vec![0xAB; 700];
        let msg = NdefMessage::single(mime("application/octet-stream", &payload));
        let bytes = msg.to_bytes();
        // SR flag must be clear on the first header byte.
        assert_eq!(bytes[0] & FLAG_SR, 0);
        assert_eq!(NdefMessage::parse(&bytes).unwrap(), msg);
    }

    #[test]
    fn chunked_encoding_reassembles() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let msg = NdefMessage::new(vec![mime("a/b", &payload), mime("c/d", b"tail")]);
        for chunk_size in [1usize, 7, 100, 255, 256, 999, 1000, 5000] {
            let bytes = msg.to_bytes_chunked(chunk_size);
            let parsed = NdefMessage::parse(&bytes)
                .unwrap_or_else(|e| panic!("chunk size {chunk_size}: {e}"));
            assert_eq!(parsed, msg, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn chunked_encoding_of_small_payload_is_plain() {
        let msg = NdefMessage::single(mime("a/b", b"xy"));
        assert_eq!(msg.to_bytes_chunked(16), msg.to_bytes());
    }

    #[test]
    #[should_panic(expected = "max_chunk must be positive")]
    fn zero_chunk_size_panics() {
        NdefMessage::single(mime("a/b", b"xy")).to_bytes_chunked(0);
    }

    #[test]
    fn parse_rejects_truncation_at_every_boundary() {
        let msg = NdefMessage::new(vec![mime("text/plain", b"payload-bytes")]);
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            let err = NdefMessage::parse(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, NdefError::UnexpectedEof { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn parse_rejects_trailing_data() {
        let mut bytes = NdefMessage::single(mime("a/b", b"x")).to_bytes();
        bytes.push(0xFF);
        assert_eq!(
            NdefMessage::parse(&bytes).unwrap_err(),
            NdefError::TrailingData { trailing: 1 }
        );
    }

    #[test]
    fn parse_rejects_missing_message_begin() {
        let mut bytes = NdefMessage::single(mime("a/b", b"x")).to_bytes();
        bytes[0] &= !FLAG_MB;
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::MissingMessageBegin);
    }

    #[test]
    fn parse_rejects_duplicate_message_begin() {
        let msg = NdefMessage::new(vec![mime("a/b", b"x"), mime("a/b", b"y")]);
        let mut bytes = msg.to_bytes();
        // Second record starts after the first record's encoding.
        let second = msg.records()[0].encoded_len();
        bytes[second] |= FLAG_MB;
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::DuplicateMessageBegin);
    }

    #[test]
    fn parse_rejects_reserved_tnf() {
        let mut bytes = NdefMessage::single(mime("a/b", b"x")).to_bytes();
        bytes[0] = (bytes[0] & !TNF_MASK) | 0x07;
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::ReservedTnf);
    }

    #[test]
    fn parse_rejects_bare_unchanged_record() {
        // Hand-encode a lone TNF_UNCHANGED record with MB|ME|SR set.
        let bytes = vec![FLAG_MB | FLAG_ME | FLAG_SR | 0x06, 0, 0];
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::UnexpectedUnchanged);
    }

    #[test]
    fn parse_rejects_unterminated_chunk() {
        // Initial chunk (CF=1, MB=1) followed by message end on a CF=1 chunk.
        let mut bytes = Vec::new();
        encode_wire_record(
            &mut bytes,
            true,
            false,
            true,
            Tnf::MimeMedia.bits(),
            b"a/b",
            &[],
            b"xx",
        );
        encode_wire_record(&mut bytes, false, true, true, Tnf::Unchanged.bits(), &[], &[], b"yy");
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::UnterminatedChunk);
    }

    #[test]
    fn parse_rejects_chunk_sequence_cut_at_a_record_boundary() {
        // Initial chunk plus one middle chunk, then the input simply
        // stops — every record parses, but the sequence never ends.
        let mut bytes = Vec::new();
        encode_wire_record(
            &mut bytes,
            true,
            false,
            true,
            Tnf::MimeMedia.bits(),
            b"a/b",
            &[],
            b"xx",
        );
        encode_wire_record(&mut bytes, false, false, true, Tnf::Unchanged.bits(), &[], &[], b"yy");
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::UnterminatedChunk);
    }

    #[test]
    fn parse_rejects_message_without_message_end() {
        // Two complete records, neither carrying ME: the wire form of a
        // message whose tail records were lost. This must not decode as
        // a silently shortened message.
        let mut bytes = Vec::new();
        encode_wire_record(
            &mut bytes,
            true,
            false,
            false,
            Tnf::MimeMedia.bits(),
            b"a/b",
            &[],
            b"x",
        );
        encode_wire_record(
            &mut bytes,
            false,
            false,
            false,
            Tnf::MimeMedia.bits(),
            b"c/d",
            &[],
            b"y",
        );
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::MissingMessageEnd);
    }

    #[test]
    fn parse_rejects_chunk_with_type() {
        let mut bytes = Vec::new();
        encode_wire_record(
            &mut bytes,
            true,
            false,
            true,
            Tnf::MimeMedia.bits(),
            b"a/b",
            &[],
            b"xx",
        );
        encode_wire_record(
            &mut bytes,
            false,
            true,
            false,
            Tnf::Unchanged.bits(),
            b"zz",
            &[],
            b"yy",
        );
        assert_eq!(NdefMessage::parse(&bytes).unwrap_err(), NdefError::ChunkWithType);
    }

    #[test]
    fn parse_rejects_oversized_declared_payload() {
        // Long-form record declaring a 2 MiB payload.
        let mut bytes = vec![FLAG_MB | FLAG_ME | 0x02, 1];
        bytes.extend_from_slice(&(2u32 * 1024 * 1024).to_be_bytes());
        bytes.push(b'a');
        assert!(matches!(
            NdefMessage::parse(&bytes).unwrap_err(),
            NdefError::PayloadTooLarge { .. }
        ));
    }

    #[test]
    fn records_with_ids_round_trip() {
        let r = NdefRecordBuilderHelper::with_id();
        let msg = NdefMessage::single(r);
        assert_eq!(NdefMessage::parse(&msg.to_bytes()).unwrap(), msg);
    }

    struct NdefRecordBuilderHelper;
    impl NdefRecordBuilderHelper {
        fn with_id() -> NdefRecord {
            crate::NdefRecordBuilder::new(Tnf::MimeMedia)
                .record_type(b"a/b")
                .id(b"identifier")
                .payload(b"data".to_vec())
                .build()
                .unwrap()
        }
    }

    #[test]
    fn iteration_and_collect() {
        let msg: NdefMessage = vec![mime("a/b", b"1"), mime("c/d", b"2")].into_iter().collect();
        assert_eq!(msg.records().len(), 2);
        let types: Vec<_> = msg.iter().map(|r| r.record_type_str().unwrap()).collect();
        assert_eq!(types, ["a/b", "c/d"]);
        let owned: Vec<NdefRecord> = msg.clone().into_iter().collect();
        assert_eq!(owned, msg.records());
        let borrowed: Vec<&NdefRecord> = (&msg).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }

    #[test]
    fn from_record_makes_single_message() {
        let msg: NdefMessage = mime("a/b", b"1").into();
        assert_eq!(msg.records().len(), 1);
        assert_eq!(msg.first(), &mime("a/b", b"1"));
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let msg = NdefMessage::new(vec![
            mime("text/plain", b"one"),
            NdefRecord::absolute_uri("https://e.com").unwrap(),
            mime("application/octet-stream", &vec![0u8; 300]),
        ]);
        assert_eq!(msg.encoded_len(), msg.to_bytes().len());
    }
}
