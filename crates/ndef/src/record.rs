use crate::NdefError;

/// The *Type Name Format* of an NDEF record: how the `type` field is to be
/// interpreted.
///
/// Values mirror the 3-bit TNF field of the record header defined by the
/// NFC Forum NDEF specification (and exposed verbatim by Android's
/// `NdefRecord.TNF_*` constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Tnf {
    /// `0x00` — record is empty; type, id, and payload must be empty too.
    Empty = 0x00,
    /// `0x01` — type is an NFC Forum well-known type (RTD), e.g. `T`, `U`.
    WellKnown = 0x01,
    /// `0x02` — type is a MIME media type (RFC 2046), e.g. `text/plain`.
    MimeMedia = 0x02,
    /// `0x03` — type is an absolute URI (RFC 3986).
    AbsoluteUri = 0x03,
    /// `0x04` — type is an NFC Forum external type, e.g. `example.com:mytype`.
    External = 0x04,
    /// `0x05` — payload type is unknown; type field must be empty.
    Unknown = 0x05,
    /// `0x06` — middle or terminating chunk of a chunked record.
    ///
    /// Never present on records of a fully decoded [`crate::NdefMessage`];
    /// the decoder reassembles chunk sequences into a single logical record.
    Unchanged = 0x06,
}

impl Tnf {
    /// Decodes a raw 3-bit TNF value.
    ///
    /// # Errors
    ///
    /// Returns [`NdefError::ReservedTnf`] for the reserved value `0x07`
    /// (and any value above it, which cannot appear in a 3-bit field but is
    /// rejected defensively).
    pub fn from_bits(bits: u8) -> Result<Tnf, NdefError> {
        match bits {
            0x00 => Ok(Tnf::Empty),
            0x01 => Ok(Tnf::WellKnown),
            0x02 => Ok(Tnf::MimeMedia),
            0x03 => Ok(Tnf::AbsoluteUri),
            0x04 => Ok(Tnf::External),
            0x05 => Ok(Tnf::Unknown),
            0x06 => Ok(Tnf::Unchanged),
            _ => Err(NdefError::ReservedTnf),
        }
    }

    /// Returns the raw 3-bit value of this TNF as stored in the header byte.
    pub fn bits(self) -> u8 {
        self as u8
    }
}

/// A single NDEF record: the unit of typed data inside an [`NdefMessage`].
///
/// A record is a passive value; reading and writing records on (simulated)
/// tags is the business of the higher layers. Records are constructed
/// through [`NdefRecord::new`], the convenience constructors, or an
/// [`NdefRecordBuilder`].
///
/// [`NdefMessage`]: crate::NdefMessage
///
/// # Examples
///
/// ```
/// use morena_ndef::{NdefRecord, Tnf};
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let record = NdefRecord::mime("text/plain", b"hello".to_vec())?;
/// assert_eq!(record.tnf(), Tnf::MimeMedia);
/// assert_eq!(record.record_type(), b"text/plain");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NdefRecord {
    tnf: Tnf,
    record_type: Vec<u8>,
    id: Vec<u8>,
    payload: Vec<u8>,
}

impl NdefRecord {
    /// Creates a record after validating the structural rules for `tnf`.
    ///
    /// # Errors
    ///
    /// * [`NdefError::NonEmptyEmptyRecord`] — `Tnf::Empty` with data.
    /// * [`NdefError::UnknownWithType`] — `Tnf::Unknown` with a type.
    /// * [`NdefError::UnexpectedUnchanged`] — `Tnf::Unchanged`, which is a
    ///   wire-level artifact and cannot be built directly.
    /// * [`NdefError::TypeTooLong`] / [`NdefError::IdTooLong`] — field
    ///   exceeds the 255-byte wire limit.
    /// * [`NdefError::PayloadTooLarge`] — payload exceeds
    ///   [`crate::MAX_PAYLOAD_LEN`].
    pub fn new(
        tnf: Tnf,
        record_type: Vec<u8>,
        id: Vec<u8>,
        payload: Vec<u8>,
    ) -> Result<NdefRecord, NdefError> {
        if record_type.len() > 255 {
            return Err(NdefError::TypeTooLong { len: record_type.len() });
        }
        if id.len() > 255 {
            return Err(NdefError::IdTooLong { len: id.len() });
        }
        if payload.len() > crate::MAX_PAYLOAD_LEN {
            return Err(NdefError::PayloadTooLarge { declared: payload.len() });
        }
        match tnf {
            Tnf::Empty if !record_type.is_empty() || !id.is_empty() || !payload.is_empty() => {
                return Err(NdefError::NonEmptyEmptyRecord);
            }
            Tnf::Unknown if !record_type.is_empty() => {
                return Err(NdefError::UnknownWithType);
            }
            Tnf::Unchanged => return Err(NdefError::UnexpectedUnchanged),
            _ => {}
        }
        Ok(NdefRecord { tnf, record_type, id, payload })
    }

    /// Creates the canonical empty record (`Tnf::Empty`, all fields empty).
    ///
    /// An NDEF message holding exactly one empty record is the standard
    /// representation of a formatted-but-blank tag.
    pub fn empty() -> NdefRecord {
        NdefRecord { tnf: Tnf::Empty, record_type: Vec::new(), id: Vec::new(), payload: Vec::new() }
    }

    /// Creates a MIME-media record (`Tnf::MimeMedia`).
    ///
    /// # Errors
    ///
    /// Same validation as [`NdefRecord::new`].
    pub fn mime(mime_type: &str, payload: Vec<u8>) -> Result<NdefRecord, NdefError> {
        NdefRecord::new(Tnf::MimeMedia, mime_type.as_bytes().to_vec(), Vec::new(), payload)
    }

    /// Creates a well-known record (`Tnf::WellKnown`) such as RTD Text.
    ///
    /// # Errors
    ///
    /// Same validation as [`NdefRecord::new`].
    pub fn well_known(rtd_type: &[u8], payload: Vec<u8>) -> Result<NdefRecord, NdefError> {
        NdefRecord::new(Tnf::WellKnown, rtd_type.to_vec(), Vec::new(), payload)
    }

    /// Creates an NFC Forum external-type record (`Tnf::External`).
    ///
    /// The conventional shape of `domain_type` is `domain:type`, e.g.
    /// `morena.example:wifi-config`.
    ///
    /// # Errors
    ///
    /// Same validation as [`NdefRecord::new`].
    pub fn external(domain_type: &str, payload: Vec<u8>) -> Result<NdefRecord, NdefError> {
        NdefRecord::new(Tnf::External, domain_type.as_bytes().to_vec(), Vec::new(), payload)
    }

    /// Creates a record carrying an absolute URI in its *type* field
    /// (`Tnf::AbsoluteUri`), per the specification's odd-but-standard
    /// layout where the URI is the type and the payload is empty.
    ///
    /// # Errors
    ///
    /// Same validation as [`NdefRecord::new`].
    pub fn absolute_uri(uri: &str) -> Result<NdefRecord, NdefError> {
        NdefRecord::new(Tnf::AbsoluteUri, uri.as_bytes().to_vec(), Vec::new(), Vec::new())
    }

    /// The record's type name format.
    pub fn tnf(&self) -> Tnf {
        self.tnf
    }

    /// The record's type field (interpretation depends on [`Tnf`]).
    pub fn record_type(&self) -> &[u8] {
        &self.record_type
    }

    /// The record's type field decoded as UTF-8, when it is.
    pub fn record_type_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.record_type).ok()
    }

    /// The record's optional id field (empty when absent).
    pub fn id(&self) -> &[u8] {
        &self.id
    }

    /// The record's payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the record and returns its payload, avoiding a copy.
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }

    /// Returns `true` when this is the canonical empty record.
    pub fn is_empty_record(&self) -> bool {
        self.tnf == Tnf::Empty
    }

    /// Returns `true` when the record is a MIME record of exactly
    /// `mime_type`.
    pub fn is_mime(&self, mime_type: &str) -> bool {
        self.tnf == Tnf::MimeMedia && self.record_type == mime_type.as_bytes()
    }

    /// The number of bytes this record occupies when encoded as part of a
    /// message (excluding chunking; header flags do not change the size).
    pub fn encoded_len(&self) -> usize {
        let short = self.payload.len() <= u8::MAX as usize;
        1 // header
            + 1 // type length
            + if short { 1 } else { 4 } // payload length
            + if self.id.is_empty() { 0 } else { 1 } // id length
            + self.record_type.len()
            + self.id.len()
            + self.payload.len()
    }
}

impl Default for NdefRecord {
    fn default() -> NdefRecord {
        NdefRecord::empty()
    }
}

/// Builder for [`NdefRecord`] values with many optional fields.
///
/// # Examples
///
/// ```
/// use morena_ndef::{NdefRecordBuilder, Tnf};
///
/// # fn main() -> Result<(), morena_ndef::NdefError> {
/// let record = NdefRecordBuilder::new(Tnf::MimeMedia)
///     .record_type(b"application/json")
///     .id(b"cfg-1")
///     .payload(br#"{"ssid":"lab"}"#.to_vec())
///     .build()?;
/// assert_eq!(record.id(), b"cfg-1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NdefRecordBuilder {
    tnf: Tnf,
    record_type: Vec<u8>,
    id: Vec<u8>,
    payload: Vec<u8>,
}

impl NdefRecordBuilder {
    /// Starts a builder for a record of the given TNF.
    pub fn new(tnf: Tnf) -> NdefRecordBuilder {
        NdefRecordBuilder { tnf, record_type: Vec::new(), id: Vec::new(), payload: Vec::new() }
    }

    /// Sets the type field.
    pub fn record_type(mut self, record_type: &[u8]) -> NdefRecordBuilder {
        self.record_type = record_type.to_vec();
        self
    }

    /// Sets the id field.
    pub fn id(mut self, id: &[u8]) -> NdefRecordBuilder {
        self.id = id.to_vec();
        self
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: Vec<u8>) -> NdefRecordBuilder {
        self.payload = payload;
        self
    }

    /// Validates and builds the record.
    ///
    /// # Errors
    ///
    /// Same validation as [`NdefRecord::new`].
    pub fn build(self) -> Result<NdefRecord, NdefError> {
        NdefRecord::new(self.tnf, self.record_type, self.id, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tnf_round_trips_all_valid_bits() {
        for bits in 0u8..=6 {
            let tnf = Tnf::from_bits(bits).expect("valid tnf");
            assert_eq!(tnf.bits(), bits);
        }
    }

    #[test]
    fn tnf_rejects_reserved() {
        assert_eq!(Tnf::from_bits(7), Err(NdefError::ReservedTnf));
        assert_eq!(Tnf::from_bits(200), Err(NdefError::ReservedTnf));
    }

    #[test]
    fn empty_record_must_be_empty() {
        let err = NdefRecord::new(Tnf::Empty, vec![1], vec![], vec![]).unwrap_err();
        assert_eq!(err, NdefError::NonEmptyEmptyRecord);
        let err = NdefRecord::new(Tnf::Empty, vec![], vec![], vec![1]).unwrap_err();
        assert_eq!(err, NdefError::NonEmptyEmptyRecord);
        assert!(NdefRecord::new(Tnf::Empty, vec![], vec![], vec![]).is_ok());
    }

    #[test]
    fn unknown_rejects_type() {
        let err = NdefRecord::new(Tnf::Unknown, vec![b'T'], vec![], vec![]).unwrap_err();
        assert_eq!(err, NdefError::UnknownWithType);
        assert!(NdefRecord::new(Tnf::Unknown, vec![], vec![], vec![1, 2]).is_ok());
    }

    #[test]
    fn unchanged_cannot_be_built() {
        let err = NdefRecord::new(Tnf::Unchanged, vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, NdefError::UnexpectedUnchanged);
    }

    #[test]
    fn oversized_fields_are_rejected() {
        let long = vec![0u8; 256];
        assert_eq!(
            NdefRecord::new(Tnf::MimeMedia, long.clone(), vec![], vec![]),
            Err(NdefError::TypeTooLong { len: 256 })
        );
        assert_eq!(
            NdefRecord::new(Tnf::MimeMedia, vec![b'a'], long, vec![]),
            Err(NdefError::IdTooLong { len: 256 })
        );
        let huge = vec![0u8; crate::MAX_PAYLOAD_LEN + 1];
        assert!(matches!(
            NdefRecord::new(Tnf::MimeMedia, vec![b'a'], vec![], huge),
            Err(NdefError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn default_is_empty_record() {
        assert!(NdefRecord::default().is_empty_record());
        assert_eq!(NdefRecord::default(), NdefRecord::empty());
    }

    #[test]
    fn mime_predicate_matches_type() {
        let r = NdefRecord::mime("text/plain", b"x".to_vec()).unwrap();
        assert!(r.is_mime("text/plain"));
        assert!(!r.is_mime("text/html"));
        assert_eq!(r.record_type_str(), Some("text/plain"));
    }

    #[test]
    fn builder_sets_all_fields() {
        let r = NdefRecordBuilder::new(Tnf::External)
            .record_type(b"ex.com:t")
            .id(b"id9")
            .payload(vec![9, 9])
            .build()
            .unwrap();
        assert_eq!(r.tnf(), Tnf::External);
        assert_eq!(r.record_type(), b"ex.com:t");
        assert_eq!(r.id(), b"id9");
        assert_eq!(r.payload(), &[9, 9]);
        assert_eq!(r.clone().into_payload(), vec![9, 9]);
    }

    #[test]
    fn encoded_len_accounts_for_long_payload_and_id() {
        let short = NdefRecord::mime("a/b", vec![0; 255]).unwrap();
        // 1 hdr + 1 tl + 1 pl + 3 type + 255 payload
        assert_eq!(short.encoded_len(), 1 + 1 + 1 + 3 + 255);
        let long = NdefRecord::mime("a/b", vec![0; 256]).unwrap();
        assert_eq!(long.encoded_len(), 1 + 1 + 4 + 3 + 256);
        let with_id = NdefRecordBuilder::new(Tnf::MimeMedia)
            .record_type(b"a/b")
            .id(b"x")
            .payload(vec![0; 4])
            .build()
            .unwrap();
        assert_eq!(with_id.encoded_len(), 1 + 1 + 1 + 1 + 3 + 1 + 4);
    }

    #[test]
    fn absolute_uri_lives_in_type_field() {
        let r = NdefRecord::absolute_uri("https://example.com/x").unwrap();
        assert_eq!(r.tnf(), Tnf::AbsoluteUri);
        assert_eq!(r.record_type_str(), Some("https://example.com/x"));
        assert!(r.payload().is_empty());
    }
}
