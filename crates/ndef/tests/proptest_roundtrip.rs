//! Property-based tests for the NDEF codec: arbitrary well-formed messages
//! must survive encode/decode (plain and chunked), and the decoder must
//! never panic on arbitrary byte soup.

use morena_ndef::rtd::{PosterAction, SmartPoster, TextEncoding, TextRecord, UriRecord};
use morena_ndef::{NdefMessage, NdefRecord, NdefRecordBuilder, Tnf};
use proptest::prelude::*;

fn arb_tnf() -> impl Strategy<Value = Tnf> {
    prop_oneof![
        Just(Tnf::WellKnown),
        Just(Tnf::MimeMedia),
        Just(Tnf::AbsoluteUri),
        Just(Tnf::External),
        Just(Tnf::Unknown),
        Just(Tnf::Empty),
    ]
}

prop_compose! {
    fn arb_record()(
        tnf in arb_tnf(),
        record_type in proptest::collection::vec(any::<u8>(), 0..40),
        id in proptest::collection::vec(any::<u8>(), 0..20),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) -> NdefRecord {
        // Normalize fields to satisfy the TNF structural rules rather than
        // discarding candidates, so the space stays dense.
        let (record_type, id, payload) = match tnf {
            Tnf::Empty => (Vec::new(), Vec::new(), Vec::new()),
            Tnf::Unknown => (Vec::new(), id, payload),
            _ => (record_type, id, payload),
        };
        NdefRecord::new(tnf, record_type, id, payload).expect("normalized record is valid")
    }
}

fn arb_message() -> impl Strategy<Value = NdefMessage> {
    proptest::collection::vec(arb_record(), 1..6).prop_map(NdefMessage::new)
}

proptest! {
    #[test]
    fn encode_parse_round_trip(msg in arb_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(NdefMessage::parse(&bytes).unwrap(), msg);
    }

    #[test]
    fn chunked_encode_parse_round_trip(msg in arb_message(), chunk in 1usize..700) {
        let bytes = msg.to_bytes_chunked(chunk);
        prop_assert_eq!(NdefMessage::parse(&bytes).unwrap(), msg);
    }

    #[test]
    fn encoded_len_is_exact(msg in arb_message()) {
        prop_assert_eq!(msg.encoded_len(), msg.to_bytes().len());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Outcome may be Ok or Err; it must simply not panic.
        let _ = NdefMessage::parse(&bytes);
    }

    #[test]
    fn decoder_rejects_every_strict_prefix(msg in arb_message()) {
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(NdefMessage::parse(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn decoder_rejects_every_strict_prefix_of_chunked_encodings(
        msg in arb_message(),
        chunk in 1usize..300,
    ) {
        // A truncated chunk sequence must never decode — in particular
        // not when the cut lands exactly on a record boundary, where
        // every remaining record parses but the sequence never ends.
        let bytes = msg.to_bytes_chunked(chunk);
        for cut in 0..bytes.len() {
            prop_assert!(
                NdefMessage::parse(&bytes[..cut]).is_err(),
                "prefix of {} bytes decoded (chunk size {})", cut, chunk,
            );
        }
    }

    #[test]
    fn decoder_rejects_encodings_with_the_end_flag_cleared(msg in arb_message()) {
        // Clearing ME on the final record leaves a structurally complete
        // record stream with no message end — the shape a torn write or
        // lost tail produces. FLAG_ME is bit 6 of the record header; the
        // last record's header is found by walking encoded_len() sums.
        let mut bytes = msg.to_bytes();
        let last_header: usize =
            msg.records()[..msg.records().len() - 1].iter().map(|r| r.encoded_len()).sum();
        bytes[last_header] &= !0x40;
        prop_assert!(NdefMessage::parse(&bytes).is_err());
    }

    #[test]
    fn text_record_round_trip(
        lang in "[a-z]{1,8}",
        text in ".{0,120}",
        utf16 in any::<bool>(),
    ) {
        let encoding = if utf16 { TextEncoding::Utf16 } else { TextEncoding::Utf8 };
        let record = TextRecord::try_new(&lang, &text, encoding).unwrap();
        let back = TextRecord::from_record(&record.to_record()).unwrap();
        prop_assert_eq!(back.language(), lang.as_str());
        prop_assert_eq!(back.text(), text.as_str());
        prop_assert_eq!(back.encoding(), encoding);
    }

    #[test]
    fn uri_record_round_trip(uri in "[ -~]{0,120}") {
        let record = UriRecord::new(&uri).to_record();
        let back = UriRecord::from_record(&record).unwrap();
        prop_assert_eq!(back.uri(), uri.as_str());
    }

    #[test]
    fn smart_poster_round_trip(
        uri in "[ -~]{1,60}",
        titles in proptest::collection::vec(("[a-z]{1,5}", ".{0,30}"), 0..3),
        action in prop_oneof![
            Just(None),
            Just(Some(PosterAction::Execute)),
            Just(Some(PosterAction::Save)),
            Just(Some(PosterAction::Edit)),
        ],
    ) {
        let mut poster = SmartPoster::new(&uri);
        for (lang, title) in &titles {
            poster = poster.with_title(lang, title);
        }
        if let Some(a) = action {
            poster = poster.with_action(a);
        }
        let back = SmartPoster::from_record(&poster.to_record()).unwrap();
        prop_assert_eq!(back, poster);
    }

    #[test]
    fn builder_agrees_with_new(
        record_type in proptest::collection::vec(any::<u8>(), 0..40),
        id in proptest::collection::vec(any::<u8>(), 0..20),
        payload in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let via_builder = NdefRecordBuilder::new(Tnf::MimeMedia)
            .record_type(&record_type)
            .id(&id)
            .payload(payload.clone())
            .build()
            .unwrap();
        let via_new =
            NdefRecord::new(Tnf::MimeMedia, record_type, id, payload).unwrap();
        prop_assert_eq!(via_builder, via_new);
    }
}
