//! A standards-based alternative to the JSON thing encoding: WiFi
//! credentials stored as an NFC Forum **Connection Handover Select**
//! message with a WiFi Simple Configuration carrier — the format real
//! Android phones write when sharing a network over NFC.
//!
//! Because it is just another [`TagDataConverter`], the entire middleware
//! (references, discoverers, beam) runs over it unchanged: swapping the
//! on-tag representation is a one-line change at construction time, which
//! is exactly the decoupling §3.2 promises.

use morena_core::convert::{ConvertError, TagDataConverter};
use morena_ndef::rtd::{CarrierPowerState, HandoverSelect, WifiCredential};
use morena_ndef::NdefMessage;

use crate::wifi::WifiConfig;

/// Converts [`WifiConfig`] values to/from Connection Handover messages
/// with a WSC WiFi carrier.
#[derive(Debug, Clone, Default)]
pub struct WifiHandoverConverter;

impl WifiHandoverConverter {
    /// Creates the converter.
    pub fn new() -> WifiHandoverConverter {
        WifiHandoverConverter
    }
}

impl TagDataConverter for WifiHandoverConverter {
    type Value = WifiConfig;

    fn mime_type(&self) -> &str {
        // Discovery filters on the carrier configuration's MIME type.
        morena_ndef::rtd::WSC_MIME
    }

    fn to_message(&self, value: &WifiConfig) -> Result<NdefMessage, ConvertError> {
        let credential = WifiCredential::new(&value.ssid, &value.key);
        let record = credential.to_record(b"w0").map_err(ConvertError::Ndef)?;
        HandoverSelect::new()
            .with_carrier(CarrierPowerState::Active, b"w0", record)
            .to_message()
            .map_err(ConvertError::Ndef)
    }

    fn from_message(&self, message: &NdefMessage) -> Result<WifiConfig, ConvertError> {
        let select = HandoverSelect::from_message(message).map_err(|_| {
            ConvertError::WrongShape { expected: "a handover select message".into() }
        })?;
        let credential = select.wifi_credential(message).ok_or_else(|| {
            ConvertError::WrongShape { expected: "a WiFi carrier in the handover".into() }
        })?;
        Ok(WifiConfig::new(credential.ssid(), credential.network_key()))
    }

    fn accepts(&self, message: &NdefMessage) -> bool {
        HandoverSelect::from_message(message).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_core::context::MorenaContext;
    use morena_core::tagref::TagReference;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
    use morena_nfc_sim::world::World;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn converter_round_trips() {
        let conv = WifiHandoverConverter::new();
        let config = WifiConfig::new("handover-net", "hkey");
        let message = conv.to_message(&config).unwrap();
        assert!(conv.accepts(&message));
        assert_eq!(conv.from_message(&message).unwrap(), config);
        // The JSON thing converter does NOT accept handover messages and
        // vice versa: the two encodings coexist without confusion.
        use morena_core::thing::Thing;
        let json_conv = WifiConfig::converter();
        assert!(!json_conv.accepts(&message));
        let json_message = json_conv.to_message(&config).unwrap();
        assert!(!conv.accepts(&json_message));
    }

    #[test]
    fn handover_messages_survive_real_tag_memory_via_the_middleware() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 95);
        let phone = world.add_phone("sharer");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        world.tap_tag(uid, phone);
        let ctx = MorenaContext::headless(&world, phone);
        let reference =
            TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(WifiHandoverConverter::new()));
        let config = WifiConfig::new("venue", "pass");
        reference.write_sync(config.clone(), Duration::from_secs(10)).unwrap();
        reference.set_cached(None);
        assert_eq!(reference.read_sync(Duration::from_secs(10)).unwrap(), Some(config));
        // The bytes on the tag really are a standards-shaped handover.
        let bytes = ctx.nfc().ndef_read(uid).unwrap();
        let message = NdefMessage::parse(&bytes).unwrap();
        assert_eq!(message.first().record_type(), b"Hs");
        reference.close();
    }

    #[test]
    fn rejects_foreign_messages() {
        let conv = WifiHandoverConverter::new();
        let foreign =
            NdefMessage::single(morena_ndef::NdefRecord::mime("a/b", b"x".to_vec()).unwrap());
        assert!(!conv.accepts(&foreign));
        assert!(matches!(conv.from_message(&foreign), Err(ConvertError::WrongShape { .. })));
    }
}
