//! An extension application beyond the paper's demo: tracking a fleet of
//! RFID-tagged assets (the "tracking of personal belongings" scenario
//! the paper's related work cites as motivation).
//!
//! Exercises the parts of the middleware the WiFi app does not:
//! connectivity tracking across many simultaneous references, leased
//! (exclusive) updates, and per-reference statistics.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use morena_core::context::MorenaContext;
use morena_core::convert::JsonConverter;
use morena_core::discovery::{DiscoveryListener, TagDiscoverer};
use morena_core::lease::{LeaseError, LeaseManager};
use morena_core::tagref::TagReference;
use morena_core::thing::Thing;
use morena_nfc_sim::tag::TagUid;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A tracked asset's record, stored on its tag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssetRecord {
    /// Human-readable asset name.
    pub name: String,
    /// Who checked it out last (empty = checked in).
    pub custodian: String,
    /// How many times it changed hands.
    pub handovers: u32,
}

impl AssetRecord {
    /// A fresh, checked-in asset.
    pub fn new(name: &str) -> AssetRecord {
        AssetRecord { name: name.to_owned(), custodian: String::new(), handovers: 0 }
    }
}

impl Thing for AssetRecord {
    const TYPE_NAME: &'static str = "asset-record";
}

/// What the tracker currently knows about one asset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssetStatus {
    /// The asset's record as last read.
    pub record: AssetRecord,
    /// Whether its tag is in range right now.
    pub in_range: bool,
    /// How often the tag has been sighted.
    pub sightings: u32,
}

struct TrackerListener {
    assets: Arc<Mutex<BTreeMap<TagUid, AssetStatus>>>,
}

impl DiscoveryListener<JsonConverter<AssetRecord>> for TrackerListener {
    fn on_tag_detected(&self, reference: TagReference<JsonConverter<AssetRecord>>) {
        self.record_sighting(reference);
    }

    fn on_tag_redetected(&self, reference: TagReference<JsonConverter<AssetRecord>>) {
        self.record_sighting(reference);
    }
}

impl TrackerListener {
    fn record_sighting(&self, reference: TagReference<JsonConverter<AssetRecord>>) {
        let Some(record) = reference.cached() else { return };
        let mut assets = self.assets.lock();
        let entry = assets.entry(reference.uid()).or_insert(AssetStatus {
            record: record.clone(),
            in_range: true,
            sightings: 0,
        });
        entry.record = record;
        entry.in_range = true;
        entry.sightings += 1;
    }
}

/// Tracks every asset tag that passes the phone, and performs leased
/// custody handovers.
pub struct AssetTracker {
    ctx: MorenaContext,
    discoverer: TagDiscoverer<JsonConverter<AssetRecord>>,
    leases: LeaseManager,
    assets: Arc<Mutex<BTreeMap<TagUid, AssetStatus>>>,
}

impl std::fmt::Debug for AssetTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssetTracker").field("known", &self.assets.lock().len()).finish()
    }
}

impl AssetTracker {
    /// Launches the tracker on `ctx`'s phone.
    pub fn launch(ctx: &MorenaContext) -> AssetTracker {
        let assets = Arc::new(Mutex::new(BTreeMap::new()));
        let discoverer = TagDiscoverer::new(
            ctx,
            Arc::new(AssetRecord::converter()),
            Arc::new(TrackerListener { assets: Arc::clone(&assets) }),
        );
        AssetTracker { ctx: ctx.clone(), discoverer, leases: LeaseManager::new(ctx), assets }
    }

    /// Everything the tracker has seen, keyed by tag UID, with live
    /// connectivity.
    pub fn inventory(&self) -> BTreeMap<TagUid, AssetStatus> {
        let mut inventory = self.assets.lock().clone();
        for (uid, status) in inventory.iter_mut() {
            status.in_range = self.ctx.nfc().tag_in_range(*uid);
        }
        inventory
    }

    /// Number of distinct assets ever sighted.
    pub fn known_assets(&self) -> usize {
        self.assets.lock().len()
    }

    /// Performs a custody handover under a lease: acquires exclusive
    /// access to the asset's tag, rewrites the record with the new
    /// custodian, and releases. Blocking; returns the updated record.
    ///
    /// # Errors
    ///
    /// [`LeaseError`] when the tag is unreachable, leased by another
    /// device, or the race was lost.
    pub fn handover(
        &self,
        uid: TagUid,
        new_custodian: &str,
        lease_ttl: Duration,
    ) -> Result<AssetRecord, LeaseError> {
        let reference = self
            .discoverer
            .reference_for(uid)
            .ok_or(LeaseError::Nfc(morena_nfc_sim::error::NfcOpError::NotNdef))?;
        self.leases.with_lease_held(uid, lease_ttl, |_lease| {
            // Read under the lease: nobody else may write concurrently.
            let bytes = self.ctx.nfc().ndef_read(uid).map_err(LeaseError::Nfc)?;
            let message = morena_ndef::NdefMessage::parse(&bytes).map_err(|_| {
                LeaseError::Nfc(morena_nfc_sim::error::NfcOpError::Protocol("bad NDEF"))
            })?;
            let content = morena_core::lease::strip_lease(&message);
            let converter = AssetRecord::converter();
            use morena_core::convert::TagDataConverter;
            let mut record = converter.from_message(&content).map_err(|_| {
                LeaseError::Nfc(morena_nfc_sim::error::NfcOpError::Protocol("not an asset record"))
            })?;
            record.custodian = new_custodian.to_owned();
            record.handovers += 1;
            // Write back *with the lease still in place*.
            let new_content = converter.to_message(&record).map_err(|_| {
                LeaseError::Nfc(morena_nfc_sim::error::NfcOpError::Protocol(
                    "unserializable record",
                ))
            })?;
            let lease_record = morena_core::lease::LeaseRecord::find_in(&message)
                .expect("lease we hold is on the tag");
            let locked = morena_core::lease::with_lease(&new_content, lease_record);
            self.ctx.nfc().ndef_write(uid, &locked.to_bytes()).map_err(LeaseError::Nfc)?;
            // Refresh the local cache.
            reference.set_cached(Some(record.clone()));
            if let Some(status) = self.assets.lock().get_mut(&uid) {
                status.record = record.clone();
            }
            Ok(record)
        })
    }

    /// The lease manager (for experiments).
    pub fn leases(&self) -> &LeaseManager {
        &self.leases
    }

    /// The discoverer (for tests).
    pub fn discoverer(&self) -> &TagDiscoverer<JsonConverter<AssetRecord>> {
        &self.discoverer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_core::convert::TagDataConverter;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;

    fn wait_for(cond: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    fn setup_with_assets(n: u32) -> (World, MorenaContext, AssetTracker, Vec<TagUid>) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 61);
        let phone = world.add_phone("warehouse");
        let ctx = MorenaContext::headless(&world, phone);
        let converter = AssetRecord::converter();
        let uids: Vec<TagUid> = (0..n)
            .map(|i| {
                let uid = world.add_tag(Box::new(Type2Tag::ntag216(TagUid::from_seed(100 + i))));
                world.tap_tag(uid, phone);
                let record = AssetRecord::new(&format!("asset-{i}"));
                ctx.nfc()
                    .ndef_write(uid, &converter.to_message(&record).unwrap().to_bytes())
                    .unwrap();
                world.remove_tag_from_field(uid);
                uid
            })
            .collect();
        let tracker = AssetTracker::launch(&ctx);
        (world, ctx, tracker, uids)
    }

    #[test]
    fn sightings_build_the_inventory() {
        let (world, ctx, tracker, uids) = setup_with_assets(3);
        for (i, uid) in uids.iter().enumerate() {
            // Each tag dwells in the field long enough to be sighted
            // before the next one is presented.
            world.tap_tag(*uid, ctx.phone());
            assert!(wait_for(|| tracker.known_assets() == i + 1));
            world.remove_tag_from_field(*uid);
        }
        let inventory = tracker.inventory();
        assert_eq!(inventory.len(), 3);
        for status in inventory.values() {
            assert!(!status.in_range); // all removed again
            assert_eq!(status.sightings, 1);
            assert!(status.record.name.starts_with("asset-"));
        }
        // Re-sighting bumps the counter.
        world.tap_tag(uids[0], ctx.phone());
        assert!(wait_for(|| tracker.inventory()[&uids[0]].sightings == 2));
        assert!(tracker.inventory()[&uids[0]].in_range);
    }

    #[test]
    fn leased_handover_updates_the_record() {
        let (world, ctx, tracker, uids) = setup_with_assets(1);
        world.tap_tag(uids[0], ctx.phone());
        assert!(wait_for(|| tracker.known_assets() == 1));
        let updated = tracker.handover(uids[0], "alice", Duration::from_secs(5)).unwrap();
        assert_eq!(updated.custodian, "alice");
        assert_eq!(updated.handovers, 1);
        // The lease is released afterwards and the content is clean.
        assert_eq!(tracker.leases().inspect(uids[0]).unwrap(), None);
        let bytes = ctx.nfc().ndef_read(uids[0]).unwrap();
        let message = morena_ndef::NdefMessage::parse(&bytes).unwrap();
        let record = AssetRecord::converter().from_message(&message).unwrap();
        assert_eq!(record.custodian, "alice");
        // A second handover increments again.
        let updated = tracker.handover(uids[0], "bob", Duration::from_secs(5)).unwrap();
        assert_eq!(updated.handovers, 2);
        assert_eq!(tracker.inventory()[&uids[0]].record.custodian, "bob");
    }

    #[test]
    fn handover_fails_while_leased_elsewhere() {
        let (world, ctx, tracker, uids) = setup_with_assets(1);
        world.tap_tag(uids[0], ctx.phone());
        assert!(wait_for(|| tracker.known_assets() == 1));

        // A second phone takes the lease first.
        let rival_phone = world.add_phone("rival");
        world.set_phone_position(
            rival_phone,
            morena_nfc_sim::geometry::Point::new(1000.0, 0.0), // same as phone 0
        );
        let rival_ctx = MorenaContext::headless(&world, rival_phone);
        let rival = LeaseManager::new(&rival_ctx);
        let lease = rival.acquire(uids[0], Duration::from_secs(60)).unwrap();

        match tracker.handover(uids[0], "mallory", Duration::from_secs(5)) {
            Err(LeaseError::Held { holder, .. }) => assert_eq!(holder, rival.device()),
            other => panic!("expected Held, got {other:?}"),
        }
        rival.release(&lease).unwrap();
        assert!(tracker.handover(uids[0], "alice", Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn handover_of_unknown_asset_errors() {
        let (_world, _ctx, tracker, _uids) = setup_with_assets(1);
        assert!(tracker.handover(TagUid::from_seed(999), "x", Duration::from_secs(1)).is_err());
    }
}
