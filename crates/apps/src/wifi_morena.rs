//! The WiFi-sharing application **on MORENA** — the paper's §2 example,
//! line for line where Rust allows.
//!
//! RFID-related code is delimited with `@loc-begin(category)` /
//! `@loc-end(category)` markers; the Figure 2 harness
//! ([`crate::loc`]) counts the code lines inside them. Categories:
//! `event` (event handling), `convert` (data conversion), `failure`
//! (failure handling), `readwrite` (read/write functionality),
//! `concurrency` (concurrency management).
//!
//! Note what is absent: there is **no** `concurrency` region in this
//! file at all — MORENA's asynchronous operations and main-thread
//! listener delivery make manual thread management unnecessary, which is
//! precisely the paper's headline observation about Figure 2.

use std::sync::Arc;

use morena_android_sim::ui::ToastLog;
use morena_core::context::MorenaContext;
use morena_core::thing::{BoundThing, EmptyThingSlot, Thing, ThingObserver, ThingSpace};
use parking_lot::Mutex;

use crate::wifi::{WifiConfig, WifiManager};

// @loc-begin(convert)
impl Thing for WifiConfig {
    const TYPE_NAME: &'static str = "wifi-config";
}
// @loc-end(convert)

struct WifiObserver {
    toasts: ToastLog,
    wifi: WifiManager,
    provision: Mutex<Option<WifiConfig>>,
}

// @loc-begin(event)
impl ThingObserver<WifiConfig> for WifiObserver {
    fn when_discovered(&self, thing: BoundThing<WifiConfig>) {
        let wc = thing.value();
        self.toasts.show(format!("Joining Wifi network {}", wc.ssid));
        wc.connect(&self.wifi);
    }

    fn when_discovered_empty(&self, empty: EmptyThingSlot<WifiConfig>) {
        let Some(config) = self.provision.lock().clone() else { return };
        let created = self.toasts.clone();
        // @loc-end(event)
        // @loc-begin(failure)
        let failed = self.toasts.clone();
        // @loc-end(failure)
        // @loc-begin(readwrite)
        empty.initialize(
            config,
            // @loc-end(readwrite)
            // @loc-begin(event)
            move |_thing| created.show("WiFi joiner created!"),
            // @loc-end(event)
            // @loc-begin(failure)
            move |_failure| failed.show("Creating WiFi joiner failed, try again."),
            // @loc-end(failure)
            // @loc-begin(readwrite)
        );
        // @loc-end(readwrite)
        // @loc-begin(event)
    }

    fn when_received(&self, wc: WifiConfig) {
        self.toasts.show(format!("Joining Wifi network {}", wc.ssid));
        wc.connect(&self.wifi);
    }
}
// @loc-end(event)

/// The MORENA implementation of the WiFi-sharing application.
///
/// Scanning a provisioned tag joins that network; scanning a blank tag
/// (while a provisioning config is armed) initializes it; bringing two
/// phones together shares the config over Beam.
pub struct MorenaWifiApp {
    space: ThingSpace<WifiConfig>,
    toasts: ToastLog,
    wifi: WifiManager,
    provision: Arc<WifiObserver>,
}

impl std::fmt::Debug for MorenaWifiApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MorenaWifiApp").finish_non_exhaustive()
    }
}

impl MorenaWifiApp {
    /// Launches the app on `ctx`'s phone.
    pub fn launch(ctx: &MorenaContext, wifi: WifiManager) -> MorenaWifiApp {
        let toasts = ToastLog::new();
        let observer = Arc::new(WifiObserver {
            toasts: toasts.clone(),
            wifi: wifi.clone(),
            provision: Mutex::new(None),
        });
        // @loc-begin(event)
        let space =
            ThingSpace::new(ctx, Arc::clone(&observer) as Arc<dyn ThingObserver<WifiConfig>>);
        // @loc-end(event)
        MorenaWifiApp { space, toasts, wifi, provision: observer }
    }

    /// Arms provisioning: the next blank tag scanned is initialized with
    /// `config`.
    pub fn provision(&self, config: WifiConfig) {
        *self.provision.provision.lock() = Some(config);
    }

    /// Disarms provisioning.
    pub fn stop_provisioning(&self) {
        *self.provision.provision.lock() = None;
    }

    /// Shares `config` with any phone brought into proximity (§2.5).
    pub fn share(&self, config: WifiConfig) {
        let shared = self.toasts.clone();
        // @loc-begin(failure)
        let failed = self.toasts.clone();
        // @loc-end(failure)
        // @loc-begin(readwrite)
        self.space.broadcast(
            config,
            // @loc-end(readwrite)
            // @loc-begin(event)
            move || shared.show("WiFi joiner shared!"),
            // @loc-end(event)
            // @loc-begin(failure)
            move |_failure| failed.show("Failed to share WiFi joiner, try again."),
            // @loc-end(failure)
            // @loc-begin(readwrite)
        );
        // @loc-end(readwrite)
    }

    /// The app's toast log.
    pub fn toasts(&self) -> ToastLog {
        self.toasts.clone()
    }

    /// The device's WiFi manager.
    pub fn wifi(&self) -> &WifiManager {
        &self.wifi
    }

    /// The underlying thing space (for tests and experiments).
    pub fn space(&self) -> &ThingSpace<WifiConfig> {
        &self.space
    }

    /// Shuts the app down.
    pub fn close(&self) {
        self.space.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::{TagUid, Type2Tag};
    use morena_nfc_sim::world::World;
    use std::time::Duration;

    fn setup() -> (World, MorenaContext, MorenaWifiApp) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 41);
        let phone = world.add_phone("host");
        let ctx = MorenaContext::headless(&world, phone);
        let app = MorenaWifiApp::launch(&ctx, WifiManager::new());
        (world, ctx, app)
    }

    #[test]
    fn provisions_blank_tag_then_guest_joins() {
        let (world, ctx, host) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        host.provision(WifiConfig::new("guest-net", "pw123"));
        world.tap_tag(uid, ctx.phone());
        assert!(host.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10)));

        // A guest phone now scans the provisioned tag.
        let guest_phone = world.add_phone("guest");
        let gctx = MorenaContext::headless(&world, guest_phone);
        let guest = MorenaWifiApp::launch(&gctx, WifiManager::new());
        world.remove_tag_from_field(uid);
        world.tap_tag(uid, guest_phone);
        assert!(guest.toasts().wait_for("Joining Wifi network guest-net", Duration::from_secs(10)));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while guest.wifi().connection_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(guest.wifi().current_network().as_deref(), Some("guest-net"));
    }

    #[test]
    fn share_beams_config_to_nearby_phone() {
        let (world, ctx, host) = setup();
        let guest_phone = world.add_phone("guest");
        let gctx = MorenaContext::headless(&world, guest_phone);
        let guest = MorenaWifiApp::launch(&gctx, WifiManager::new());

        // Queue the share before the phones meet: MORENA batches it.
        host.share(WifiConfig::new("cafe", "espresso"));
        world.bring_phones_together(ctx.phone(), guest_phone);
        assert!(host.toasts().wait_for("WiFi joiner shared!", Duration::from_secs(10)));
        assert!(guest.toasts().wait_for("Joining Wifi network cafe", Duration::from_secs(10)));
    }

    #[test]
    fn unprovisioned_blank_tags_are_left_alone() {
        let (world, ctx, host) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
        world.tap_tag(uid, ctx.phone());
        std::thread::sleep(Duration::from_millis(100));
        assert!(host.toasts().is_empty());
        assert_eq!(ctx.nfc().ndef_read(uid).unwrap(), b"");
        host.close();
    }
}
