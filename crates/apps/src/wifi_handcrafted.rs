//! The WiFi-sharing application written **directly against the raw
//! platform API** — the handcrafted baseline of the paper's evaluation
//! (§4).
//!
//! Everything MORENA automates must be done by hand here, and each such
//! piece is delimited with the same `@loc` markers as the MORENA version
//! so Figure 2 can be regenerated:
//!
//! * `event` — picking apart NFC intents on the activity;
//! * `convert` — manual JSON ⇄ NDEF marshalling with MIME checks;
//! * `failure` — classifying errors, bounded retry loops, failure toasts;
//! * `readwrite` — the blocking `Ndef` connect/read/write calls;
//! * `concurrency` — `AsyncTask` plumbing, in-flight guards, and
//!   hand-carried state between threads.

use std::collections::HashSet;
use std::sync::Arc;

use morena_android_sim::activity::{Activity, ActivityContext, ActivityHost};
use morena_android_sim::intent::{Intent, IntentAction};
use morena_android_sim::ui::ToastLog;
use morena_baseline::async_task;
use morena_baseline::ndef_tech::Ndef;
use morena_ndef::{NdefMessage, NdefRecord};
use morena_nfc_sim::tag::TagUid;
use morena_nfc_sim::world::{PhoneId, World};
use parking_lot::Mutex;

use crate::wifi::{WifiConfig, WifiManager};

/// The MIME type used on tags — identical to the MORENA version's, so
/// tags written by one implementation are readable by the other.
pub const WIFI_MIME: &str = "application/vnd.morena.wifi-config+json";

/// How many times a failed tag write is retried while the tag stays in
/// range before giving up and asking the user to try again.
const MAX_WRITE_ATTEMPTS: usize = 4;
/// How many times a failed read is retried.
const MAX_READ_ATTEMPTS: usize = 3;
/// How many times a failed beam is retried while a peer is present.
const MAX_BEAM_ATTEMPTS: usize = 3;

/// The activity of the handcrafted implementation. All NFC behaviour is
/// wired through `on_new_intent`, as the raw API dictates.
pub struct HandcraftedWifiActivity {
    wifi: WifiManager,
    provision: Mutex<Option<WifiConfig>>,
    // @loc-begin(concurrency)
    // Tags with a write already in flight: a second intent for the same
    // tag must not start a competing background task.
    in_flight: Mutex<HashSet<TagUid>>,
    // The raw API gives callbacks only `&self`; background retry tasks
    // need an owned handle, so the activity keeps a weak self-reference.
    weak_self: std::sync::Weak<HandcraftedWifiActivity>,
    // @loc-end(concurrency)
}

impl HandcraftedWifiActivity {
    fn new(wifi: WifiManager) -> Arc<HandcraftedWifiActivity> {
        Arc::new_cyclic(|weak_self| HandcraftedWifiActivity {
            wifi,
            provision: Mutex::new(None),
            in_flight: Mutex::new(HashSet::new()),
            weak_self: weak_self.clone(),
        })
    }

    // @loc-begin(convert)
    /// Serializes a config into the NDEF message stored on tags.
    fn config_to_message(config: &WifiConfig) -> NdefMessage {
        let json = serde_json::to_vec(config).expect("config serializes");
        let record = NdefRecord::mime(WIFI_MIME, json).expect("record fits");
        NdefMessage::single(record)
    }

    /// Parses a config out of an NDEF message, checking the MIME type.
    fn message_to_config(message: &NdefMessage) -> Option<WifiConfig> {
        let record = message.first();
        if !record.is_mime(WIFI_MIME) {
            return None;
        }
        serde_json::from_slice(record.payload()).ok()
    }

    /// Whether the intent shows a formatted-but-blank tag.
    fn is_blank_tag(intent: &Intent) -> bool {
        match intent.ndef_bytes() {
            Some([]) => true,
            Some(bytes) => NdefMessage::parse(bytes).map(|m| m.is_blank()).unwrap_or(false),
            None => false,
        }
    }
    // @loc-end(convert)

    /// Joins the network described by a scanned or beamed message.
    fn join_from_message(&self, ctx: &ActivityContext, message: &NdefMessage) -> bool {
        // @loc-begin(convert)
        let Some(config) = HandcraftedWifiActivity::message_to_config(message) else {
            return false;
        };
        // @loc-end(convert)
        // @loc-begin(event)
        ctx.toast(format!("Joining Wifi network {}", config.ssid));
        config.connect(&self.wifi);
        // @loc-end(event)
        true
    }

    /// Writes the armed provisioning config to a blank tag, off the main
    /// thread, with manual bounded retries.
    fn write_config_async(self: &Arc<Self>, ctx: &ActivityContext, uid: TagUid) {
        let Some(config) = self.provision.lock().clone() else { return };
        // @loc-begin(concurrency)
        // Deduplicate: only one background write per tag at a time.
        if !self.in_flight.lock().insert(uid) {
            return;
        }
        let this = Arc::clone(self);
        let nfc = ctx.nfc().clone();
        let toast_ctx = ctx.clone();
        // @loc-end(concurrency)
        // @loc-begin(convert)
        let message = HandcraftedWifiActivity::config_to_message(&config);
        // @loc-end(convert)
        // @loc-begin(concurrency)
        async_task::execute(
            ctx.handler(),
            move || {
                // @loc-end(concurrency)
                // @loc-begin(readwrite)
                let mut ndef = Ndef::get(nfc.clone(), uid);
                // @loc-end(readwrite)
                // @loc-begin(failure)
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    // @loc-end(failure)
                    // @loc-begin(readwrite)
                    let result = ndef.connect().and_then(|()| ndef.write_ndef_message(&message));
                    // @loc-end(readwrite)
                    // @loc-begin(failure)
                    match result {
                        Ok(()) => break Ok(()),
                        Err(e)
                            if e.is_retryable()
                                && attempts < MAX_WRITE_ATTEMPTS
                                && nfc.tag_in_range(uid) =>
                        {
                            continue;
                        }
                        Err(e) => break Err(e),
                    }
                }
                // @loc-end(failure)
                // @loc-begin(concurrency)
            },
            move |outcome| {
                this.in_flight.lock().remove(&uid);
                // @loc-end(concurrency)
                // @loc-begin(event)
                match outcome {
                    Ok(()) => toast_ctx.toast("WiFi joiner created!"),
                    // @loc-end(event)
                    // @loc-begin(failure)
                    Err(_) => toast_ctx.toast("Creating WiFi joiner failed, try again."),
                    // @loc-end(failure)
                    // @loc-begin(event)
                }
                // @loc-end(event)
                // @loc-begin(concurrency)
            },
        );
        // @loc-end(concurrency)
    }
}

impl Activity for HandcraftedWifiActivity {
    fn on_new_intent(&self, ctx: &ActivityContext, intent: Intent) {
        // The activity owns an Arc to itself via the host; recover it for
        // background tasks through the context-free helper below.
        // @loc-begin(event)
        match intent.action() {
            IntentAction::NdefDiscovered => {
                if let Some(message) = intent.ndef_message() {
                    if self.join_from_message(ctx, &message) {
                        return;
                    }
                }
                if HandcraftedWifiActivity::is_blank_tag(&intent) {
                    if let Some((uid, _tech)) = intent.tag() {
                        self.on_blank_tag(ctx, uid);
                    }
                }
            }
            IntentAction::TagDiscovered => {
                // Unreadable or unformatted tag: nothing this app can do.
            }
        }
        // @loc-end(event)
    }
}

impl HandcraftedWifiActivity {
    // @loc-begin(concurrency)
    fn on_blank_tag(&self, ctx: &ActivityContext, uid: TagUid) {
        if let Some(this) = self.weak_self.upgrade() {
            this.write_config_async(ctx, uid);
        }
    }
    // @loc-end(concurrency)
}

/// The handcrafted implementation of the WiFi-sharing application, with
/// the same outward behaviour as the MORENA version.
pub struct HandcraftedWifiApp {
    host: ActivityHost,
    activity: Arc<HandcraftedWifiActivity>,
}

impl std::fmt::Debug for HandcraftedWifiApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandcraftedWifiApp").finish_non_exhaustive()
    }
}

impl HandcraftedWifiApp {
    /// Launches the app as a foreground activity on `phone`.
    pub fn launch(world: &World, phone: PhoneId, wifi: WifiManager) -> HandcraftedWifiApp {
        let activity = HandcraftedWifiActivity::new(wifi);
        let host = ActivityHost::launch(world, phone, "wifi-handcrafted", activity.clone());
        HandcraftedWifiApp { host, activity }
    }

    /// Arms provisioning: the next blank tag scanned is initialized.
    pub fn provision(&self, config: WifiConfig) {
        *self.activity.provision.lock() = Some(config);
    }

    /// Disarms provisioning.
    pub fn stop_provisioning(&self) {
        *self.activity.provision.lock() = None;
    }

    /// Shares `config` with a phone currently in proximity. Unlike the
    /// MORENA version, there is no batching: if no peer is nearby after
    /// the bounded retries, the share fails and the user must retry.
    pub fn share(&self, config: WifiConfig) {
        let ctx = self.host.context().clone();
        // @loc-begin(convert)
        let message = HandcraftedWifiActivity::config_to_message(&config);
        let bytes = message.to_bytes();
        // @loc-end(convert)
        // @loc-begin(concurrency)
        let nfc = ctx.nfc().clone();
        let toast_ctx = ctx.clone();
        async_task::execute(
            ctx.handler(),
            move || {
                // @loc-end(concurrency)
                // @loc-begin(failure)
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    // @loc-end(failure)
                    // @loc-begin(readwrite)
                    let result = nfc.beam(&bytes);
                    // @loc-end(readwrite)
                    // @loc-begin(failure)
                    match result {
                        Ok(_) => break true,
                        Err(_)
                            if attempts < MAX_BEAM_ATTEMPTS && !nfc.peers_in_range().is_empty() =>
                        {
                            continue;
                        }
                        Err(_) => break false,
                    }
                }
                // @loc-end(failure)
                // @loc-begin(concurrency)
            },
            move |ok| {
                // @loc-end(concurrency)
                // @loc-begin(event)
                if ok {
                    toast_ctx.toast("WiFi joiner shared!");
                    // @loc-end(event)
                    // @loc-begin(failure)
                } else {
                    toast_ctx.toast("Failed to share WiFi joiner, try again.");
                    // @loc-end(failure)
                    // @loc-begin(event)
                }
                // @loc-end(event)
                // @loc-begin(concurrency)
            },
        );
        // @loc-end(concurrency)
    }

    /// Reads the tag currently in range, manually retrying, and joins
    /// its network — the "user pressed refresh" path. Returns whether a
    /// join happened (used by experiments; blocks the caller).
    pub fn read_and_join_now(&self, uid: TagUid) -> bool {
        let ctx = self.host.context().clone();
        // @loc-begin(readwrite)
        let ndef = Ndef::get(ctx.nfc().clone(), uid);
        // @loc-end(readwrite)
        // @loc-begin(failure)
        let mut attempts = 0;
        let message = loop {
            attempts += 1;
            // @loc-end(failure)
            // @loc-begin(readwrite)
            let result = ndef.ndef_message();
            // @loc-end(readwrite)
            // @loc-begin(failure)
            match result {
                Ok(Some(message)) => break message,
                Ok(None) => return false,
                Err(e)
                    if e.is_retryable()
                        && attempts < MAX_READ_ATTEMPTS
                        && ctx.nfc().tag_in_range(uid) =>
                {
                    continue;
                }
                Err(_) => return false,
            }
        };
        // @loc-end(failure)
        self.activity.join_from_message(&ctx, &message)
    }

    /// The app's toast log.
    pub fn toasts(&self) -> ToastLog {
        self.host.toasts()
    }

    /// The device's WiFi manager.
    pub fn wifi(&self) -> &WifiManager {
        &self.activity.wifi
    }

    /// A barrier with the activity's main thread.
    pub fn sync(&self) {
        self.host.run_sync(|| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use std::time::Duration;

    fn setup() -> (World, PhoneId, HandcraftedWifiApp) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 43);
        let phone = world.add_phone("host");
        let app = HandcraftedWifiApp::launch(&world, phone, WifiManager::new());
        (world, phone, app)
    }

    #[test]
    fn provisions_blank_tag_then_guest_joins() {
        let (world, phone, host) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        host.provision(WifiConfig::new("office", "pw"));
        world.tap_tag(uid, phone);
        assert!(host.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10)));

        world.remove_tag_from_field(uid);
        let guest_phone = world.add_phone("guest");
        let guest = HandcraftedWifiApp::launch(&world, guest_phone, WifiManager::new());
        world.tap_tag(uid, guest_phone);
        assert!(guest.toasts().wait_for("Joining Wifi network office", Duration::from_secs(10)));
        guest.sync();
        assert_eq!(guest.wifi().current_network().as_deref(), Some("office"));
    }

    #[test]
    fn share_requires_a_peer_to_be_present() {
        let (world, phone, host) = setup();
        // No peer: the share fails after its bounded retries.
        host.share(WifiConfig::new("cafe", "espresso"));
        assert!(host.toasts().wait_for("Failed to share WiFi joiner", Duration::from_secs(10)));

        // With a peer present, the share succeeds and the guest joins.
        let guest_phone = world.add_phone("guest");
        let guest = HandcraftedWifiApp::launch(&world, guest_phone, WifiManager::new());
        world.bring_phones_together(phone, guest_phone);
        host.share(WifiConfig::new("cafe", "espresso"));
        assert!(host.toasts().wait_for("WiFi joiner shared!", Duration::from_secs(10)));
        assert!(guest.toasts().wait_for("Joining Wifi network cafe", Duration::from_secs(10)));
    }

    #[test]
    fn read_and_join_now_joins_provisioned_tag() {
        let (world, phone, host) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
        world.tap_tag(uid, phone);
        let msg = HandcraftedWifiActivity::config_to_message(&WifiConfig::new("lab", "k"));
        host.host.context().nfc().ndef_write(uid, &msg.to_bytes()).unwrap();
        assert!(host.read_and_join_now(uid));
        host.sync();
        assert_eq!(host.wifi().current_network().as_deref(), Some("lab"));
        // Blank tag: nothing to join.
        let blank = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));
        world.tap_tag(blank, phone);
        assert!(!host.read_and_join_now(blank));
    }

    #[test]
    fn conversion_round_trips_and_checks_mime() {
        let cfg = WifiConfig::new("net", "key");
        let msg = HandcraftedWifiActivity::config_to_message(&cfg);
        assert_eq!(HandcraftedWifiActivity::message_to_config(&msg), Some(cfg));
        let foreign =
            NdefMessage::single(NdefRecord::mime("application/other", b"{}".to_vec()).unwrap());
        assert_eq!(HandcraftedWifiActivity::message_to_config(&foreign), None);
    }
}
