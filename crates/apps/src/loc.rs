//! The Figure 2 measurement harness: counts the lines of code dedicated
//! to each RFID subproblem in the two WiFi-sharing implementations.
//!
//! The paper's metric (§4): *"count the lines of code needed for
//! implementing particular RFID subproblems in the application"*, the
//! subproblems being (1) event handling, (2) data conversion, (3)
//! failure handling, (4) read/write functionality, and (5) concurrency
//! management.
//!
//! The application sources carry machine-readable markers:
//!
//! ```text
//! // @loc-begin(event)
//! ... RFID-related code ...
//! // @loc-end(event)
//! ```
//!
//! [`count_annotated`] parses the markers and counts the non-blank,
//! non-comment code lines inside each region. The app sources are
//! embedded at compile time, so the measurement always reflects the code
//! actually built and tested.

use std::collections::BTreeMap;
use std::fmt;

/// The five RFID subproblems of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subproblem {
    /// Being notified of and reacting to NFC events.
    EventHandling,
    /// Converting application data to/from tag storage formats.
    DataConversion,
    /// Detecting, classifying, and recovering from faults.
    FailureHandling,
    /// Invoking the actual tag read/write (and beam) operations.
    ReadWrite,
    /// Keeping blocking work off the main thread and state race-free.
    Concurrency,
}

impl Subproblem {
    /// All subproblems, in the paper's presentation order.
    pub const ALL: [Subproblem; 5] = [
        Subproblem::EventHandling,
        Subproblem::DataConversion,
        Subproblem::FailureHandling,
        Subproblem::ReadWrite,
        Subproblem::Concurrency,
    ];

    /// The marker key used in `@loc` annotations.
    pub fn key(self) -> &'static str {
        match self {
            Subproblem::EventHandling => "event",
            Subproblem::DataConversion => "convert",
            Subproblem::FailureHandling => "failure",
            Subproblem::ReadWrite => "readwrite",
            Subproblem::Concurrency => "concurrency",
        }
    }

    fn from_key(key: &str) -> Option<Subproblem> {
        Subproblem::ALL.into_iter().find(|s| s.key() == key)
    }
}

impl fmt::Display for Subproblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Subproblem::EventHandling => "event handling",
            Subproblem::DataConversion => "data conversion",
            Subproblem::FailureHandling => "failure handling",
            Subproblem::ReadWrite => "read/write functionality",
            Subproblem::Concurrency => "concurrency management",
        };
        f.write_str(name)
    }
}

/// Problems in the annotation markup itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LocError {
    /// `@loc-begin` with an unknown category key.
    UnknownCategory {
        /// The offending key.
        key: String,
        /// 1-based line number.
        line: usize,
    },
    /// `@loc-begin` while a region is already open.
    NestedRegion {
        /// 1-based line number.
        line: usize,
    },
    /// `@loc-end` without a matching open region (or wrong category).
    UnmatchedEnd {
        /// 1-based line number.
        line: usize,
    },
    /// The file ended with a region still open.
    UnterminatedRegion {
        /// The category left open.
        key: String,
    },
}

impl fmt::Display for LocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocError::UnknownCategory { key, line } => {
                write!(f, "unknown @loc category {key:?} at line {line}")
            }
            LocError::NestedRegion { line } => write!(f, "nested @loc region at line {line}"),
            LocError::UnmatchedEnd { line } => write!(f, "unmatched @loc-end at line {line}"),
            LocError::UnterminatedRegion { key } => {
                write!(f, "unterminated @loc region {key:?}")
            }
        }
    }
}

impl std::error::Error for LocError {}

/// Line counts per subproblem for one implementation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocReport {
    counts: BTreeMap<Subproblem, usize>,
}

impl LocReport {
    /// Lines attributed to `subproblem`.
    pub fn count(&self, subproblem: Subproblem) -> usize {
        self.counts.get(&subproblem).copied().unwrap_or(0)
    }

    /// Total RFID-related lines.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// The share of `subproblem` in the total, in percent (0 when the
    /// total is 0).
    pub fn percentage(&self, subproblem: Subproblem) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.count(subproblem) as f64 / total as f64
        }
    }

    /// Merges another report into this one (summing counts).
    pub fn merge(&mut self, other: &LocReport) {
        for (subproblem, count) in &other.counts {
            *self.counts.entry(*subproblem).or_insert(0) += count;
        }
    }
}

fn marker_key<'a>(trimmed: &'a str, prefix: &str) -> Option<&'a str> {
    let rest = trimmed.strip_prefix(prefix)?;
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

/// Counts annotated code lines in `source`.
///
/// Inside a region, a line counts unless it is blank or consists solely
/// of a comment. Marker lines themselves never count. Regions must not
/// nest and must be terminated.
///
/// # Errors
///
/// [`LocError`] when the markup is malformed — the Figure 2 harness
/// refuses to produce numbers from broken annotations.
pub fn count_annotated(source: &str) -> Result<LocReport, LocError> {
    let mut report = LocReport::default();
    let mut open: Option<Subproblem> = None;
    for (index, raw) in source.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if let Some(key) = marker_key(trimmed, "// @loc-begin") {
            if open.is_some() {
                return Err(LocError::NestedRegion { line });
            }
            let Some(subproblem) = Subproblem::from_key(key) else {
                return Err(LocError::UnknownCategory { key: key.to_owned(), line });
            };
            open = Some(subproblem);
            continue;
        }
        if let Some(key) = marker_key(trimmed, "// @loc-end") {
            match open {
                Some(subproblem) if subproblem.key() == key => {
                    open = None;
                }
                _ => return Err(LocError::UnmatchedEnd { line }),
            }
            continue;
        }
        if let Some(subproblem) = open {
            if trimmed.is_empty() || trimmed.starts_with("//") {
                continue;
            }
            *report.counts.entry(subproblem).or_insert(0) += 1;
        }
    }
    if let Some(subproblem) = open {
        return Err(LocError::UnterminatedRegion { key: subproblem.key().to_owned() });
    }
    Ok(report)
}

/// The Figure 2 report for the MORENA WiFi-sharing implementation.
pub fn morena_wifi_report() -> LocReport {
    count_annotated(include_str!("wifi_morena.rs")).expect("morena annotations are well-formed")
}

/// The Figure 2 report for the handcrafted WiFi-sharing implementation.
pub fn handcrafted_wifi_report() -> LocReport {
    count_annotated(include_str!("wifi_handcrafted.rs"))
        .expect("handcrafted annotations are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_code_lines_only() {
        let source = "\
fn outside() {}
// @loc-begin(event)
fn handler() {
    // a comment inside does not count

    let x = 1;
}
// @loc-end(event)
// @loc-begin(failure)
retry();
// @loc-end(failure)
";
        let report = count_annotated(source).unwrap();
        assert_eq!(report.count(Subproblem::EventHandling), 3); // fn, let, }
        assert_eq!(report.count(Subproblem::FailureHandling), 1);
        assert_eq!(report.count(Subproblem::Concurrency), 0);
        assert_eq!(report.total(), 4);
        assert_eq!(report.percentage(Subproblem::FailureHandling), 25.0);
    }

    #[test]
    fn rejects_malformed_markup() {
        assert!(matches!(
            count_annotated("// @loc-begin(bogus)\n// @loc-end(bogus)\n"),
            Err(LocError::UnknownCategory { .. })
        ));
        assert!(matches!(
            count_annotated("// @loc-begin(event)\n// @loc-begin(failure)\n"),
            Err(LocError::NestedRegion { .. })
        ));
        assert!(matches!(
            count_annotated("// @loc-end(event)\n"),
            Err(LocError::UnmatchedEnd { .. })
        ));
        assert!(matches!(
            count_annotated("// @loc-begin(event)\ncode();\n"),
            Err(LocError::UnterminatedRegion { .. })
        ));
        // Mismatched end category.
        assert!(matches!(
            count_annotated("// @loc-begin(event)\n// @loc-end(failure)\n"),
            Err(LocError::UnmatchedEnd { .. })
        ));
    }

    #[test]
    fn empty_source_is_empty_report() {
        let report = count_annotated("").unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(report.percentage(Subproblem::EventHandling), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let a = count_annotated("// @loc-begin(event)\nx();\n// @loc-end(event)\n").unwrap();
        let b = count_annotated("// @loc-begin(event)\ny();\nz();\n// @loc-end(event)\n").unwrap();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(Subproblem::EventHandling), 3);
    }

    #[test]
    fn embedded_app_reports_reproduce_figure_2_shape() {
        let handcrafted = handcrafted_wifi_report();
        let morena = morena_wifi_report();

        // The headline claims of §4, as shape checks:
        // 1. The handcrafted implementation needs several times the code.
        let ratio = handcrafted.total() as f64 / morena.total() as f64;
        assert!(
            ratio >= 3.0,
            "expected a multi-fold reduction, got {} vs {} (ratio {ratio:.2})",
            handcrafted.total(),
            morena.total()
        );
        // 2. MORENA needs zero concurrency-management lines.
        assert_eq!(morena.count(Subproblem::Concurrency), 0);
        assert!(handcrafted.count(Subproblem::Concurrency) > 0);
        // 3. Event handling dominates the MORENA share.
        let max_share = Subproblem::ALL
            .into_iter()
            .max_by(|a, b| morena.percentage(*a).total_cmp(&morena.percentage(*b)))
            .unwrap();
        assert_eq!(max_share, Subproblem::EventHandling);
        // 4. Every subproblem costs the handcrafted version at least as
        //    much as MORENA.
        for subproblem in Subproblem::ALL {
            assert!(
                handcrafted.count(subproblem) >= morena.count(subproblem),
                "{subproblem} got cheaper in the handcrafted version"
            );
        }
    }

    #[test]
    fn subproblem_keys_round_trip() {
        for s in Subproblem::ALL {
            assert_eq!(Subproblem::from_key(s.key()), Some(s));
            assert!(!s.to_string().is_empty());
        }
        assert_eq!(Subproblem::from_key("nope"), None);
    }

    #[test]
    fn error_displays_are_nonempty() {
        for e in [
            LocError::UnknownCategory { key: "x".into(), line: 1 },
            LocError::NestedRegion { line: 2 },
            LocError::UnmatchedEnd { line: 3 },
            LocError::UnterminatedRegion { key: "event".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
