//! The WiFi-sharing domain of the paper's running example (§2): a
//! credentials value and the device's WiFi manager.
//!
//! These types are *application logic*, shared verbatim by the MORENA
//! and handcrafted implementations — they carry no RFID-related code and
//! are therefore outside the Figure 2 line counts.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Credentials for joining one WiFi network (the paper's `WifiConfig`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WifiConfig {
    /// Network name.
    pub ssid: String,
    /// Network password.
    pub key: String,
}

impl WifiConfig {
    /// Creates a config.
    pub fn new(ssid: &str, key: &str) -> WifiConfig {
        WifiConfig { ssid: ssid.to_owned(), key: key.to_owned() }
    }

    /// Connects the device to this network (the paper's
    /// `connect(WifiManager)` method).
    pub fn connect(&self, wifi_manager: &WifiManager) -> bool {
        wifi_manager.connect(&self.ssid, &self.key)
    }
}

/// A recording stand-in for Android's `WifiManager`: connection attempts
/// are logged so tests and experiments can assert on them.
#[derive(Debug, Clone, Default)]
pub struct WifiManager {
    connections: Arc<Mutex<Vec<WifiConfig>>>,
}

impl WifiManager {
    /// A manager with an empty connection log.
    pub fn new() -> WifiManager {
        WifiManager::default()
    }

    /// Records a connection attempt; always "succeeds".
    pub fn connect(&self, ssid: &str, key: &str) -> bool {
        self.connections.lock().push(WifiConfig::new(ssid, key));
        true
    }

    /// Every connection made, in order.
    pub fn connections(&self) -> Vec<WifiConfig> {
        self.connections.lock().clone()
    }

    /// The network currently joined (the most recent connection).
    pub fn current_network(&self) -> Option<String> {
        self.connections.lock().last().map(|c| c.ssid.clone())
    }

    /// Number of connection attempts.
    pub fn connection_count(&self) -> usize {
        self.connections.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_records_in_order() {
        let wm = WifiManager::new();
        assert_eq!(wm.current_network(), None);
        assert!(WifiConfig::new("a", "1").connect(&wm));
        assert!(WifiConfig::new("b", "2").connect(&wm));
        assert_eq!(wm.connection_count(), 2);
        assert_eq!(wm.current_network().as_deref(), Some("b"));
        assert_eq!(wm.connections(), vec![WifiConfig::new("a", "1"), WifiConfig::new("b", "2")]);
    }

    #[test]
    fn clones_share_the_log() {
        let wm = WifiManager::new();
        let view = wm.clone();
        wm.connect("net", "pw");
        assert_eq!(view.connection_count(), 1);
    }

    #[test]
    fn config_serializes_to_json() {
        let cfg = WifiConfig::new("lab", "s3cret");
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WifiConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
