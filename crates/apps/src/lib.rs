//! # morena-apps
//!
//! The evaluation applications of the MORENA reproduction:
//!
//! * [`wifi`] — the WiFi-sharing domain of the paper's running example
//!   (§2): `WifiConfig` credentials and a recording `WifiManager`.
//! * [`wifi_morena`] — the application built **on MORENA** (things,
//!   asynchronous operations, Beam), annotated for line counting.
//! * [`wifi_handcrafted`] — the same application built **directly on the
//!   raw platform API** (intents, blocking `Ndef`, `AsyncTask`, manual
//!   conversion and retries), equally annotated.
//! * [`loc`] — the Figure 2 harness: parses the annotations and produces
//!   per-subproblem line counts for both implementations.
//! * [`text_tool`] — §3's simple read/write-a-string tool on the tag
//!   reference level.
//! * [`asset_tracker`] — an extension app exercising multi-tag
//!   connectivity tracking and leased updates.
//! * [`door_access`] — a second full application: badge issuance under
//!   leases, doors with policy checks, revocation.
//! * [`wifi_handover`] — a standards-based on-tag encoding (NFC Forum
//!   Connection Handover + WiFi Simple Configuration) for the same
//!   `WifiConfig`, swappable for the JSON thing encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asset_tracker;
pub mod door_access;
pub mod loc;
pub mod text_tool;
pub mod wifi;
pub mod wifi_handcrafted;
pub mod wifi_handover;
pub mod wifi_morena;

pub use wifi::{WifiConfig, WifiManager};
pub use wifi_handcrafted::HandcraftedWifiApp;
pub use wifi_morena::MorenaWifiApp;
