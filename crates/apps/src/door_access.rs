//! A second full application beyond the paper's demo: **door access
//! control** with NFC badges.
//!
//! * A *badge office* issues badges onto blank tags — under a tag lease,
//!   so two office terminals can never double-issue the same tag — and
//!   revokes them by overwriting the access level.
//! * A *door* watches for badges with its `ThingSpace`, applies its
//!   policy in a §3.4-style condition, and logs every decision.
//!
//! Exercises the layers the WiFi app does not combine: things +
//! leasing + multi-phone contention over one tag.

use std::sync::Arc;
use std::time::Duration;

use morena_core::context::MorenaContext;
use morena_core::lease::{LeaseError, LeaseManager, LeaseRecord};
use morena_core::thing::{BoundThing, EmptyThingSlot, Thing, ThingObserver, ThingSpace};
use morena_nfc_sim::tag::TagUid;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A credential stored on a badge tag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Badge {
    /// Whose badge this is.
    pub holder: String,
    /// Access level; 0 means revoked.
    pub level: u8,
    /// Issue timestamp (simulation nanos), for audit.
    pub issued_at_nanos: u64,
}

impl Thing for Badge {
    const TYPE_NAME: &'static str = "door-badge";
}

/// One door decision, for the audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessDecision {
    /// The badge tag.
    pub uid: TagUid,
    /// The badge holder (empty for unreadable badges).
    pub holder: String,
    /// Whether the door opened.
    pub granted: bool,
}

struct DoorObserver {
    required_level: u8,
    log: Arc<Mutex<Vec<AccessDecision>>>,
}

impl ThingObserver<Badge> for DoorObserver {
    fn when_discovered(&self, thing: BoundThing<Badge>) {
        let badge = thing.value();
        let granted = badge.level >= self.required_level;
        self.log.lock().push(AccessDecision { uid: thing.uid(), holder: badge.holder, granted });
    }

    fn when_discovered_empty(&self, _slot: EmptyThingSlot<Badge>) {
        // A blank tag is not a badge; the door ignores it.
    }
}

/// A door that opens for badges at or above its required level.
pub struct Door {
    _space: ThingSpace<Badge>,
    log: Arc<Mutex<Vec<AccessDecision>>>,
}

impl std::fmt::Debug for Door {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Door").field("decisions", &self.log.lock().len()).finish()
    }
}

impl Door {
    /// Installs a door on `ctx`'s phone requiring `required_level`.
    pub fn install(ctx: &MorenaContext, required_level: u8) -> Door {
        let log = Arc::new(Mutex::new(Vec::new()));
        let space =
            ThingSpace::new(ctx, Arc::new(DoorObserver { required_level, log: Arc::clone(&log) }));
        Door { _space: space, log }
    }

    /// Every decision taken so far, oldest first.
    pub fn audit_log(&self) -> Vec<AccessDecision> {
        self.log.lock().clone()
    }

    /// Decisions for one badge tag.
    pub fn decisions_for(&self, uid: TagUid) -> Vec<AccessDecision> {
        self.log.lock().iter().filter(|d| d.uid == uid).cloned().collect()
    }
}

/// Errors of badge office operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IssueError {
    /// Another office terminal holds the tag (or won the race).
    Contended(LeaseError),
    /// The tag could not be read or written.
    Nfc(String),
    /// The tag already carries a badge; use `revoke`/re-issue.
    AlreadyIssued {
        /// The existing holder.
        holder: String,
    },
    /// The tag carries no badge to revoke.
    NoBadge,
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssueError::Contended(e) => write!(f, "office contention: {e}"),
            IssueError::Nfc(e) => write!(f, "badge tag I/O failed: {e}"),
            IssueError::AlreadyIssued { holder } => {
                write!(f, "tag already carries a badge for {holder}")
            }
            IssueError::NoBadge => write!(f, "tag carries no badge"),
        }
    }
}

impl std::error::Error for IssueError {}

/// An office terminal that issues and revokes badges, lease-protected.
pub struct BadgeOffice {
    ctx: MorenaContext,
    leases: LeaseManager,
}

impl std::fmt::Debug for BadgeOffice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BadgeOffice").field("device", &self.leases.device()).finish()
    }
}

impl BadgeOffice {
    /// Opens an office terminal on `ctx`'s phone.
    pub fn open(ctx: &MorenaContext) -> BadgeOffice {
        BadgeOffice { ctx: ctx.clone(), leases: LeaseManager::new(ctx) }
    }

    fn read_badge(&self, uid: TagUid) -> Result<Option<Badge>, IssueError> {
        use morena_core::convert::TagDataConverter;
        let bytes = self.ctx.nfc().ndef_read(uid).map_err(|e| IssueError::Nfc(e.to_string()))?;
        if bytes.is_empty() {
            return Ok(None);
        }
        let message =
            morena_ndef::NdefMessage::parse(&bytes).map_err(|e| IssueError::Nfc(e.to_string()))?;
        if message.is_blank() {
            return Ok(None);
        }
        let content = morena_core::lease::strip_lease(&message);
        Ok(Badge::converter().from_message(&content).ok())
    }

    fn write_badge_locked(
        &self,
        uid: TagUid,
        badge: &Badge,
        lease: &morena_core::lease::Lease,
    ) -> Result<(), IssueError> {
        use morena_core::convert::TagDataConverter;
        let message =
            Badge::converter().to_message(badge).map_err(|e| IssueError::Nfc(e.to_string()))?;
        let locked = morena_core::lease::with_lease(
            &message,
            LeaseRecord { holder: lease.holder, expires_at: lease.expires_at },
        );
        self.ctx
            .nfc()
            .ndef_write(uid, &locked.to_bytes())
            .map_err(|e| IssueError::Nfc(e.to_string()))
    }

    /// Issues a badge onto a blank tag, exclusively (lease + verify).
    ///
    /// # Errors
    ///
    /// [`IssueError::AlreadyIssued`] when the tag carries a badge,
    /// [`IssueError::Contended`] when another terminal holds the tag,
    /// [`IssueError::Nfc`] on I/O failure.
    pub fn issue(&self, uid: TagUid, holder: &str, level: u8) -> Result<Badge, IssueError> {
        let badge = Badge {
            holder: holder.to_owned(),
            level,
            issued_at_nanos: self.ctx.clock().now().as_nanos(),
        };
        let lease = self.acquire(uid)?;
        let result = (|| {
            // Under the lease: re-check the tag is still blank.
            if let Some(existing) = self.read_badge(uid)? {
                return Err(IssueError::AlreadyIssued { holder: existing.holder });
            }
            self.write_badge_locked(uid, &badge, &lease)
        })();
        let _ = self.leases.release(&lease);
        result.map(|()| badge)
    }

    /// Revokes the badge on `uid` (sets its level to 0), exclusively.
    ///
    /// # Errors
    ///
    /// [`IssueError::NoBadge`] when the tag carries none; contention and
    /// I/O errors as for [`issue`](BadgeOffice::issue).
    pub fn revoke(&self, uid: TagUid) -> Result<Badge, IssueError> {
        let lease = self.acquire(uid)?;
        let result = (|| {
            let existing = self.read_badge(uid)?.ok_or(IssueError::NoBadge)?;
            let revoked = Badge { level: 0, ..existing };
            self.write_badge_locked(uid, &revoked, &lease)?;
            Ok(revoked)
        })();
        let _ = self.leases.release(&lease);
        result
    }

    fn acquire(&self, uid: TagUid) -> Result<morena_core::lease::Lease, IssueError> {
        self.leases.acquire(uid, Duration::from_secs(5)).map_err(|e| match e {
            LeaseError::Held { .. } | LeaseError::LostRace { .. } => IssueError::Contended(e),
            other => IssueError::Nfc(other.to_string()),
        })
    }

    /// The badge currently on `uid`, if any.
    ///
    /// # Errors
    ///
    /// [`IssueError::Nfc`] on I/O failure.
    pub fn inspect(&self, uid: TagUid) -> Result<Option<Badge>, IssueError> {
        self.read_badge(uid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::geometry::Point;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;

    fn wait_for(cond: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    fn setup() -> (World, MorenaContext, MorenaContext, TagUid) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 91);
        let office_phone = world.add_phone("office");
        let door_phone = world.add_phone("door");
        let office_ctx = MorenaContext::headless(&world, office_phone);
        let door_ctx = MorenaContext::headless(&world, door_phone);
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        (world, office_ctx, door_ctx, uid)
    }

    #[test]
    fn issue_then_door_grants_then_revoke_denies() {
        let (world, office_ctx, door_ctx, uid) = setup();
        let office = BadgeOffice::open(&office_ctx);
        let door = Door::install(&door_ctx, 2);

        // Issue a level-3 badge at the office.
        world.tap_tag(uid, office_ctx.phone());
        let badge = office.issue(uid, "alice", 3).unwrap();
        assert_eq!(badge.holder, "alice");
        assert_eq!(office.inspect(uid).unwrap().unwrap().level, 3);
        world.remove_tag_from_field(uid);

        // Present at the door: granted.
        world.tap_tag(uid, door_ctx.phone());
        assert!(wait_for(|| !door.decisions_for(uid).is_empty()));
        let decision = door.decisions_for(uid)[0].clone();
        assert!(decision.granted);
        assert_eq!(decision.holder, "alice");
        world.remove_tag_from_field(uid);

        // Revoke, present again: denied.
        world.tap_tag(uid, office_ctx.phone());
        let revoked = office.revoke(uid).unwrap();
        assert_eq!(revoked.level, 0);
        world.remove_tag_from_field(uid);
        world.tap_tag(uid, door_ctx.phone());
        assert!(wait_for(|| door.decisions_for(uid).len() >= 2));
        assert!(!door.decisions_for(uid)[1].granted);
    }

    #[test]
    fn low_level_badge_is_denied() {
        let (world, office_ctx, door_ctx, uid) = setup();
        let office = BadgeOffice::open(&office_ctx);
        let door = Door::install(&door_ctx, 5);
        world.tap_tag(uid, office_ctx.phone());
        office.issue(uid, "bob", 1).unwrap();
        world.remove_tag_from_field(uid);
        world.tap_tag(uid, door_ctx.phone());
        assert!(wait_for(|| !door.decisions_for(uid).is_empty()));
        assert!(!door.decisions_for(uid)[0].granted);
        assert!(format!("{door:?}").contains("Door"));
    }

    #[test]
    fn double_issue_is_rejected() {
        let (world, office_ctx, _door_ctx, uid) = setup();
        let office = BadgeOffice::open(&office_ctx);
        world.tap_tag(uid, office_ctx.phone());
        office.issue(uid, "alice", 2).unwrap();
        match office.issue(uid, "mallory", 9) {
            Err(IssueError::AlreadyIssued { holder }) => assert_eq!(holder, "alice"),
            other => panic!("expected AlreadyIssued, got {other:?}"),
        }
        // The original badge is untouched.
        assert_eq!(office.inspect(uid).unwrap().unwrap().holder, "alice");
    }

    #[test]
    fn contending_office_terminal_is_refused() {
        let (world, office_ctx, _door_ctx, uid) = setup();
        let office_a = BadgeOffice::open(&office_ctx);
        // A second terminal co-located with the first.
        let terminal_b_phone = world.add_phone("office-b");
        world.set_phone_position(terminal_b_phone, Point::new(1000.0, 0.0));
        let office_b = BadgeOffice::open(&MorenaContext::headless(&world, terminal_b_phone));

        world.tap_tag(uid, office_ctx.phone());
        // Terminal A holds a lease while B tries to issue.
        let lease = office_a.leases.acquire(uid, Duration::from_secs(60)).unwrap();
        match office_b.issue(uid, "carol", 2) {
            Err(IssueError::Contended(_)) => {}
            other => panic!("expected contention, got {other:?}"),
        }
        office_a.leases.release(&lease).unwrap();
        assert!(office_b.issue(uid, "carol", 2).is_ok());
        assert!(format!("{office_b:?}").contains("BadgeOffice"));
    }

    #[test]
    fn revoking_a_blank_tag_errors() {
        let (world, office_ctx, _door_ctx, uid) = setup();
        let office = BadgeOffice::open(&office_ctx);
        world.tap_tag(uid, office_ctx.phone());
        assert_eq!(office.revoke(uid).unwrap_err(), IssueError::NoBadge);
        assert_eq!(office.inspect(uid).unwrap(), None);
    }

    #[test]
    fn error_displays_are_nonempty() {
        for e in [
            IssueError::Contended(LeaseError::NotHolder),
            IssueError::Nfc("x".into()),
            IssueError::AlreadyIssued { holder: "h".into() },
            IssueError::NoBadge,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
