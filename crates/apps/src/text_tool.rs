//! The simple read/write-a-string application of §3 of the paper: shows
//! the **tag reference level** of MORENA (one step below things), with a
//! custom `TagDiscoverer`, string converters, and explicit asynchronous
//! reads and writes updating a text field.

use std::sync::Arc;

use morena_android_sim::ui::{TextField, ToastLog};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::discovery::{DiscoveryListener, TagDiscoverer};
use morena_core::tagref::TagReference;
use morena_nfc_sim::tag::TagUid;
use parking_lot::Mutex;

/// The MIME type the tool reads and writes.
pub const TEXT_TYPE: &str = "text/plain";

struct ToolListener {
    display: TextField,
    toasts: ToastLog,
    last_seen: Arc<Mutex<Option<TagReference<StringConverter>>>>,
}

impl ToolListener {
    /// §3.2's `readTagAndUpdateUI`: asynchronously read the tag and show
    /// its contents; on failure, tell the user.
    fn read_tag_and_update_ui(&self, reference: TagReference<StringConverter>) {
        *self.last_seen.lock() = Some(reference.clone());
        let display = self.display.clone();
        let toasts = self.toasts.clone();
        reference.read(
            move |r| display.set_text(r.cached().unwrap_or_default()),
            move |_, failure| toasts.show(format!("Reading tag failed: {failure}")),
        );
    }
}

impl DiscoveryListener<StringConverter> for ToolListener {
    fn on_tag_detected(&self, reference: TagReference<StringConverter>) {
        self.read_tag_and_update_ui(reference);
    }

    fn on_tag_redetected(&self, reference: TagReference<StringConverter>) {
        self.read_tag_and_update_ui(reference);
    }

    fn on_empty_tag(&self, reference: TagReference<StringConverter>) {
        // A blank tag displays as the empty string and can be written.
        *self.last_seen.lock() = Some(reference);
        self.display.set_text("");
    }
}

/// The text tool: displays the contents of the last scanned text tag and
/// writes user input back to it.
pub struct TextTool {
    discoverer: TagDiscoverer<StringConverter>,
    input: TextField,
    display: TextField,
    toasts: ToastLog,
    last_seen: Arc<Mutex<Option<TagReference<StringConverter>>>>,
}

impl std::fmt::Debug for TextTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TextTool").field("display", &self.display.text()).finish()
    }
}

impl TextTool {
    /// Launches the tool on `ctx`'s phone.
    pub fn launch(ctx: &MorenaContext) -> TextTool {
        let display = TextField::new();
        let toasts = ToastLog::new();
        let last_seen = Arc::new(Mutex::new(None));
        let listener = Arc::new(ToolListener {
            display: display.clone(),
            toasts: toasts.clone(),
            last_seen: Arc::clone(&last_seen),
        });
        let discoverer =
            TagDiscoverer::new(ctx, Arc::new(StringConverter::new(TEXT_TYPE)), listener);
        TextTool { discoverer, input: TextField::new(), display, toasts, last_seen }
    }

    /// The field the user types new tag content into.
    pub fn input(&self) -> &TextField {
        &self.input
    }

    /// The field showing the last scanned tag's content.
    pub fn display(&self) -> &TextField {
        &self.display
    }

    /// The tool's toast log.
    pub fn toasts(&self) -> ToastLog {
        self.toasts.clone()
    }

    /// The tag currently "selected" (last scanned), if any.
    pub fn last_seen(&self) -> Option<TagUid> {
        self.last_seen.lock().as_ref().map(|r| r.uid())
    }

    /// §3.2's save-button handler: write the input field's text to the
    /// last seen tag, asynchronously, updating the display on success.
    pub fn save_clicked(&self) {
        let Some(reference) = self.last_seen.lock().clone() else {
            self.toasts.show("No tag scanned yet.");
            return;
        };
        let to_write = self.input.text();
        let display = self.display.clone();
        let toasts = self.toasts.clone();
        reference.write(
            to_write,
            move |r| display.set_text(r.cached().unwrap_or_default()),
            move |_, failure| toasts.show(format!("Writing tag failed: {failure}")),
        );
    }

    /// The discoverer, for tests.
    pub fn discoverer(&self) -> &TagDiscoverer<StringConverter> {
        &self.discoverer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_core::convert::TagDataConverter;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::{TagUid, Type2Tag};
    use morena_nfc_sim::world::World;
    use std::time::Duration;

    fn wait_for(cond: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    fn setup() -> (World, MorenaContext, TextTool, TagUid) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 51);
        let phone = world.add_phone("user");
        let ctx = MorenaContext::headless(&world, phone);
        let tool = TextTool::launch(&ctx);
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        (world, ctx, tool, uid)
    }

    #[test]
    fn scanning_a_text_tag_updates_the_display() {
        let (world, ctx, tool, uid) = setup();
        world.tap_tag(uid, ctx.phone());
        let msg = StringConverter::new(TEXT_TYPE).to_message(&"hello tool".to_string()).unwrap();
        ctx.nfc().ndef_write(uid, &msg.to_bytes()).unwrap();
        world.remove_tag_from_field(uid);
        world.tap_tag(uid, ctx.phone());
        assert!(wait_for(|| tool.display().text() == "hello tool"));
        assert_eq!(tool.last_seen(), Some(uid));
    }

    #[test]
    fn save_writes_input_to_last_seen_tag() {
        let (world, ctx, tool, uid) = setup();
        world.tap_tag(uid, ctx.phone());
        assert!(wait_for(|| tool.last_seen() == Some(uid)));
        tool.input().set_text("written by the tool");
        tool.save_clicked();
        assert!(wait_for(|| tool.display().text() == "written by the tool"));
        // Verify over the air.
        let bytes = ctx.nfc().ndef_read(uid).unwrap();
        let msg = morena_ndef::NdefMessage::parse(&bytes).unwrap();
        assert_eq!(
            StringConverter::new(TEXT_TYPE).from_message(&msg).unwrap(),
            "written by the tool"
        );
    }

    #[test]
    fn save_without_a_tag_toasts() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 52);
        let phone = world.add_phone("user");
        let ctx = MorenaContext::headless(&world, phone);
        let tool = TextTool::launch(&ctx);
        tool.save_clicked();
        assert!(tool.toasts().contains("No tag scanned yet."));
    }

    #[test]
    fn save_queues_while_tag_is_away_and_flushes_on_return() {
        let (world, ctx, tool, uid) = setup();
        world.tap_tag(uid, ctx.phone());
        assert!(wait_for(|| tool.last_seen() == Some(uid)));
        world.remove_tag_from_field(uid);
        tool.input().set_text("delayed write");
        tool.save_clicked();
        // Nothing happens while the tag is away…
        std::thread::sleep(Duration::from_millis(50));
        assert_ne!(tool.display().text(), "delayed write");
        // …the write flushes when the tag returns (decoupling in time).
        world.tap_tag(uid, ctx.phone());
        assert!(wait_for(|| tool.display().text() == "delayed write"));
    }
}
