//! Property tests of the simulation substrate: clock arithmetic and
//! wakeup ordering, geometry/proximity symmetry, link-model monotonicity,
//! and world event-consistency under arbitrary movement sequences.

use std::sync::Arc;
use std::time::Duration;

use morena_nfc_sim::clock::{Clock, SimInstant, VirtualClock, WaitOutcome, WaitSignal};
use morena_nfc_sim::geometry::Point;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagEmulator, TagUid, Type2Tag, Type4Tag};
use morena_nfc_sim::world::{NfcEvent, World};
use proptest::prelude::*;

proptest! {
    /// Advancing a virtual clock by any sequence of steps lands exactly
    /// on the sum, and never goes backwards along the way.
    #[test]
    fn virtual_clock_advance_is_additive(steps in proptest::collection::vec(0u64..10_000_000, 1..20)) {
        let clock = VirtualClock::new();
        let mut total = 0u64;
        let mut last = clock.now();
        for step in steps {
            clock.advance(Duration::from_nanos(step));
            total += step;
            let now = clock.now();
            prop_assert!(now >= last);
            last = now;
        }
        prop_assert_eq!(clock.now(), SimInstant::from_nanos(total));
    }

    /// A waiter with a deadline inside the advanced range always times
    /// out; one with a deadline beyond it never wakes.
    #[test]
    fn virtual_wait_until_fires_exactly_on_crossing(deadline_ms in 1u64..100, advance_ms in 1u64..200) {
        let clock = Arc::new(VirtualClock::new());
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        let deadline = SimInstant::EPOCH + Duration::from_millis(deadline_ms);
        let c2 = Arc::clone(&clock);
        let s2 = Arc::clone(&signal);
        let waiter = std::thread::spawn(move || c2.wait_until(&s2, seen, deadline));
        std::thread::sleep(Duration::from_millis(2));
        clock.advance(Duration::from_millis(advance_ms));
        if advance_ms >= deadline_ms {
            prop_assert_eq!(waiter.join().unwrap(), WaitOutcome::TimedOut);
        } else {
            // Not yet crossed: the waiter must still be blocked. Wake it
            // via the signal to finish the test cleanly.
            std::thread::sleep(Duration::from_millis(5));
            prop_assert!(!waiter.is_finished());
            signal.notify();
            prop_assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
        }
    }

    /// saturating arithmetic on SimInstant never panics and preserves
    /// ordering.
    #[test]
    fn sim_instant_arithmetic_is_total(a in any::<u64>(), d in any::<u64>()) {
        let t = SimInstant::from_nanos(a);
        let later = t + Duration::from_nanos(d);
        prop_assert!(later >= t);
        prop_assert_eq!(t.saturating_since(later), Duration::ZERO);
        let gap = later.saturating_since(t);
        prop_assert!(gap <= Duration::from_nanos(d));
    }

    /// Distance is symmetric, non-negative, and satisfies the triangle
    /// inequality.
    #[test]
    fn geometry_is_a_metric(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0,
        cx in -100.0f64..100.0, cy in -100.0f64..100.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
        prop_assert!(a.distance_to(b) >= 0.0);
        prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
    }

    /// Link failure probability is monotone in distance and clamped to
    /// [0, 1]; latency is monotone in message size.
    #[test]
    fn link_model_is_monotone(d1 in 0.0f64..0.1, d2 in 0.0f64..0.1, n1 in 0usize..10_000, n2 in 0usize..10_000) {
        let model = LinkModel::realistic();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.failure_prob(lo) <= model.failure_prob(hi));
        prop_assert!((0.0..=1.0).contains(&model.failure_prob(d1)));
        let (small, big) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(model.exchange_latency(small) <= model.exchange_latency(big));
    }

    /// Arbitrary command bytes never panic the Type 2 emulator, and its
    /// persistent memory only changes through valid WRITE commands.
    #[test]
    fn type2_emulator_survives_command_fuzz(
        commands in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 0..60),
    ) {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(1));
        for command in &commands {
            let _ = tag.transceive(command); // must not panic
        }
        tag.on_field_lost();
        // The tag remains structurally sound: capacity is stable and a
        // fresh format restores a readable blank state.
        prop_assert_eq!(tag.ndef_capacity(), 499);
        tag.format_ndef();
        let mut link = morena_nfc_sim::proto::DirectLink::new(&mut tag);
        let bytes = morena_nfc_sim::proto::read_ndef(&mut link, morena_nfc_sim::tag::TagTech::Type2).unwrap();
        prop_assert!(bytes.is_empty());
    }

    /// Arbitrary APDUs never panic the Type 4 emulator, and the session
    /// state machine still works afterwards.
    #[test]
    fn type4_emulator_survives_apdu_fuzz(
        commands in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 0..60),
    ) {
        let mut tag = Type4Tag::new(TagUid::from_seed(2), 512);
        for command in &commands {
            let _ = tag.transceive(command); // must not panic
        }
        tag.on_field_lost();
        // A clean session still reads the (possibly fuzz-written) file.
        let mut link = morena_nfc_sim::proto::DirectLink::new(&mut tag);
        let result = morena_nfc_sim::proto::read_ndef(&mut link, morena_nfc_sim::tag::TagTech::Type4);
        // NLEN might have been fuzz-corrupted to exceed the file: both a
        // clean read and a protocol error are acceptable; a panic is not.
        let _ = result;
    }

    /// The simulation is deterministic: the same seed and the same
    /// single-threaded interaction sequence produce byte-identical radio
    /// statistics and outcomes.
    #[test]
    fn same_seed_same_world_history(
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        let run = |seed: u64| {
            let world = World::with_link(
                VirtualClock::shared(),
                LinkModel { base_failure_prob: 0.3, edge_failure_prob: 0.3, ..LinkModel::instant() },
                seed,
            );
            let phone = world.add_phone("det");
            let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
            world.tap_tag(uid, phone);
            let mut outcomes = Vec::new();
            for &write in &ops {
                let result = if write {
                    world.transceive(phone, uid, &[0xA2, 5, 1, 2, 3, 4]).is_ok()
                } else {
                    world.transceive(phone, uid, &[0x30, 4]).is_ok()
                };
                outcomes.push(result);
            }
            (outcomes, world.radio_stats())
        };
        let (outcomes_a, stats_a) = run(seed);
        let (outcomes_b, stats_b) = run(seed);
        prop_assert_eq!(outcomes_a, outcomes_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Under any sequence of tag movements, the event stream alternates
    /// strictly between enter and leave for each phone (no double
    /// enters, no leave before enter), and the final event agrees with
    /// the final geometric state.
    #[test]
    fn world_events_alternate_consistently(distances in proptest::collection::vec(0.0f64..0.2, 1..25)) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 7);
        let phone = world.add_phone("prop");
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
        let rx = world.subscribe(phone);
        for d in &distances {
            world.place_tag_near(uid, phone, *d);
        }
        let range = world.link_model().nfc_range_m;
        let events: Vec<NfcEvent> = rx.try_iter().collect();
        let mut inside = false;
        for event in &events {
            match event {
                NfcEvent::TagEntered { .. } => {
                    prop_assert!(!inside, "double enter");
                    inside = true;
                }
                NfcEvent::TagLeft { .. } => {
                    prop_assert!(inside, "leave before enter");
                    inside = false;
                }
                _ => {}
            }
        }
        let geometrically_inside = distances.last().map(|d| *d <= range).unwrap_or(false);
        prop_assert_eq!(inside, geometrically_inside);
        prop_assert_eq!(world.tag_in_range(phone, uid), geometrically_inside);
    }
}
