//! Time sources for the simulation and the middleware.
//!
//! Every component that sleeps, times out, or timestamps goes through the
//! [`Clock`] trait so that tests can substitute a [`VirtualClock`] and make
//! timeout behaviour deterministic, while examples and benchmarks run on
//! the [`SystemClock`].

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A point on the simulation timeline, measured as nanoseconds since the
/// clock's epoch (process start for [`SystemClock`], zero for
/// [`VirtualClock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The zero instant (the clock epoch).
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// A deadline far enough away to mean "no deadline". Waits bounded by
    /// it never time out; a [`VirtualClock`] does not even register them
    /// as deadline sleepers (no `advance` can reach them).
    pub const FAR_FUTURE: SimInstant = SimInstant { nanos: u64::MAX };

    /// Builds an instant from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> SimInstant {
        SimInstant { nanos }
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// The instant `d` later than `self`, saturating on overflow.
    pub fn saturating_add(self, d: Duration) -> SimInstant {
        SimInstant { nanos: self.nanos.saturating_add(d.as_nanos() as u64) }
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimInstant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }
}

impl std::ops::Add<Duration> for SimInstant {
    type Output = SimInstant;

    fn add(self, d: Duration) -> SimInstant {
        self.saturating_add(d)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let millis = self.nanos / 1_000_000;
        write!(f, "t+{}.{:03}s", millis / 1000, millis % 1000)
    }
}

/// A notification target that [`Clock::wait_until`] can block on.
///
/// Conceptually a condition variable whose wakeups are counted, so a wakeup
/// that races ahead of the waiter is never lost.
#[derive(Debug, Default)]
pub struct WaitSignal {
    generation: Mutex<u64>,
    condvar: Condvar,
}

impl WaitSignal {
    /// Creates a fresh signal.
    pub fn new() -> WaitSignal {
        WaitSignal::default()
    }

    /// Wakes all current and future waiters of the current generation.
    pub fn notify(&self) {
        let mut generation = self.generation.lock();
        *generation += 1;
        self.condvar.notify_all();
    }

    /// The current generation counter (increases on every `notify`).
    pub fn generation(&self) -> u64 {
        *self.generation.lock()
    }
}

/// The outcome of a [`Clock::wait_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The signal was notified before the deadline.
    Notified,
    /// The deadline passed first.
    TimedOut,
}

/// An abstract time source.
///
/// Implementations must be thread-safe; they are shared across the
/// simulated world, per-tag event loops, and application threads.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current instant.
    fn now(&self) -> SimInstant;

    /// Blocks the calling thread for `d` (of this clock's time).
    ///
    /// On a [`VirtualClock`] in auto-advance mode this advances virtual
    /// time instead of blocking.
    fn sleep(&self, d: Duration);

    /// Blocks until `signal` is notified or `deadline` passes, whichever
    /// comes first.
    ///
    /// A notification that happened after the caller last observed the
    /// signal's generation (passed as `seen_generation`) counts
    /// immediately, closing the check-then-wait race.
    fn wait_until(
        &self,
        signal: &Arc<WaitSignal>,
        seen_generation: u64,
        deadline: SimInstant,
    ) -> WaitOutcome;
}

/// Wall-clock time; sleeps really sleep.
#[derive(Debug)]
pub struct SystemClock {
    origin: std::time::Instant,
}

impl SystemClock {
    /// Creates a system clock with its epoch at construction time.
    pub fn new() -> SystemClock {
        SystemClock { origin: std::time::Instant::now() }
    }

    /// Convenience: a reference-counted system clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn wait_until(
        &self,
        signal: &Arc<WaitSignal>,
        seen_generation: u64,
        deadline: SimInstant,
    ) -> WaitOutcome {
        let mut generation = signal.generation.lock();
        loop {
            // Deadline takes priority so that a wakeup caused by the
            // deadline itself is never misreported as a notification.
            let now = self.now();
            if now >= deadline {
                return WaitOutcome::TimedOut;
            }
            if *generation != seen_generation {
                return WaitOutcome::Notified;
            }
            let remaining = deadline.saturating_since(now);
            if signal.condvar.wait_for(&mut generation, remaining).timed_out()
                && *generation == seen_generation
            {
                return WaitOutcome::TimedOut;
            }
        }
    }
}

#[derive(Debug)]
struct Sleeper {
    deadline: SimInstant,
    signal: Arc<WaitSignal>,
}

impl PartialEq for Sleeper {
    fn eq(&self, other: &Sleeper) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for Sleeper {}
impl PartialOrd for Sleeper {
    fn partial_cmp(&self, other: &Sleeper) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sleeper {
    fn cmp(&self, other: &Sleeper) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest deadline.
        other.deadline.cmp(&self.deadline)
    }
}

#[derive(Debug)]
struct VirtualState {
    now: SimInstant,
    sleepers: BinaryHeap<Sleeper>,
    // How many threads are currently blocked in `wait_until` with a
    // *finite* deadline — the waiter-rendezvous counter behind
    // [`VirtualClock::await_waiters`].
    finite_waiters: usize,
}

/// Manually driven time for deterministic tests.
///
/// Two modes:
///
/// * **auto-advance** (default): [`Clock::sleep`] advances virtual time by
///   the requested duration instead of blocking, so single-threaded flows
///   and simulation latencies run instantly.
/// * **manual**: `sleep` blocks until another thread calls
///   [`VirtualClock::advance`] far enough. Use for tests that interleave
///   threads around a controlled timeline.
///
/// [`Clock::wait_until`] always blocks until notified or until `advance`
/// moves time past the deadline (auto-advance only applies to `sleep`).
#[derive(Debug)]
pub struct VirtualClock {
    state: Mutex<VirtualState>,
    tick: Condvar,
    auto_advance: bool,
}

impl VirtualClock {
    /// Creates a virtual clock in auto-advance mode at the epoch.
    pub fn new() -> VirtualClock {
        VirtualClock::with_auto_advance(true)
    }

    /// Creates a virtual clock, choosing the `sleep` behaviour.
    pub fn with_auto_advance(auto_advance: bool) -> VirtualClock {
        VirtualClock {
            state: Mutex::new(VirtualState {
                now: SimInstant::EPOCH,
                sleepers: BinaryHeap::new(),
                finite_waiters: 0,
            }),
            tick: Condvar::new(),
            auto_advance,
        }
    }

    /// Convenience: a reference-counted auto-advance virtual clock.
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Moves virtual time forward by `d`, waking every sleeper and
    /// signal-waiter whose deadline has been reached.
    pub fn advance(&self, d: Duration) {
        let woken = {
            let mut state = self.state.lock();
            state.now = state.now.saturating_add(d);
            let mut woken = Vec::new();
            while state.sleepers.peek().is_some_and(|s| s.deadline <= state.now) {
                woken.push(state.sleepers.pop().expect("peeked").signal);
            }
            woken
        };
        self.tick.notify_all();
        for signal in woken {
            signal.notify();
        }
    }

    /// Blocks until at least `n` threads are simultaneously parked in
    /// [`Clock::wait_until`] with a finite deadline — a rendezvous for
    /// tests that would otherwise guess with `thread::sleep` when a loop
    /// has reached its deadline wait before calling
    /// [`advance`](VirtualClock::advance).
    ///
    /// Waits bounded by [`SimInstant::FAR_FUTURE`] (parked idle, no
    /// deadline) are deliberately not counted.
    pub fn await_waiters(&self, n: usize) {
        let mut state = self.state.lock();
        while state.finite_waiters < n {
            self.tick.wait(&mut state);
        }
    }

    /// How many threads currently block in [`Clock::wait_until`] with a
    /// finite deadline.
    pub fn finite_waiters(&self) -> usize {
        self.state.lock().finite_waiters
    }

    fn advance_to(&self, deadline: SimInstant) {
        let woken = {
            let mut state = self.state.lock();
            if deadline > state.now {
                state.now = deadline;
            }
            let mut woken = Vec::new();
            while state.sleepers.peek().is_some_and(|s| s.deadline <= state.now) {
                woken.push(state.sleepers.pop().expect("peeked").signal);
            }
            woken
        };
        self.tick.notify_all();
        for signal in woken {
            signal.notify();
        }
    }
}

impl Default for VirtualClock {
    fn default() -> VirtualClock {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimInstant {
        self.state.lock().now
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        if self.auto_advance {
            let deadline = self.state.lock().now.saturating_add(d);
            self.advance_to(deadline);
            return;
        }
        let deadline = {
            let state = self.state.lock();
            state.now.saturating_add(d)
        };
        let mut state = self.state.lock();
        while state.now < deadline {
            self.tick.wait(&mut state);
        }
    }

    fn wait_until(
        &self,
        signal: &Arc<WaitSignal>,
        seen_generation: u64,
        deadline: SimInstant,
    ) -> WaitOutcome {
        // Register a wakeup for the deadline so `advance` reaches us. A
        // FAR_FUTURE deadline can never be reached by `advance`, so it is
        // neither registered nor counted as a finite waiter.
        let finite = deadline != SimInstant::FAR_FUTURE;
        {
            let mut state = self.state.lock();
            if state.now >= deadline {
                return WaitOutcome::TimedOut;
            }
            if finite {
                state.sleepers.push(Sleeper { deadline, signal: Arc::clone(signal) });
                state.finite_waiters += 1;
            }
        }
        if finite {
            // Wake any `await_waiters` rendezvous.
            self.tick.notify_all();
        }
        let outcome = {
            let mut generation = signal.generation.lock();
            loop {
                // Deadline takes priority: the clock wakes timed-out waiters
                // by notifying their signal, which must not read as a
                // notification.
                if self.state.lock().now >= deadline {
                    break WaitOutcome::TimedOut;
                }
                if *generation != seen_generation {
                    break WaitOutcome::Notified;
                }
                signal.condvar.wait(&mut generation);
            }
        };
        if finite {
            self.state.lock().finite_waiters -= 1;
            self.tick.notify_all();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn system_clock_advances() {
        let clock = SystemClock::new();
        let a = clock.now();
        clock.sleep(Duration::from_millis(5));
        let b = clock.now();
        assert!(b > a);
        assert!(b.saturating_since(a) >= Duration::from_millis(5));
    }

    #[test]
    fn system_wait_until_times_out() {
        let clock = SystemClock::new();
        let signal = Arc::new(WaitSignal::new());
        let deadline = clock.now() + Duration::from_millis(10);
        let outcome = clock.wait_until(&signal, signal.generation(), deadline);
        assert_eq!(outcome, WaitOutcome::TimedOut);
        assert!(clock.now() >= deadline);
    }

    #[test]
    fn system_wait_until_sees_notification() {
        let clock = Arc::new(SystemClock::new());
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        let s2 = Arc::clone(&signal);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            s2.notify();
        });
        let deadline = clock.now() + Duration::from_secs(10);
        assert_eq!(clock.wait_until(&signal, seen, deadline), WaitOutcome::Notified);
        handle.join().unwrap();
    }

    #[test]
    fn notification_before_wait_is_not_lost() {
        let clock = SystemClock::new();
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        signal.notify(); // happens "concurrently" before the wait
        let deadline = clock.now() + Duration::from_secs(10);
        assert_eq!(clock.wait_until(&signal, seen, deadline), WaitOutcome::Notified);
    }

    #[test]
    fn virtual_clock_auto_advance_sleep() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        clock.sleep(Duration::from_secs(3));
        assert_eq!(clock.now(), SimInstant::EPOCH + Duration::from_secs(3));
    }

    #[test]
    fn virtual_clock_manual_sleep_blocks_until_advanced() {
        let clock = Arc::new(VirtualClock::with_auto_advance(false));
        let c2 = Arc::clone(&clock);
        let handle = thread::spawn(move || {
            c2.sleep(Duration::from_secs(5));
            c2.now()
        });
        // Give the sleeper a moment to block, then advance in two steps.
        thread::sleep(Duration::from_millis(10));
        clock.advance(Duration::from_secs(2));
        thread::sleep(Duration::from_millis(10));
        assert!(!handle.is_finished());
        clock.advance(Duration::from_secs(3));
        let woke_at = handle.join().unwrap();
        assert_eq!(woke_at, SimInstant::EPOCH + Duration::from_secs(5));
    }

    #[test]
    fn virtual_wait_until_timeout_via_advance() {
        let clock = Arc::new(VirtualClock::new());
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        let c2 = Arc::clone(&clock);
        let s2 = Arc::clone(&signal);
        let handle = thread::spawn(move || {
            c2.wait_until(&s2, seen, SimInstant::EPOCH + Duration::from_secs(1))
        });
        thread::sleep(Duration::from_millis(10));
        assert!(!handle.is_finished());
        clock.advance(Duration::from_secs(1));
        assert_eq!(handle.join().unwrap(), WaitOutcome::TimedOut);
    }

    #[test]
    fn virtual_wait_until_notified() {
        let clock = Arc::new(VirtualClock::new());
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        let c2 = Arc::clone(&clock);
        let s2 = Arc::clone(&signal);
        let handle = thread::spawn(move || {
            c2.wait_until(&s2, seen, SimInstant::EPOCH + Duration::from_secs(60))
        });
        thread::sleep(Duration::from_millis(10));
        signal.notify();
        assert_eq!(handle.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn virtual_wait_until_past_deadline_returns_immediately() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_secs(10));
        let signal = Arc::new(WaitSignal::new());
        let outcome = clock.wait_until(
            &signal,
            signal.generation(),
            SimInstant::EPOCH + Duration::from_secs(5),
        );
        assert_eq!(outcome, WaitOutcome::TimedOut);
    }

    #[test]
    fn sim_instant_arithmetic() {
        let t = SimInstant::from_nanos(1_500_000_000);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t + Duration::from_millis(500), SimInstant::from_nanos(2_000_000_000));
        assert_eq!((t + Duration::from_secs(1)).saturating_since(t), Duration::from_secs(1));
        assert_eq!(t.saturating_since(t + Duration::from_secs(1)), Duration::ZERO);
        assert_eq!(format!("{t}"), "t+1.500s");
    }

    #[test]
    fn await_waiters_rendezvous_sees_finite_waiters() {
        let clock = Arc::new(VirtualClock::with_auto_advance(false));
        assert_eq!(clock.finite_waiters(), 0);
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        let c2 = Arc::clone(&clock);
        let s2 = Arc::clone(&signal);
        let handle = thread::spawn(move || {
            c2.wait_until(&s2, seen, SimInstant::EPOCH + Duration::from_secs(1))
        });
        // Blocks until the waiter is actually parked on its deadline — no
        // sleep-based guessing.
        clock.await_waiters(1);
        assert_eq!(clock.finite_waiters(), 1);
        clock.advance(Duration::from_secs(1));
        assert_eq!(handle.join().unwrap(), WaitOutcome::TimedOut);
        assert_eq!(clock.finite_waiters(), 0);
    }

    #[test]
    fn far_future_waits_are_not_counted_as_finite_waiters() {
        let clock = Arc::new(VirtualClock::with_auto_advance(false));
        let signal = Arc::new(WaitSignal::new());
        let seen = signal.generation();
        let c2 = Arc::clone(&clock);
        let s2 = Arc::clone(&signal);
        let handle = thread::spawn(move || c2.wait_until(&s2, seen, SimInstant::FAR_FUTURE));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(clock.finite_waiters(), 0, "idle parks must not trip the rendezvous");
        signal.notify();
        assert_eq!(handle.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn zero_sleep_is_noop() {
        let clock = VirtualClock::with_auto_advance(false);
        clock.sleep(Duration::ZERO); // must not block
        assert_eq!(clock.now(), SimInstant::EPOCH);
    }
}
