//! Error types of the simulated NFC stack, layered like the hardware:
//! [`LinkError`] (radio), [`TagError`] (tag silicon), and [`NfcOpError`]
//! (complete NDEF operations).

use std::error::Error;
use std::fmt;

/// Failures at the radio-link level: the reader attempted an exchange with
/// a tag (or peer) and the physical layer did not deliver it.
///
/// These are the "failure is the rule instead of the exception" faults the
/// MORENA paper is about: the higher layers must retry or surface them
/// asynchronously.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkError {
    /// The target was not in the reader's field when the exchange started.
    OutOfRange,
    /// The field was lost while the exchange was in flight (tag moved away
    /// mid-operation). The tag may have applied a prefix of the operation.
    FieldLost,
    /// The exchange was corrupted by noise and got no usable response.
    TransmissionError,
    /// No device with this identity exists in the world.
    UnknownDevice,
    /// A beam was attempted with no peer phone in proximity.
    NoPeerInRange,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::OutOfRange => write!(f, "target is out of the reader field"),
            LinkError::FieldLost => write!(f, "field lost during the exchange"),
            LinkError::TransmissionError => write!(f, "transmission error, no usable response"),
            LinkError::UnknownDevice => write!(f, "unknown device identity"),
            LinkError::NoPeerInRange => write!(f, "no peer phone in proximity"),
        }
    }
}

impl Error for LinkError {}

/// Failures raised by a tag emulator processing a command that did reach
/// it over the air.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TagError {
    /// The tag did not recognize the command and stayed mute.
    NoResponse,
}

impl fmt::Display for TagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagError::NoResponse => write!(f, "tag gave no response to the command"),
        }
    }
}

impl Error for TagError {}

/// Failures of a complete NDEF-level operation (detect, read, or write a
/// whole NDEF message), combining link faults with protocol-level faults.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NfcOpError {
    /// The underlying link failed; the operation may be retried later.
    Link(LinkError),
    /// The tag is not NDEF-formatted (no capability container / NDEF file).
    NotNdef,
    /// The message does not fit in the tag's data area.
    CapacityExceeded {
        /// Bytes the encoded message needs.
        needed: usize,
        /// Bytes the tag can store.
        capacity: usize,
    },
    /// The tag is write-protected.
    ReadOnly,
    /// The tag answered, but with bytes that violate the tag-type protocol.
    Protocol(&'static str),
}

impl NfcOpError {
    /// Whether retrying the same operation later can plausibly succeed
    /// (i.e. the failure was transient connectivity, not a protocol or
    /// capacity fact about the tag).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NfcOpError::Link(
                LinkError::OutOfRange
                    | LinkError::FieldLost
                    | LinkError::TransmissionError
                    | LinkError::NoPeerInRange
            )
        )
    }
}

impl fmt::Display for NfcOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfcOpError::Link(e) => write!(f, "link failure: {e}"),
            NfcOpError::NotNdef => write!(f, "tag is not NDEF formatted"),
            NfcOpError::CapacityExceeded { needed, capacity } => {
                write!(f, "message of {needed} bytes exceeds tag capacity of {capacity} bytes")
            }
            NfcOpError::ReadOnly => write!(f, "tag is write-protected"),
            NfcOpError::Protocol(detail) => write!(f, "tag protocol violation: {detail}"),
        }
    }
}

impl Error for NfcOpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NfcOpError::Link(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinkError> for NfcOpError {
    fn from(e: LinkError) -> NfcOpError {
        NfcOpError::Link(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(NfcOpError::Link(LinkError::OutOfRange).is_transient());
        assert!(NfcOpError::Link(LinkError::FieldLost).is_transient());
        assert!(NfcOpError::Link(LinkError::TransmissionError).is_transient());
        assert!(NfcOpError::Link(LinkError::NoPeerInRange).is_transient());
        assert!(!NfcOpError::Link(LinkError::UnknownDevice).is_transient());
        assert!(!NfcOpError::NotNdef.is_transient());
        assert!(!NfcOpError::CapacityExceeded { needed: 10, capacity: 5 }.is_transient());
        assert!(!NfcOpError::ReadOnly.is_transient());
        assert!(!NfcOpError::Protocol("x").is_transient());
    }

    #[test]
    fn displays_are_nonempty_and_source_chains() {
        let e = NfcOpError::Link(LinkError::FieldLost);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&NfcOpError::NotNdef).is_none());
        for l in [
            LinkError::OutOfRange,
            LinkError::FieldLost,
            LinkError::TransmissionError,
            LinkError::UnknownDevice,
            LinkError::NoPeerInRange,
        ] {
            assert!(!l.to_string().is_empty());
        }
        assert!(!TagError::NoResponse.to_string().is_empty());
    }
}
