//! Scripted physical timelines: "at t=2s, tap tag A on phone 1 and hold
//! it for 800 ms" — the simulation-side replacement for the humans that
//! would wave phones over stickers in the paper's demo.
//!
//! A [`Scenario`] is a list of timestamped actions. It can be run
//! synchronously ([`Scenario::run`]) or on a driver thread
//! ([`Scenario::spawn`]), in both cases pacing itself on the world's
//! clock, so virtual-clock tests execute instantly and real-clock examples
//! play out in real time.

use std::time::Duration;

use crate::geometry::Point;
use crate::tag::TagUid;
use crate::world::{PhoneId, World};

/// One scripted physical action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Move a tag into a phone's field.
    TapTag {
        /// The tag to move.
        uid: TagUid,
        /// The phone to present it to.
        phone: PhoneId,
    },
    /// Pull a tag away from everything.
    RemoveTag {
        /// The tag to remove.
        uid: TagUid,
    },
    /// Move a tag to an absolute position.
    MoveTag {
        /// The tag to move.
        uid: TagUid,
        /// Destination.
        to: Point,
    },
    /// Move a phone to an absolute position.
    MovePhone {
        /// The phone to move.
        phone: PhoneId,
        /// Destination.
        to: Point,
    },
    /// Bring one phone next to another (into beam range).
    BringTogether {
        /// The stationary phone.
        a: PhoneId,
        /// The phone that moves.
        b: PhoneId,
    },
    /// Move a phone far from everything.
    Separate {
        /// The phone that leaves.
        phone: PhoneId,
    },
    /// Place a tag at an exact distance from a phone's current position.
    MoveTagNear {
        /// The tag to move.
        uid: TagUid,
        /// The phone to measure from.
        phone: PhoneId,
        /// Distance in meters.
        distance: f64,
    },
}

/// A timed script of [`Action`]s against a [`World`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::scenario::Scenario;
/// use morena_nfc_sim::tag::{TagUid, Type2Tag};
/// use morena_nfc_sim::world::World;
///
/// let world = World::new(VirtualClock::shared());
/// let phone = world.add_phone("alice");
/// let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
///
/// Scenario::new()
///     .at(Duration::from_millis(100), |s| s.tap_tag(uid, phone))
///     .after(Duration::from_millis(500), |s| s.remove_tag(uid))
///     .run(&world);
/// assert!(!world.tag_in_range(phone, uid));
/// ```
#[derive(Debug, Default)]
pub struct Scenario {
    steps: Vec<(Duration, Action)>,
    cursor: Duration,
}

/// Fluent step-adder passed to [`Scenario::at`] / [`Scenario::after`].
#[derive(Debug, Default)]
pub struct StepBuilder {
    actions: Vec<Action>,
}

impl StepBuilder {
    /// Tap `uid` on `phone`.
    pub fn tap_tag(mut self, uid: TagUid, phone: PhoneId) -> StepBuilder {
        self.actions.push(Action::TapTag { uid, phone });
        self
    }

    /// Pull `uid` away from everything.
    pub fn remove_tag(mut self, uid: TagUid) -> StepBuilder {
        self.actions.push(Action::RemoveTag { uid });
        self
    }

    /// Move `uid` to `to`.
    pub fn move_tag(mut self, uid: TagUid, to: Point) -> StepBuilder {
        self.actions.push(Action::MoveTag { uid, to });
        self
    }

    /// Move `phone` to `to`.
    pub fn move_phone(mut self, phone: PhoneId, to: Point) -> StepBuilder {
        self.actions.push(Action::MovePhone { phone, to });
        self
    }

    /// Bring `b` next to `a`.
    pub fn bring_together(mut self, a: PhoneId, b: PhoneId) -> StepBuilder {
        self.actions.push(Action::BringTogether { a, b });
        self
    }

    /// Move `phone` far from everything.
    pub fn separate(mut self, phone: PhoneId) -> StepBuilder {
        self.actions.push(Action::Separate { phone });
        self
    }
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Adds actions at an absolute offset from scenario start.
    pub fn at(mut self, t: Duration, build: impl FnOnce(StepBuilder) -> StepBuilder) -> Scenario {
        let steps = build(StepBuilder::default()).actions;
        for action in steps {
            self.steps.push((t, action));
        }
        self.cursor = self.cursor.max(t);
        self
    }

    /// Adds actions `d` after the latest step so far.
    pub fn after(self, d: Duration, build: impl FnOnce(StepBuilder) -> StepBuilder) -> Scenario {
        let t = self.cursor + d;
        self.at(t, build)
    }

    /// Appends a square-wave presence pattern: `uid` taps `phone` and is
    /// pulled away repeatedly, in range for `duty * period` of each cycle,
    /// for `cycles` cycles, starting at the current cursor.
    ///
    /// This is the workload of the EXT-RETRY experiment: a user fumbling a
    /// tag near the reader.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use morena_nfc_sim::clock::VirtualClock;
    /// use morena_nfc_sim::scenario::Scenario;
    /// use morena_nfc_sim::tag::{TagUid, Type2Tag};
    /// use morena_nfc_sim::world::World;
    ///
    /// let world = World::new(VirtualClock::shared());
    /// let phone = world.add_phone("fumbler");
    /// let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
    /// // In range 30% of every 200 ms, five times.
    /// Scenario::new()
    ///     .presence_duty_cycle(uid, phone, Duration::from_millis(200), 0.3, 5)
    ///     .run(&world);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < duty <= 1.0`.
    pub fn presence_duty_cycle(
        mut self,
        uid: TagUid,
        phone: PhoneId,
        period: Duration,
        duty: f64,
        cycles: usize,
    ) -> Scenario {
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        let on = period.mul_f64(duty);
        let start = self.cursor;
        for i in 0..cycles {
            let t0 = start + period.saturating_mul(i as u32);
            self.steps.push((t0, Action::TapTag { uid, phone }));
            if duty < 1.0 {
                self.steps.push((t0 + on, Action::RemoveTag { uid }));
            }
        }
        self.cursor = start + period.saturating_mul(cycles as u32);
        self
    }

    /// Appends a continuous sweep: the tag approaches `phone` from
    /// outside the field to `closest` meters away, dwells, and retreats —
    /// a realistic swipe gesture discretized into `steps` positions each
    /// way. Exercises the distance-dependent part of the link model.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn sweep_tag(
        mut self,
        uid: TagUid,
        phone: PhoneId,
        closest: f64,
        approach: Duration,
        dwell: Duration,
        steps: usize,
    ) -> Scenario {
        assert!(steps > 0, "a sweep needs at least one step");
        let start = self.cursor;
        let far = 0.2; // comfortably outside any NFC field
        let step_d = approach / steps as u32;
        for i in 0..=steps {
            let f = i as f64 / steps as f64;
            let distance = far + (closest - far) * f;
            self.steps.push((
                start + step_d.saturating_mul(i as u32),
                Action::MoveTagNear { uid, phone, distance },
            ));
        }
        let retreat_start = start + approach + dwell;
        for i in 0..=steps {
            let f = i as f64 / steps as f64;
            let distance = closest + (far - closest) * f;
            self.steps.push((
                retreat_start + step_d.saturating_mul(i as u32),
                Action::MoveTagNear { uid, phone, distance },
            ));
        }
        self.cursor = retreat_start + approach;
        self
    }

    /// Total scripted duration (time of the last step).
    pub fn duration(&self) -> Duration {
        self.steps.iter().map(|(t, _)| *t).max().unwrap_or_default()
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the scenario has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    fn apply(world: &World, action: &Action) {
        match action {
            Action::TapTag { uid, phone } => world.tap_tag(*uid, *phone),
            Action::RemoveTag { uid } => world.remove_tag_from_field(*uid),
            Action::MoveTag { uid, to } => world.set_tag_position(*uid, *to),
            Action::MovePhone { phone, to } => world.set_phone_position(*phone, *to),
            Action::BringTogether { a, b } => world.bring_phones_together(*a, *b),
            Action::Separate { phone } => world.separate_phone(*phone),
            Action::MoveTagNear { uid, phone, distance } => {
                world.place_tag_near(*uid, *phone, *distance);
            }
        }
    }

    /// Runs the scenario to completion on the calling thread, pacing on
    /// the world clock.
    pub fn run(mut self, world: &World) {
        self.steps.sort_by_key(|(t, _)| *t);
        let mut elapsed = Duration::ZERO;
        for (t, action) in &self.steps {
            if *t > elapsed {
                world.sleep(*t - elapsed);
                elapsed = *t;
            }
            Scenario::apply(world, action);
        }
    }

    /// Runs the scenario on a background driver thread.
    ///
    /// With a manually advanced [`crate::clock::VirtualClock`] the driver
    /// blocks in `sleep` until the test advances time.
    pub fn spawn(self, world: &World) -> std::thread::JoinHandle<()> {
        let world = world.clone();
        std::thread::Builder::new()
            .name("scenario-driver".into())
            .spawn(move || self.run(&world))
            .expect("spawn scenario driver")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, SimInstant, VirtualClock};
    use crate::link::LinkModel;
    use crate::tag::Type2Tag;
    use crate::world::{NfcEvent, World};
    use std::sync::Arc;

    fn setup() -> (World, PhoneId, TagUid, Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        let world = World::with_link(Arc::clone(&clock) as Arc<dyn Clock>, LinkModel::instant(), 0);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
        (world, phone, uid, clock)
    }

    #[test]
    fn steps_execute_in_time_order() {
        let (world, phone, uid, clock) = setup();
        let rx = world.subscribe(phone);
        Scenario::new()
            .at(Duration::from_secs(2), |s| s.remove_tag(uid))
            .at(Duration::from_secs(1), |s| s.tap_tag(uid, phone))
            .run(&world);
        // Tap (enter) must precede removal (leave) despite insertion order.
        assert!(matches!(rx.try_recv().unwrap(), NfcEvent::TagEntered { .. }));
        assert!(matches!(rx.try_recv().unwrap(), NfcEvent::TagLeft { .. }));
        // Auto-advancing virtual clock consumed exactly the scripted time.
        assert_eq!(clock.now(), SimInstant::EPOCH + Duration::from_secs(2));
    }

    #[test]
    fn after_chains_relative_offsets() {
        let s = Scenario::new()
            .at(Duration::from_secs(1), |s| s.tap_tag(TagUid::from_seed(1), PhoneId::from_u64(0)))
            .after(Duration::from_millis(500), |s| s.remove_tag(TagUid::from_seed(1)));
        assert_eq!(s.duration(), Duration::from_millis(1500));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn duty_cycle_generates_square_wave() {
        let uid = TagUid::from_seed(2);
        let phone = PhoneId::from_u64(0);
        let s = Scenario::new().presence_duty_cycle(uid, phone, Duration::from_secs(1), 0.25, 4);
        assert_eq!(s.len(), 8); // 4 taps + 4 removals
        assert_eq!(s.duration(), Duration::from_millis(3250));
        // Full duty emits no removals.
        let s = Scenario::new().presence_duty_cycle(uid, phone, Duration::from_secs(1), 1.0, 3);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duty_cycle_drives_real_connectivity() {
        let (world, phone, uid, _clock) = setup();
        let rx = world.subscribe(phone);
        Scenario::new()
            .presence_duty_cycle(uid, phone, Duration::from_millis(100), 0.5, 3)
            .run(&world);
        let events: Vec<NfcEvent> = rx.try_iter().collect();
        let enters = events.iter().filter(|e| matches!(e, NfcEvent::TagEntered { .. })).count();
        let leaves = events.iter().filter(|e| matches!(e, NfcEvent::TagLeft { .. })).count();
        assert_eq!(enters, 3);
        assert_eq!(leaves, 3);
    }

    #[test]
    fn all_action_kinds_apply() {
        let (world, phone, uid, _clock) = setup();
        let other = world.add_phone("bob");
        Scenario::new()
            .at(Duration::ZERO, |s| {
                s.move_tag(uid, Point::new(3.0, 3.0))
                    .move_phone(phone, Point::new(3.0, 3.0))
                    .bring_together(phone, other)
            })
            .run(&world);
        assert!(world.tag_in_range(phone, uid));
        assert_eq!(world.peers_in_range(phone), vec![other]);
        Scenario::new().at(Duration::ZERO, |s| s.separate(other).remove_tag(uid)).run(&world);
        assert!(!world.tag_in_range(phone, uid));
        assert!(world.peers_in_range(phone).is_empty());
    }

    #[test]
    fn spawn_runs_on_a_driver_thread() {
        let (world, phone, uid, _clock) = setup();
        let handle =
            Scenario::new().at(Duration::from_millis(10), |s| s.tap_tag(uid, phone)).spawn(&world);
        handle.join().unwrap();
        assert!(world.tag_in_range(phone, uid));
    }

    #[test]
    fn sweep_moves_through_the_field_edge() {
        let (world, phone, uid, _clock) = setup();
        let rx = world.subscribe(phone);
        Scenario::new()
            .sweep_tag(
                uid,
                phone,
                0.005,
                Duration::from_millis(200),
                Duration::from_millis(100),
                10,
            )
            .run(&world);
        let events: Vec<NfcEvent> = rx.try_iter().collect();
        // The sweep enters the field exactly once and leaves exactly once.
        let enters = events.iter().filter(|e| matches!(e, NfcEvent::TagEntered { .. })).count();
        let leaves = events.iter().filter(|e| matches!(e, NfcEvent::TagLeft { .. })).count();
        assert_eq!(enters, 1);
        assert_eq!(leaves, 1);
        assert!(!world.tag_in_range(phone, uid), "sweep ends outside the field");
    }

    #[test]
    fn place_tag_near_controls_distance_reliability() {
        use crate::link::LinkModel;
        // A world with strong distance dependence: 0% at contact, 100% at edge.
        let clock = VirtualClock::shared();
        let world = World::with_link(
            clock,
            LinkModel {
                base_failure_prob: 0.0,
                edge_failure_prob: 1.0,
                setup_latency: Duration::ZERO,
                per_byte_latency: Duration::ZERO,
                ..LinkModel::realistic()
            },
            1,
        );
        let phone = world.add_phone("p");
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(9))));
        // At contact every exchange succeeds…
        world.place_tag_near(uid, phone, 0.0);
        for _ in 0..20 {
            assert!(world.transceive(phone, uid, &[0x30, 3]).is_ok());
        }
        // …close to the very edge, exchanges mostly fail.
        world.place_tag_near(uid, phone, 0.039);
        let failures =
            (0..50).filter(|_| world.transceive(phone, uid, &[0x30, 3]).is_err()).count();
        assert!(failures > 25, "edge of field must be unreliable, saw {failures}/50 failures");
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn bad_duty_panics() {
        Scenario::new().presence_duty_cycle(
            TagUid::from_seed(1),
            PhoneId::from_u64(0),
            Duration::from_secs(1),
            0.0,
            1,
        );
    }
}
