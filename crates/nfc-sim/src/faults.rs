//! Deterministic fault injection for the simulated radio and tags.
//!
//! A [`FaultPlan`] is installed on a [`crate::world::World`] and consulted
//! once per command/response exchange. It draws from its own seeded RNG —
//! independent of the link-noise RNG — so a seed fully reproduces the
//! injected-fault schedule of a run: same seed, same exchange sequence,
//! same faults at the same exchange indices. Every injection is recorded
//! in the plan's log and counters, traced on the world's trace plane
//! ([`crate::trace::TraceEvent::FaultInjected`]), and bridged into the
//! observability stream, so tests and experiments can correlate injected
//! ground truth with middleware recovery behaviour.
//!
//! The five fault classes model what real NFC deployments see beyond
//! plain field loss:
//!
//! * [`FaultKind::RfDrop`] — the command reaches the tag and takes
//!   effect, but the response is lost on the air. The reader cannot tell
//!   this apart from a command that never arrived, which is exactly what
//!   makes naive retries non-idempotent.
//! * [`FaultKind::TornWrite`] — power is lost mid page-write: a prefix
//!   (or a mangled version) of the write lands on the tag, the rest does
//!   not.
//! * [`FaultKind::Corruption`] — the response crosses the air but a bit
//!   flips on the way.
//! * [`FaultKind::StuckTag`] — the tag stalls and never answers; the
//!   exchange burns a long dwell before failing.
//! * [`FaultKind::LatencySpike`] — the exchange succeeds but takes far
//!   longer than the link model predicts.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tag::type2;

/// One class of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Command applied, response lost: surfaces as a field loss even
    /// though the tag state already changed.
    RfDrop,
    /// Power loss mid-write: only part of the write lands on the tag.
    TornWrite,
    /// A bit of the response flips on the air.
    Corruption,
    /// The tag stalls; the exchange dwells and then fails.
    StuckTag,
    /// The exchange succeeds after an outsized delay.
    LatencySpike,
}

impl FaultKind {
    /// All fault classes, in the fixed order the injector draws them.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::RfDrop,
        FaultKind::TornWrite,
        FaultKind::Corruption,
        FaultKind::StuckTag,
        FaultKind::LatencySpike,
    ];

    /// Stable snake-case label used in traces, obs events, and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RfDrop => "rf_drop",
            FaultKind::TornWrite => "torn_write",
            FaultKind::Corruption => "corruption",
            FaultKind::StuckTag => "stuck_tag",
            FaultKind::LatencySpike => "latency_spike",
        }
    }

    /// Per-class injection counter name in the world's metrics registry
    /// (`sim.fault.<label>`). These are the ground-truth series the
    /// telemetry sampler turns into injection *rates*, scrapeable next
    /// to the middleware's recovery metrics they explain.
    pub fn metric_name(self) -> &'static str {
        match self {
            FaultKind::RfDrop => "sim.fault.rf_drop",
            FaultKind::TornWrite => "sim.fault.torn_write",
            FaultKind::Corruption => "sim.fault.corruption",
            FaultKind::StuckTag => "sim.fault.stuck_tag",
            FaultKind::LatencySpike => "sim.fault.latency_spike",
        }
    }
}

/// Per-class injection probabilities, each in `[0, 1]`, drawn
/// independently per exchange. Defaults to all zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of [`FaultKind::RfDrop`] per exchange.
    pub rf_drop: f64,
    /// Probability of [`FaultKind::TornWrite`] per write exchange.
    pub torn_write: f64,
    /// Probability of [`FaultKind::Corruption`] per exchange.
    pub corruption: f64,
    /// Probability of [`FaultKind::StuckTag`] per exchange.
    pub stuck_tag: f64,
    /// Probability of [`FaultKind::LatencySpike`] per exchange.
    pub latency_spike: f64,
}

impl FaultRates {
    /// Rates that inject only `kind`, at probability `rate` — the shape
    /// the fault matrix uses to isolate one class at a time.
    pub fn only(kind: FaultKind, rate: f64) -> FaultRates {
        let mut rates = FaultRates::default();
        match kind {
            FaultKind::RfDrop => rates.rf_drop = rate,
            FaultKind::TornWrite => rates.torn_write = rate,
            FaultKind::Corruption => rates.corruption = rate,
            FaultKind::StuckTag => rates.stuck_tag = rate,
            FaultKind::LatencySpike => rates.latency_spike = rate,
        }
        rates
    }

    /// The configured probability for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::RfDrop => self.rf_drop,
            FaultKind::TornWrite => self.torn_write,
            FaultKind::Corruption => self.corruption,
            FaultKind::StuckTag => self.stuck_tag,
            FaultKind::LatencySpike => self.latency_spike,
        }
    }
}

/// Counters of faults actually injected, by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Responses dropped after the command took effect.
    pub rf_drops: u64,
    /// Writes torn mid-operation.
    pub torn_writes: u64,
    /// Responses with a flipped bit.
    pub corruptions: u64,
    /// Stalled exchanges.
    pub stuck_tags: u64,
    /// Slow-but-successful exchanges.
    pub latency_spikes: u64,
}

impl FaultStats {
    /// The counter for one fault class.
    pub fn count(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::RfDrop => self.rf_drops,
            FaultKind::TornWrite => self.torn_writes,
            FaultKind::Corruption => self.corruptions,
            FaultKind::StuckTag => self.stuck_tags,
            FaultKind::LatencySpike => self.latency_spikes,
        }
    }

    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        FaultKind::ALL.iter().map(|k| self.count(*k)).sum()
    }

    fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::RfDrop => self.rf_drops += 1,
            FaultKind::TornWrite => self.torn_writes += 1,
            FaultKind::Corruption => self.corruptions += 1,
            FaultKind::StuckTag => self.stuck_tags += 1,
            FaultKind::LatencySpike => self.latency_spikes += 1,
        }
    }
}

/// A seeded, deterministic fault schedule.
///
/// The plan owns its RNG; [`FaultPlan::decide`] draws one boolean per
/// fault class per exchange **in a fixed order regardless of which (if
/// any) class fires**, so the RNG stream — and therefore the whole
/// schedule — is a pure function of the seed and the sequence of
/// exchanges. Two runs that issue the same exchange sequence against
/// plans with the same seed and rates see identical fault schedules.
///
/// # Examples
///
/// ```
/// use morena_nfc_sim::faults::{FaultKind, FaultPlan, FaultRates};
///
/// let mut a = FaultPlan::new(42, FaultRates::only(FaultKind::RfDrop, 0.5));
/// let mut b = FaultPlan::new(42, FaultRates::only(FaultKind::RfDrop, 0.5));
/// let schedule_a: Vec<_> = (0..32).map(|_| a.decide(false)).collect();
/// let schedule_b: Vec<_> = (0..32).map(|_| b.decide(false)).collect();
/// assert_eq!(schedule_a, schedule_b);
/// assert!(a.stats().rf_drops > 0);
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    rng: StdRng,
    rates: FaultRates,
    stall: Duration,
    spike: Duration,
    exchange: u64,
    log: Vec<(u64, FaultKind)>,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan with default dwell times (5 ms stall, 5 ms spike).
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            rates,
            stall: Duration::from_millis(5),
            spike: Duration::from_millis(5),
            exchange: 0,
            log: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Overrides the stuck-tag dwell and latency-spike delay.
    pub fn with_delays(mut self, stall: Duration, spike: Duration) -> FaultPlan {
        self.stall = stall;
        self.spike = spike;
        self
    }

    /// The per-class injection probabilities this plan was built with.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// How long a [`FaultKind::StuckTag`] exchange dwells before failing.
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// The extra delay a [`FaultKind::LatencySpike`] exchange takes.
    pub fn spike(&self) -> Duration {
        self.spike
    }

    /// Decides whether the next exchange is faulted, and how.
    ///
    /// `is_write` gates [`FaultKind::TornWrite`], which only makes sense
    /// on a write command. One boolean is drawn per class every call, in
    /// [`FaultKind::ALL`] order, so the RNG stream does not depend on
    /// the outcome; when several classes fire on the same exchange the
    /// first in that order wins.
    pub fn decide(&mut self, is_write: bool) -> Option<FaultKind> {
        let index = self.exchange;
        self.exchange += 1;
        let mut chosen = None;
        for kind in FaultKind::ALL {
            let fired = self.rng.random_bool(self.rates.rate(kind).clamp(0.0, 1.0));
            if fired && chosen.is_none() && (kind != FaultKind::TornWrite || is_write) {
                chosen = Some(kind);
            }
        }
        if let Some(kind) = chosen {
            self.stats.record(kind);
            self.log.push((index, kind));
        }
        chosen
    }

    /// Flips one RNG-chosen bit of `bytes` (no-op on an empty response).
    pub fn corrupt(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let bit = self.rng.random_range(0..bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The injected-fault schedule so far, as `(exchange index, class)`
    /// pairs — the ground truth a determinism assertion compares.
    pub fn log(&self) -> &[(u64, FaultKind)] {
        &self.log
    }
}

/// Whether `command` mutates tag memory: a Type 2 page WRITE or a Type 4
/// UPDATE BINARY.
pub fn is_write_command(command: &[u8]) -> bool {
    matches!(command, [type2::CMD_WRITE, ..])
        || matches!(command, [0x00, 0xD6, ..] if command.len() >= 5)
}

/// The torn variant of a write command: what lands on the tag when power
/// is lost mid-write. Returns `None` when nothing at all lands (the tear
/// happened before any byte was programmed).
///
/// * Type 2 page write (`A2 page d0 d1 d2 d3`): the first half of the
///   page is programmed, the second half keeps zeroes — NTAG EEPROM
///   programs a page as one unit, but an interrupted program cycle
///   leaves indeterminate cells, which zeroes model deterministically.
/// * Type 4 UPDATE BINARY (`00 D6 offH offL Lc data…`): the first half
///   of the data is written; `None` for a 1-byte payload.
pub fn torn_write_command(command: &[u8]) -> Option<Vec<u8>> {
    match command {
        [type2::CMD_WRITE, page, d0, d1, _, _] => {
            Some(vec![type2::CMD_WRITE, *page, *d0, *d1, 0, 0])
        }
        [0x00, 0xD6, off_hi, off_lo, lc, data @ ..] if *lc as usize == data.len() => {
            let half = data.len() / 2;
            if half == 0 {
                return None;
            }
            let mut torn = vec![0x00, 0xD6, *off_hi, *off_lo, half as u8];
            torn.extend_from_slice(&data[..half]);
            Some(torn)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let rates = FaultRates {
            rf_drop: 0.1,
            torn_write: 0.2,
            corruption: 0.1,
            stuck_tag: 0.05,
            latency_spike: 0.05,
        };
        let mut a = FaultPlan::new(7, rates);
        let mut b = FaultPlan::new(7, rates);
        for i in 0..200 {
            let is_write = i % 3 == 0;
            assert_eq!(a.decide(is_write), b.decide(is_write), "exchange {i}");
        }
        assert_eq!(a.log(), b.log());
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "rates this high must fire within 200 exchanges");
    }

    #[test]
    fn rng_stream_is_independent_of_is_write() {
        // The torn-write gate must not desynchronize the stream: the same
        // draws happen either way, only eligibility changes.
        let rates = FaultRates::only(FaultKind::RfDrop, 0.3);
        let mut reads_only = FaultPlan::new(9, rates);
        let mut writes_only = FaultPlan::new(9, rates);
        for _ in 0..100 {
            assert_eq!(reads_only.decide(false), writes_only.decide(true));
        }
    }

    #[test]
    fn torn_write_never_fires_on_reads() {
        let mut plan = FaultPlan::new(1, FaultRates::only(FaultKind::TornWrite, 1.0));
        assert_eq!(plan.decide(false), None);
        assert_eq!(plan.decide(true), Some(FaultKind::TornWrite));
        assert_eq!(plan.stats().torn_writes, 1);
        assert_eq!(plan.log(), &[(1, FaultKind::TornWrite)]);
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let mut plan = FaultPlan::new(3, FaultRates::default());
        let original = vec![0xAA, 0x55, 0x00, 0xFF];
        let mut corrupted = original.clone();
        plan.corrupt(&mut corrupted);
        let flipped: u32 = original.iter().zip(&corrupted).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
        let mut empty: Vec<u8> = Vec::new();
        plan.corrupt(&mut empty); // must not panic
    }

    #[test]
    fn write_commands_are_recognized() {
        assert!(is_write_command(&[0xA2, 5, 1, 2, 3, 4]));
        assert!(is_write_command(&[0x00, 0xD6, 0, 2, 3, 9, 9, 9]));
        assert!(!is_write_command(&[0x30, 4]));
        assert!(!is_write_command(&[0x00, 0xB0, 0, 0, 2]));
        assert!(!is_write_command(&[]));
    }

    #[test]
    fn torn_variants_shrink_the_write() {
        assert_eq!(torn_write_command(&[0xA2, 7, 1, 2, 3, 4]), Some(vec![0xA2, 7, 1, 2, 0, 0]));
        assert_eq!(
            torn_write_command(&[0x00, 0xD6, 0x00, 0x02, 4, 9, 8, 7, 6]),
            Some(vec![0x00, 0xD6, 0x00, 0x02, 2, 9, 8])
        );
        assert_eq!(torn_write_command(&[0x00, 0xD6, 0x00, 0x02, 1, 9]), None);
        assert_eq!(torn_write_command(&[0x30, 4]), None);
    }
}
