//! The radio-link reliability and timing model.
//!
//! NFC is slow (kilobytes per second) and fragile (tiny coupling volume):
//! the MORENA paper's premise is that *"failure is the rule instead of the
//! exception"*. This module quantifies that: every command/response
//! exchange gets a latency proportional to its size and a failure
//! probability that grows toward the edge of the field.

use std::time::Duration;

use rand::Rng;

/// Parameters of the simulated radio link.
///
/// The defaults approximate ISO 14443-A at 106 kbit/s with protocol
/// overhead: ~5 ms exchange setup plus ~100 µs per payload byte, a 1%
/// noise-failure floor at perfect coupling rising to 40% at the field
/// edge, and a 4 cm field radius.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Radius of the reader field for tag operations, in meters.
    pub nfc_range_m: f64,
    /// Radius within which two phones can beam, in meters.
    pub p2p_range_m: f64,
    /// Fixed cost of one command/response exchange.
    pub setup_latency: Duration,
    /// Additional cost per payload byte (command + response).
    pub per_byte_latency: Duration,
    /// Probability an exchange fails at distance zero.
    pub base_failure_prob: f64,
    /// Probability an exchange fails at the very edge of the field.
    pub edge_failure_prob: f64,
}

impl LinkModel {
    /// The default, realistically flaky NFC link.
    pub fn realistic() -> LinkModel {
        LinkModel {
            nfc_range_m: 0.04,
            p2p_range_m: 0.05,
            setup_latency: Duration::from_millis(5),
            per_byte_latency: Duration::from_micros(100),
            base_failure_prob: 0.01,
            edge_failure_prob: 0.40,
        }
    }

    /// A perfectly reliable link with the realistic timing — for tests
    /// that want deterministic success and true latencies.
    pub fn reliable() -> LinkModel {
        LinkModel { base_failure_prob: 0.0, edge_failure_prob: 0.0, ..LinkModel::realistic() }
    }

    /// A reliable, zero-latency link — for tests that only care about
    /// ordering and state.
    pub fn instant() -> LinkModel {
        LinkModel {
            setup_latency: Duration::ZERO,
            per_byte_latency: Duration::ZERO,
            ..LinkModel::reliable()
        }
    }

    /// A link with a uniform failure probability regardless of distance.
    pub fn with_failure_prob(p: f64) -> LinkModel {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        LinkModel { base_failure_prob: p, edge_failure_prob: p, ..LinkModel::realistic() }
    }

    /// Failure probability of one exchange at `distance` meters.
    ///
    /// Interpolates quadratically from `base_failure_prob` at contact to
    /// `edge_failure_prob` at `nfc_range_m` (coupling strength falls off
    /// superlinearly with distance). Beyond the range it is 1.0.
    pub fn failure_prob(&self, distance: f64) -> f64 {
        if distance >= self.nfc_range_m {
            return 1.0;
        }
        let x = (distance / self.nfc_range_m).clamp(0.0, 1.0);
        self.base_failure_prob + (self.edge_failure_prob - self.base_failure_prob) * x * x
    }

    /// Wall/virtual time one exchange of `bytes` payload bytes takes.
    pub fn exchange_latency(&self, bytes: usize) -> Duration {
        self.setup_latency + self.per_byte_latency.saturating_mul(bytes as u32)
    }

    /// Samples whether an exchange at `distance` fails, using `rng`.
    pub fn sample_failure<R: Rng + ?Sized>(&self, distance: f64, rng: &mut R) -> bool {
        let p = self.failure_prob(distance);
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            rng.random_bool(p)
        }
    }
}

impl Default for LinkModel {
    fn default() -> LinkModel {
        LinkModel::realistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn failure_prob_interpolates_and_saturates() {
        let m = LinkModel::realistic();
        assert_eq!(m.failure_prob(0.0), m.base_failure_prob);
        assert_eq!(m.failure_prob(1.0), 1.0);
        let mid = m.failure_prob(m.nfc_range_m / 2.0);
        assert!(mid > m.base_failure_prob && mid < m.edge_failure_prob);
        // Monotone in distance.
        let mut last = 0.0;
        for i in 0..=10 {
            let p = m.failure_prob(m.nfc_range_m * i as f64 / 10.0);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn latency_scales_with_bytes() {
        let m = LinkModel::realistic();
        let small = m.exchange_latency(2);
        let big = m.exchange_latency(1000);
        assert!(big > small);
        assert_eq!(big - small, Duration::from_micros(100).saturating_mul(998));
    }

    #[test]
    fn instant_model_is_free_and_safe() {
        let m = LinkModel::instant();
        assert_eq!(m.exchange_latency(10_000), Duration::ZERO);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!m.sample_failure(0.02, &mut rng));
        }
    }

    #[test]
    fn uniform_failure_model() {
        let m = LinkModel::with_failure_prob(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(m.sample_failure(0.0, &mut rng));
        let m = LinkModel::with_failure_prob(0.0);
        assert!(!m.sample_failure(0.039, &mut rng));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_panics() {
        LinkModel::with_failure_prob(1.5);
    }

    #[test]
    fn sampled_rate_tracks_probability() {
        let m = LinkModel::with_failure_prob(0.3);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let failures = (0..n).filter(|_| m.sample_failure(0.0, &mut rng)).count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }
}
