//! The per-phone NFC controller handle: the facade a phone's software
//! stack (the Android layer, the MORENA middleware, or a handcrafted app)
//! uses to talk to its own NFC chip.
//!
//! [`NfcHandle`] bundles a [`World`] with a [`PhoneId`] and exposes
//! events, raw transceive, complete NDEF operations (built on
//! [`crate::proto`]), and beam push.

use crossbeam::channel::Receiver;

use crate::error::{LinkError, NfcOpError};
use crate::proto::{self, NdefTagInfo, Transceive};
use crate::tag::{TagTech, TagUid};
use crate::world::{NfcEvent, PhoneId, World};

/// A phone's handle to its own NFC controller. Cheap to clone.
///
/// # Examples
///
/// ```
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::controller::NfcHandle;
/// use morena_nfc_sim::link::LinkModel;
/// use morena_nfc_sim::tag::{TagUid, Type2Tag};
/// use morena_nfc_sim::world::World;
///
/// # fn main() -> Result<(), morena_nfc_sim::error::NfcOpError> {
/// let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
/// let phone = world.add_phone("alice");
/// let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
/// world.tap_tag(uid, phone);
///
/// let nfc = NfcHandle::new(world, phone);
/// nfc.ndef_write(uid, b"stored over the air")?;
/// assert_eq!(nfc.ndef_read(uid)?, b"stored over the air");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NfcHandle {
    world: World,
    phone: PhoneId,
}

impl NfcHandle {
    /// Creates a handle for `phone` in `world`.
    pub fn new(world: World, phone: PhoneId) -> NfcHandle {
        NfcHandle { world, phone }
    }

    /// The phone this handle belongs to.
    pub fn phone(&self) -> PhoneId {
        self.phone
    }

    /// The underlying world (for scenario orchestration and clock access).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Subscribes to this phone's NFC event feed.
    pub fn events(&self) -> Receiver<NfcEvent> {
        self.world.subscribe(self.phone)
    }

    /// Tags currently in this phone's field.
    pub fn tags_in_range(&self) -> Vec<(TagUid, TagTech)> {
        self.world.tags_in_range(self.phone)
    }

    /// Whether a specific tag is currently in the field.
    pub fn tag_in_range(&self, uid: TagUid) -> bool {
        self.world.tag_in_range(self.phone, uid)
    }

    /// Peer phones currently in beam range.
    pub fn peers_in_range(&self) -> Vec<PhoneId> {
        self.world.peers_in_range(self.phone)
    }

    /// One raw command/response exchange with a tag.
    ///
    /// # Errors
    ///
    /// [`LinkError`] on radio-level failure.
    pub fn transceive(&self, uid: TagUid, command: &[u8]) -> Result<Vec<u8>, LinkError> {
        self.world.transceive(self.phone, uid, command)
    }

    /// A [`Transceive`] implementation bound to one tag, for driving the
    /// [`crate::proto`] procedures manually.
    pub fn link_to(&self, uid: TagUid) -> TagLink {
        TagLink { handle: self.clone(), uid }
    }

    fn tech_of(&self, uid: TagUid) -> Result<TagTech, NfcOpError> {
        self.tags_in_range()
            .iter()
            .find(|(u, _)| *u == uid)
            .map(|(_, tech)| *tech)
            .ok_or(NfcOpError::Link(LinkError::OutOfRange))
    }

    /// Runs NDEF detection against a tag in the field.
    ///
    /// # Errors
    ///
    /// See [`proto::detect`]; additionally [`LinkError::OutOfRange`] when
    /// the tag is not in the field at all.
    pub fn ndef_detect(&self, uid: TagUid) -> Result<NdefTagInfo, NfcOpError> {
        let tech = self.tech_of(uid)?;
        proto::detect(&mut self.link_to(uid), tech)
    }

    /// Reads the complete NDEF message bytes from a tag in the field.
    /// This is a **blocking, fallible** operation — exactly what the raw
    /// Android API exposes and what MORENA wraps asynchronously.
    ///
    /// # Errors
    ///
    /// See [`proto::read_ndef`].
    pub fn ndef_read(&self, uid: TagUid) -> Result<Vec<u8>, NfcOpError> {
        let tech = self.tech_of(uid)?;
        proto::read_ndef(&mut self.link_to(uid), tech)
    }

    /// Writes NDEF message bytes to a tag in the field (blocking,
    /// fallible; a mid-operation field loss leaves a torn tag).
    ///
    /// # Errors
    ///
    /// See [`proto::write_ndef`].
    pub fn ndef_write(&self, uid: TagUid, message: &[u8]) -> Result<(), NfcOpError> {
        let tech = self.tech_of(uid)?;
        proto::write_ndef(&mut self.link_to(uid), tech, message)
    }

    /// Permanently write-protects a tag in the field (blocking), the
    /// analog of `Ndef.makeReadOnly()`.
    ///
    /// # Errors
    ///
    /// See [`proto::make_read_only`].
    pub fn ndef_make_read_only(&self, uid: TagUid) -> Result<(), NfcOpError> {
        let tech = self.tech_of(uid)?;
        proto::make_read_only(&mut self.link_to(uid), tech)
    }

    /// Pushes raw NDEF bytes to whatever peer phones are in range.
    ///
    /// # Errors
    ///
    /// See [`World::beam`].
    pub fn beam(&self, bytes: &[u8]) -> Result<usize, LinkError> {
        self.world.beam(self.phone, bytes)
    }

    /// Pushes raw NDEF bytes to one specific peer (connection-oriented).
    ///
    /// # Errors
    ///
    /// See [`World::beam_to`].
    pub fn beam_to(&self, to: PhoneId, bytes: &[u8]) -> Result<(), LinkError> {
        self.world.beam_to(self.phone, to, bytes)
    }
}

/// A [`Transceive`] bound to `(phone, tag)` over the world's lossy link.
#[derive(Debug)]
pub struct TagLink {
    handle: NfcHandle,
    uid: TagUid,
}

impl Transceive for TagLink {
    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, LinkError> {
        self.handle.transceive(self.uid, command)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::link::LinkModel;
    use crate::tag::{Type2Tag, Type4Tag};

    fn setup() -> (World, NfcHandle, TagUid) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 3);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let handle = NfcHandle::new(world.clone(), phone);
        (world, handle, uid)
    }

    #[test]
    fn ndef_ops_round_trip_over_the_air() {
        let (world, nfc, uid) = setup();
        world.tap_tag(uid, nfc.phone());
        nfc.ndef_write(uid, b"payload").unwrap();
        assert_eq!(nfc.ndef_read(uid).unwrap(), b"payload");
        let info = nfc.ndef_detect(uid).unwrap();
        assert_eq!(info.tech, TagTech::Type2);
        assert!(info.writable);
    }

    #[test]
    fn out_of_range_tag_is_rejected_before_any_exchange() {
        let (_world, nfc, uid) = setup();
        assert_eq!(nfc.ndef_read(uid).unwrap_err(), NfcOpError::Link(LinkError::OutOfRange));
    }

    #[test]
    fn type4_tags_work_through_the_handle() {
        let (world, nfc, _t2) = setup();
        let uid = world.add_tag(Box::new(Type4Tag::new(TagUid::from_seed(2), 512)));
        world.tap_tag(uid, nfc.phone());
        nfc.ndef_write(uid, &vec![0xEE; 300]).unwrap();
        assert_eq!(nfc.ndef_read(uid).unwrap(), vec![0xEE; 300]);
    }

    #[test]
    fn events_flow_through_the_handle() {
        let (world, nfc, uid) = setup();
        let rx = nfc.events();
        world.tap_tag(uid, nfc.phone());
        assert!(matches!(rx.try_recv().unwrap(), NfcEvent::TagEntered { .. }));
        assert_eq!(nfc.tags_in_range().len(), 1);
        assert!(nfc.tag_in_range(uid));
    }

    #[test]
    fn beam_between_handles() {
        let (world, alice, _uid) = setup();
        let bob_id = world.add_phone("bob");
        let bob = NfcHandle::new(world.clone(), bob_id);
        let rx = bob.events();
        world.bring_phones_together(alice.phone(), bob_id);
        assert_eq!(alice.peers_in_range(), vec![bob_id]);
        alice.beam(b"ndef-bytes").unwrap();
        let events: Vec<NfcEvent> = rx.try_iter().collect();
        assert!(events.contains(&NfcEvent::BeamReceived {
            from: alice.phone(),
            bytes: b"ndef-bytes".to_vec()
        }));
    }
}
