//! Minimal 2D geometry for the physical world: phones and tags have
//! positions in meters; NFC coupling happens within a few centimeters.

/// A position in the simulated room, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// A point guaranteed to be outside any NFC field: "in the user's
    /// pocket on the other side of the room".
    pub fn far_away() -> Point {
        Point { x: 1.0e6, y: 1.0e6 }
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}m, {:.3}m)", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Point {
        Point { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(b.distance_to(a), 5.0);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn far_away_is_far() {
        assert!(Point::ORIGIN.distance_to(Point::far_away()) > 1.0e5);
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (1.25, 0.5).into();
        assert_eq!(p, Point::new(1.25, 0.5));
        assert_eq!(p.to_string(), "(1.250m, 0.500m)");
    }
}
