//! Tag emulators: byte-accurate models of the NFC Forum tag types that
//! NFC-enabled Android phones read and write.
//!
//! Two tag platforms are implemented, covering the two command styles in
//! the field:
//!
//! * [`Type2Tag`] — page-oriented memory tags (the NTAG21x family used for
//!   stickers and posters): `READ`/`WRITE` commands over 4-byte pages, a
//!   capability container, a TLV-structured data area, and static lock
//!   bytes.
//! * [`Type4Tag`] — smartcard-style tags: ISO 7816-4 APDUs (`SELECT`,
//!   `READ BINARY`, `UPDATE BINARY`) over a capability-container file and
//!   an NDEF file with a 2-byte length prefix.
//!
//! Emulators speak the raw command format; the reader-side procedures that
//! drive them live in [`crate::proto`]. This split lets the link layer
//! inject faults *between* commands, producing the torn intermediate
//! states real applications must survive.

/// Type 2 (page-memory) tag emulation: commands, constants, [`Type2Tag`].
pub mod type2;
/// Type 4 (APDU/file) tag emulation: status words, constants, [`Type4Tag`].
pub mod type4;

pub use type2::Type2Tag;
pub use type4::Type4Tag;

use std::any::Any;
use std::fmt;

use crate::error::TagError;

/// A 7-byte tag UID, as used by NTAG and most ISO 14443 type A tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagUid([u8; 7]);

impl TagUid {
    /// Creates a UID from raw bytes.
    pub fn new(bytes: [u8; 7]) -> TagUid {
        TagUid(bytes)
    }

    /// A deterministic UID derived from a small integer, for tests and
    /// scenarios.
    pub fn from_seed(seed: u32) -> TagUid {
        let s = seed.to_be_bytes();
        TagUid([0x04, s[0], s[1], s[2], s[3], 0xA5, 0x5A])
    }

    /// The raw UID bytes.
    pub fn as_bytes(&self) -> &[u8; 7] {
        &self.0
    }
}

impl fmt::Display for TagUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{b:02X}")?;
        }
        Ok(())
    }
}

/// The tag platform, as a reader learns it during activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagTech {
    /// NFC Forum Type 2 (page memory, e.g. NTAG21x).
    Type2,
    /// NFC Forum Type 4 (APDU / file system, e.g. DESFire in T4T mode).
    Type4,
}

impl fmt::Display for TagTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagTech::Type2 => write!(f, "Type 2"),
            TagTech::Type4 => write!(f, "Type 4"),
        }
    }
}

/// A tag emulator: consumes reader commands, mutates internal memory,
/// produces responses.
///
/// Implementations are deterministic; all nondeterminism (latency, loss)
/// is injected by the link layer above.
pub trait TagEmulator: Send + fmt::Debug {
    /// The tag's unique identifier, as read during anticollision.
    fn uid(&self) -> TagUid;

    /// The platform this emulator implements.
    fn tech(&self) -> TagTech;

    /// Processes one reader command and returns the tag response.
    ///
    /// # Errors
    ///
    /// [`TagError::NoResponse`] when the command is not recognized at all
    /// (a real tag would stay mute and the reader would time out).
    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, TagError>;

    /// Notification that the reader field disappeared: volatile session
    /// state (e.g. Type 4 file selection) resets; memory persists.
    fn on_field_lost(&mut self);

    /// Usable NDEF data-area capacity in bytes (for capacity planning and
    /// error reporting; the wire procedures discover it independently).
    fn ndef_capacity(&self) -> usize;

    /// Mutable access as [`Any`], so tests and tooling can downcast to
    /// the concrete tag model (e.g. to flip its read-only switch).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_display_is_colon_hex() {
        let uid = TagUid::new([0x04, 0xAB, 0x00, 0x01, 0x02, 0x03, 0xFF]);
        assert_eq!(uid.to_string(), "04:AB:00:01:02:03:FF");
    }

    #[test]
    fn uid_from_seed_is_deterministic_and_distinct() {
        assert_eq!(TagUid::from_seed(7), TagUid::from_seed(7));
        assert_ne!(TagUid::from_seed(7), TagUid::from_seed(8));
        assert_eq!(TagUid::from_seed(7).as_bytes()[0], 0x04);
    }

    #[test]
    fn tech_display() {
        assert_eq!(TagTech::Type2.to_string(), "Type 2");
        assert_eq!(TagTech::Type4.to_string(), "Type 4");
    }
}
