use crate::error::TagError;
use crate::tag::{TagEmulator, TagTech, TagUid};

/// The NDEF Tag Application AID selected before any file operation.
pub const NDEF_AID: [u8; 7] = [0xD2, 0x76, 0x00, 0x00, 0x85, 0x01, 0x01];
/// File identifier of the capability container file.
pub const CC_FILE_ID: u16 = 0xE103;
/// File identifier of the NDEF file used by this emulator.
pub const NDEF_FILE_ID: u16 = 0xE104;

/// Status word: success.
pub const SW_OK: [u8; 2] = [0x90, 0x00];
/// Status word: file or application not found.
pub const SW_NOT_FOUND: [u8; 2] = [0x6A, 0x82];
/// Status word: command not allowed (no file selected).
pub const SW_NOT_ALLOWED: [u8; 2] = [0x69, 0x86];
/// Status word: security status not satisfied (write to read-only file).
pub const SW_SECURITY: [u8; 2] = [0x69, 0x82];
/// Status word: wrong P1/P2 (offset outside the file).
pub const SW_WRONG_P1P2: [u8; 2] = [0x6B, 0x00];
/// Status word: wrong length.
pub const SW_WRONG_LENGTH: [u8; 2] = [0x67, 0x00];
/// Status word: instruction not supported.
pub const SW_INS_NOT_SUPPORTED: [u8; 2] = [0x6D, 0x00];

/// Maximum bytes a reader may request per `READ BINARY` (MLe).
pub const MAX_READ_LEN: usize = 0x00F6;
/// Maximum bytes a reader may send per `UPDATE BINARY` (MLc).
pub const MAX_WRITE_LEN: usize = 0x00F6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SelectedFile {
    None,
    Cc,
    Ndef,
}

/// An NFC Forum **Type 4** tag emulator: an ISO 7816-4 smartcard
/// application holding a capability-container file and an NDEF file.
///
/// Supported APDUs (the complete Type 4 Tag operation set):
///
/// * `SELECT` by AID (`00 A4 04 00`) — the NDEF Tag Application.
/// * `SELECT` by file id (`00 A4 00 0C`) — CC file or NDEF file.
/// * `READ BINARY` (`00 B0 offset le`).
/// * `UPDATE BINARY` (`00 D6 offset lc data`).
///
/// The NDEF file stores a 2-byte big-endian length (NLEN) followed by the
/// message bytes; writers zero NLEN before rewriting content, so a write
/// torn by field loss leaves a *consistently empty* tag rather than
/// garbage — behaviour the middleware's retry logic can rely on.
///
/// # Examples
///
/// ```
/// use morena_nfc_sim::tag::{TagEmulator, TagUid, Type4Tag};
///
/// let mut tag = Type4Tag::new(TagUid::from_seed(9), 2048);
/// let select_app = [0x00, 0xA4, 0x04, 0x00, 0x07,
///                   0xD2, 0x76, 0x00, 0x00, 0x85, 0x01, 0x01, 0x00];
/// assert_eq!(tag.transceive(&select_app).unwrap(), vec![0x90, 0x00]);
/// ```
#[derive(Debug, Clone)]
pub struct Type4Tag {
    uid: TagUid,
    ndef_file: Vec<u8>,
    app_selected: bool,
    selected: SelectedFile,
    read_only: bool,
    formatted: bool,
}

impl Type4Tag {
    /// Creates a formatted, blank Type 4 tag whose NDEF file (including
    /// the 2-byte NLEN prefix) is `ndef_file_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `ndef_file_size` is smaller than 7 bytes (NLEN plus room
    /// for the smallest NDEF message) or larger than `0x7FFF` (the Type 4
    /// mapping's maximum).
    pub fn new(uid: TagUid, ndef_file_size: usize) -> Type4Tag {
        assert!((7..=0x7FFF).contains(&ndef_file_size), "invalid NDEF file size");
        Type4Tag {
            uid,
            ndef_file: vec![0; ndef_file_size],
            app_selected: false,
            selected: SelectedFile::None,
            read_only: false,
            formatted: true,
        }
    }

    /// The tag's UID.
    pub fn uid(&self) -> TagUid {
        self.uid
    }

    /// Marks the NDEF file read-only (write access byte `FF` in the CC).
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Whether the NDEF file rejects updates.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Makes the tag present no NDEF application (factory, unformatted).
    pub fn unformat(&mut self) {
        self.formatted = false;
    }

    /// Direct snapshot of the NDEF file, for tests asserting on torn
    /// intermediate states.
    pub fn ndef_file(&self) -> &[u8] {
        &self.ndef_file
    }

    fn cc_file(&self) -> Vec<u8> {
        let max_ndef = self.ndef_file.len() as u16;
        let write_access = if self.read_only { 0xFF } else { 0x00 };
        let mut cc = Vec::with_capacity(15);
        cc.extend_from_slice(&15u16.to_be_bytes()); // CCLEN
        cc.push(0x20); // mapping version 2.0
        cc.extend_from_slice(&(MAX_READ_LEN as u16).to_be_bytes()); // MLe
        cc.extend_from_slice(&(MAX_WRITE_LEN as u16).to_be_bytes()); // MLc
        cc.push(0x04); // NDEF File Control TLV
        cc.push(0x06);
        cc.extend_from_slice(&NDEF_FILE_ID.to_be_bytes());
        cc.extend_from_slice(&max_ndef.to_be_bytes());
        cc.push(0x00); // read access: open
        cc.push(write_access);
        cc
    }

    fn handle_select(&mut self, p1: u8, p2: u8, data: &[u8]) -> Vec<u8> {
        match (p1, p2) {
            (0x04, 0x00) => {
                if self.formatted && data == NDEF_AID {
                    self.app_selected = true;
                    self.selected = SelectedFile::None;
                    SW_OK.to_vec()
                } else {
                    SW_NOT_FOUND.to_vec()
                }
            }
            (0x00, 0x0C) => {
                if !self.app_selected || data.len() != 2 {
                    return SW_NOT_FOUND.to_vec();
                }
                let fid = u16::from_be_bytes([data[0], data[1]]);
                match fid {
                    x if x == CC_FILE_ID => {
                        self.selected = SelectedFile::Cc;
                        SW_OK.to_vec()
                    }
                    x if x == NDEF_FILE_ID => {
                        self.selected = SelectedFile::Ndef;
                        SW_OK.to_vec()
                    }
                    _ => SW_NOT_FOUND.to_vec(),
                }
            }
            _ => SW_WRONG_P1P2.to_vec(),
        }
    }

    fn handle_read(&self, offset: usize, le: usize) -> Vec<u8> {
        let file: Vec<u8> = match self.selected {
            SelectedFile::None => return SW_NOT_ALLOWED.to_vec(),
            SelectedFile::Cc => self.cc_file(),
            SelectedFile::Ndef => self.ndef_file.clone(),
        };
        if le > MAX_READ_LEN {
            return SW_WRONG_LENGTH.to_vec();
        }
        if offset > file.len() {
            return SW_WRONG_P1P2.to_vec();
        }
        let end = (offset + le).min(file.len());
        let mut resp = file[offset..end].to_vec();
        resp.extend_from_slice(&SW_OK);
        resp
    }

    fn handle_update(&mut self, offset: usize, data: &[u8]) -> Vec<u8> {
        match self.selected {
            SelectedFile::None => SW_NOT_ALLOWED.to_vec(),
            SelectedFile::Cc => {
                // The one writable CC byte: write access. Setting it to
                // 0xFF makes the tag permanently read-only over the air
                // (the `makeReadOnly` path); anything else is refused.
                if offset == 14 && data == [0xFF] {
                    self.read_only = true;
                    SW_OK.to_vec()
                } else {
                    SW_NOT_ALLOWED.to_vec()
                }
            }
            SelectedFile::Ndef => {
                if self.read_only {
                    return SW_SECURITY.to_vec();
                }
                if data.len() > MAX_WRITE_LEN {
                    return SW_WRONG_LENGTH.to_vec();
                }
                if offset + data.len() > self.ndef_file.len() {
                    return SW_WRONG_P1P2.to_vec();
                }
                self.ndef_file[offset..offset + data.len()].copy_from_slice(data);
                SW_OK.to_vec()
            }
        }
    }
}

impl TagEmulator for Type4Tag {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn uid(&self) -> TagUid {
        self.uid
    }

    fn tech(&self) -> TagTech {
        TagTech::Type4
    }

    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, TagError> {
        // ISO 7816-4 short APDU: CLA INS P1 P2 [Lc data] [Le]
        if command.len() < 4 {
            return Err(TagError::NoResponse);
        }
        let (cla, ins, p1, p2) = (command[0], command[1], command[2], command[3]);
        if cla != 0x00 {
            return Ok(SW_INS_NOT_SUPPORTED.to_vec());
        }
        let body = &command[4..];
        match ins {
            0xA4 => {
                // SELECT: Lc data [Le]
                let Some((&lc, rest)) = body.split_first() else {
                    return Ok(SW_WRONG_LENGTH.to_vec());
                };
                let lc = lc as usize;
                if rest.len() < lc {
                    return Ok(SW_WRONG_LENGTH.to_vec());
                }
                Ok(self.handle_select(p1, p2, &rest[..lc]))
            }
            0xB0 => {
                // READ BINARY: offset in P1P2, Le in body (0 => 256).
                let offset = u16::from_be_bytes([p1, p2]) as usize;
                let le = match body {
                    [] => return Ok(SW_WRONG_LENGTH.to_vec()),
                    [0] => 256,
                    [le] => *le as usize,
                    _ => return Ok(SW_WRONG_LENGTH.to_vec()),
                };
                Ok(self.handle_read(offset, le))
            }
            0xD6 => {
                // UPDATE BINARY: offset in P1P2, Lc + data.
                let Some((&lc, rest)) = body.split_first() else {
                    return Ok(SW_WRONG_LENGTH.to_vec());
                };
                let lc = lc as usize;
                if rest.len() != lc {
                    return Ok(SW_WRONG_LENGTH.to_vec());
                }
                let offset = u16::from_be_bytes([p1, p2]) as usize;
                Ok(self.handle_update(offset, rest))
            }
            _ => Ok(SW_INS_NOT_SUPPORTED.to_vec()),
        }
    }

    fn on_field_lost(&mut self) {
        // Selection state is volatile; file contents persist.
        self.app_selected = false;
        self.selected = SelectedFile::None;
    }

    fn ndef_capacity(&self) -> usize {
        self.ndef_file.len() - 2 // minus the NLEN prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_app_apdu() -> Vec<u8> {
        let mut apdu = vec![0x00, 0xA4, 0x04, 0x00, 0x07];
        apdu.extend_from_slice(&NDEF_AID);
        apdu.push(0x00);
        apdu
    }

    fn select_file_apdu(fid: u16) -> Vec<u8> {
        let fid = fid.to_be_bytes();
        vec![0x00, 0xA4, 0x00, 0x0C, 0x02, fid[0], fid[1]]
    }

    fn read_apdu(offset: u16, le: u8) -> Vec<u8> {
        let o = offset.to_be_bytes();
        vec![0x00, 0xB0, o[0], o[1], le]
    }

    fn update_apdu(offset: u16, data: &[u8]) -> Vec<u8> {
        let o = offset.to_be_bytes();
        let mut apdu = vec![0x00, 0xD6, o[0], o[1], data.len() as u8];
        apdu.extend_from_slice(data);
        apdu
    }

    fn tag() -> Type4Tag {
        Type4Tag::new(TagUid::from_seed(7), 512)
    }

    #[test]
    fn full_select_read_cc_flow() {
        let mut t = tag();
        assert_eq!(t.transceive(&select_app_apdu()).unwrap(), SW_OK.to_vec());
        assert_eq!(t.transceive(&select_file_apdu(CC_FILE_ID)).unwrap(), SW_OK.to_vec());
        let resp = t.transceive(&read_apdu(0, 15)).unwrap();
        assert_eq!(&resp[resp.len() - 2..], &SW_OK);
        let cc = &resp[..15];
        assert_eq!(cc[2], 0x20); // mapping version
        assert_eq!(u16::from_be_bytes([cc[9], cc[10]]), NDEF_FILE_ID);
        assert_eq!(u16::from_be_bytes([cc[11], cc[12]]), 512);
        assert_eq!(cc[14], 0x00); // writable
    }

    #[test]
    fn write_then_read_ndef_file() {
        let mut t = tag();
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap();
        assert_eq!(t.transceive(&update_apdu(2, b"hello")).unwrap(), SW_OK.to_vec());
        assert_eq!(t.transceive(&update_apdu(0, &5u16.to_be_bytes())).unwrap(), SW_OK.to_vec());
        let resp = t.transceive(&read_apdu(0, 7)).unwrap();
        assert_eq!(&resp[..2], &5u16.to_be_bytes());
        assert_eq!(&resp[2..7], b"hello");
    }

    #[test]
    fn operations_require_selection_order() {
        let mut t = tag();
        // Read before any select.
        assert_eq!(t.transceive(&read_apdu(0, 4)).unwrap(), SW_NOT_ALLOWED.to_vec());
        // File select before app select fails.
        assert_eq!(t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap(), SW_NOT_FOUND.to_vec());
        // Update with CC selected is not allowed.
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(CC_FILE_ID)).unwrap();
        assert_eq!(t.transceive(&update_apdu(0, b"x")).unwrap(), SW_NOT_ALLOWED.to_vec());
    }

    #[test]
    fn field_loss_resets_selection_but_keeps_data() {
        let mut t = tag();
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap();
        t.transceive(&update_apdu(2, b"persist")).unwrap();
        t.on_field_lost();
        assert_eq!(t.transceive(&read_apdu(0, 4)).unwrap(), SW_NOT_ALLOWED.to_vec());
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap();
        let resp = t.transceive(&read_apdu(2, 7)).unwrap();
        assert_eq!(&resp[..7], b"persist");
    }

    #[test]
    fn read_only_rejects_updates_and_cc_reflects_it() {
        let mut t = tag();
        t.set_read_only(true);
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap();
        assert_eq!(t.transceive(&update_apdu(0, b"x")).unwrap(), SW_SECURITY.to_vec());
        t.transceive(&select_file_apdu(CC_FILE_ID)).unwrap();
        let resp = t.transceive(&read_apdu(0, 15)).unwrap();
        assert_eq!(resp[14], 0xFF);
    }

    #[test]
    fn unformatted_tag_hides_application() {
        let mut t = tag();
        t.unformat();
        assert_eq!(t.transceive(&select_app_apdu()).unwrap(), SW_NOT_FOUND.to_vec());
    }

    #[test]
    fn bounds_and_length_errors() {
        let mut t = tag();
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap();
        // Offset beyond the file.
        assert_eq!(t.transceive(&read_apdu(600, 4)).unwrap(), SW_WRONG_P1P2.to_vec());
        assert_eq!(t.transceive(&update_apdu(510, b"abc")).unwrap(), SW_WRONG_P1P2.to_vec());
        // Truncated APDUs.
        assert_eq!(t.transceive(&[0x00, 0xB0, 0, 0]).unwrap(), SW_WRONG_LENGTH.to_vec());
        assert_eq!(t.transceive(&[0x00, 0xD6, 0, 0, 5, 1, 2]).unwrap(), SW_WRONG_LENGTH.to_vec());
        // Too-short frame gets no response at all.
        assert_eq!(t.transceive(&[0x00, 0xB0]), Err(TagError::NoResponse));
    }

    #[test]
    fn wrong_class_and_instruction() {
        let mut t = tag();
        assert_eq!(t.transceive(&[0x80, 0xA4, 0, 0]).unwrap(), SW_INS_NOT_SUPPORTED.to_vec());
        assert_eq!(t.transceive(&[0x00, 0xEE, 0, 0]).unwrap(), SW_INS_NOT_SUPPORTED.to_vec());
    }

    #[test]
    fn le_zero_means_256() {
        let mut t = Type4Tag::new(TagUid::from_seed(1), 400);
        t.transceive(&select_app_apdu()).unwrap();
        t.transceive(&select_file_apdu(NDEF_FILE_ID)).unwrap();
        let resp = t.transceive(&read_apdu(0, 0)).unwrap();
        // 256 requested but MLe is 0xF6=246... 256 > MAX_READ_LEN -> wrong length
        assert_eq!(resp, SW_WRONG_LENGTH.to_vec());
        let resp = t.transceive(&read_apdu(0, 0xF6)).unwrap();
        assert_eq!(resp.len(), 0xF6 + 2);
    }

    #[test]
    fn capacity_excludes_nlen() {
        assert_eq!(tag().ndef_capacity(), 510);
    }

    #[test]
    #[should_panic(expected = "invalid NDEF file size")]
    fn tiny_file_panics() {
        Type4Tag::new(TagUid::from_seed(0), 4);
    }
}
