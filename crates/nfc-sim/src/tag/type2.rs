use crate::error::TagError;
use crate::tag::{TagEmulator, TagTech, TagUid};

/// Type 2 command: read 16 bytes (4 pages) starting at a page address.
pub const CMD_READ: u8 = 0x30;
/// Type 2 command: write one 4-byte page.
pub const CMD_WRITE: u8 = 0xA2;
/// NTAG command: read an inclusive page range in one exchange.
pub const CMD_FAST_READ: u8 = 0x3A;
/// Positive acknowledge (4-bit ACK, conventionally reported as `0x0A`).
pub const ACK: u8 = 0x0A;
/// Negative acknowledge.
pub const NAK: u8 = 0x00;

/// NDEF magic number stored in the first byte of the capability container.
pub const CC_MAGIC: u8 = 0xE1;
/// Mapping version 1.0 in the capability container.
pub const CC_VERSION: u8 = 0x10;

const PAGE_SIZE: usize = 4;
/// First data-area page (pages 0–2 are UID/lock, page 3 is the CC).
const DATA_START_PAGE: usize = 4;

/// An NFC Forum **Type 2** tag emulator: a page-addressed EEPROM in the
/// style of the NTAG21x family.
///
/// Memory layout (pages of 4 bytes):
///
/// | Pages | Content |
/// |---|---|
/// | 0–1 | UID (7 bytes + BCC) |
/// | 2 | internal byte + static lock bytes (bytes 2–3) |
/// | 3 | capability container `E1 10 size/8 access` |
/// | 4… | TLV-structured data area (`03 len NDEF … FE`) |
///
/// Static lock bits write-protect pages 3–15 per the Type 2 mapping:
/// lock byte 0 bits 3–7 cover pages 3–7, lock byte 1 bits 0–7 cover pages
/// 8–15. (Dynamic lock bytes of larger NTAGs are not modeled; locking the
/// whole tag is done through [`Type2Tag::set_read_only`].)
///
/// # Examples
///
/// ```
/// use morena_nfc_sim::tag::{TagEmulator, TagUid, Type2Tag};
///
/// let mut tag = Type2Tag::ntag215(TagUid::from_seed(1));
/// // READ page 3 returns the capability container in the first 4 bytes.
/// let resp = tag.transceive(&[0x30, 3]).unwrap();
/// assert_eq!(resp[0], 0xE1);
/// ```
#[derive(Debug, Clone)]
pub struct Type2Tag {
    uid: TagUid,
    pages: Vec<[u8; PAGE_SIZE]>,
}

impl Type2Tag {
    /// Creates a tag with `total_pages` pages of 4 bytes, NDEF-formatted
    /// and blank.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages < 6` (no room for header, CC, and any data)
    /// or if the data area exceeds the CC's `size/8` encoding (2040 bytes).
    pub fn with_pages(uid: TagUid, total_pages: usize) -> Type2Tag {
        assert!(total_pages >= 6, "a Type 2 tag needs at least 6 pages");
        let data_bytes = (total_pages - DATA_START_PAGE) * PAGE_SIZE;
        assert!(data_bytes <= 255 * 8, "data area too large for the CC size byte");
        let mut tag = Type2Tag { uid, pages: vec![[0; PAGE_SIZE]; total_pages] };
        // UID layout per NTAG: pages 0-1 + BCC bytes; approximate faithfully
        // enough for readers that only use the anticollision UID.
        let u = uid.as_bytes();
        tag.pages[0] = [u[0], u[1], u[2], u[0] ^ u[1] ^ u[2] ^ 0x88];
        tag.pages[1] = [u[3], u[4], u[5], u[6]];
        tag.pages[2] = [0x00, 0x48, 0x00, 0x00]; // internal + lock bytes clear
        tag.format_ndef();
        tag
    }

    /// An NTAG213: 144-byte data area (36 data pages + header).
    pub fn ntag213(uid: TagUid) -> Type2Tag {
        Type2Tag::with_pages(uid, DATA_START_PAGE + 36)
    }

    /// An NTAG215: 504-byte data area.
    pub fn ntag215(uid: TagUid) -> Type2Tag {
        Type2Tag::with_pages(uid, DATA_START_PAGE + 126)
    }

    /// An NTAG216: 888-byte data area.
    pub fn ntag216(uid: TagUid) -> Type2Tag {
        Type2Tag::with_pages(uid, DATA_START_PAGE + 222)
    }

    /// The tag's UID.
    pub fn uid(&self) -> TagUid {
        self.uid
    }

    /// Size of the data area (TLV area) in bytes.
    pub fn data_area_len(&self) -> usize {
        (self.pages.len() - DATA_START_PAGE) * PAGE_SIZE
    }

    /// (Re)writes the capability container and an empty NDEF TLV,
    /// producing a formatted, blank, writable tag.
    pub fn format_ndef(&mut self) {
        let size_byte = (self.data_area_len() / 8) as u8;
        self.pages[3] = [CC_MAGIC, CC_VERSION, size_byte, 0x00];
        // Empty NDEF TLV followed by terminator.
        self.pages[DATA_START_PAGE] = [0x03, 0x00, 0xFE, 0x00];
        for page in self.pages[DATA_START_PAGE + 1..].iter_mut() {
            *page = [0; PAGE_SIZE];
        }
    }

    /// Wipes the CC so the tag reads as *not NDEF formatted*.
    pub fn unformat(&mut self) {
        self.pages[3] = [0; PAGE_SIZE];
    }

    /// Directly sets or clears write protection (the CC write-access
    /// nibble) — a provisioning/test helper that bypasses the radio.
    /// Over the air, protection is applied with
    /// [`crate::proto::make_read_only`] and is **permanent**, as on real
    /// tags.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.pages[3][3] = if read_only { 0x0F } else { 0x00 };
    }

    /// Whether the tag currently rejects writes (CC write access nibble).
    pub fn is_read_only(&self) -> bool {
        self.pages[3][3] & 0x0F != 0
    }

    /// Direct snapshot of the raw data area, for tests asserting on torn
    /// intermediate states.
    pub fn data_area(&self) -> Vec<u8> {
        self.pages[DATA_START_PAGE..].iter().flatten().copied().collect()
    }

    fn page_locked(&self, page: usize) -> bool {
        if self.is_read_only() {
            return page >= 3;
        }
        let lock0 = self.pages[2][2];
        let lock1 = self.pages[2][3];
        match page {
            3..=7 => lock0 & (1 << (page - 3 + 3)) != 0,
            8..=15 => lock1 & (1 << (page - 8)) != 0,
            _ => false,
        }
    }

    fn read16(&self, start: usize) -> Vec<u8> {
        // Type 2 READ wraps around the end of memory, like real silicon.
        let mut out = Vec::with_capacity(16);
        for i in 0..4 {
            let page = (start + i) % self.pages.len();
            out.extend_from_slice(&self.pages[page]);
        }
        out
    }
}

impl TagEmulator for Type2Tag {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn uid(&self) -> TagUid {
        self.uid
    }

    fn tech(&self) -> TagTech {
        TagTech::Type2
    }

    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, TagError> {
        match command {
            [CMD_READ, addr] => {
                let addr = *addr as usize;
                if addr >= self.pages.len() {
                    return Ok(vec![NAK]);
                }
                Ok(self.read16(addr))
            }
            [CMD_FAST_READ, start, end] => {
                let (start, end) = (*start as usize, *end as usize);
                if start > end || end >= self.pages.len() {
                    return Ok(vec![NAK]);
                }
                let mut out = Vec::with_capacity((end - start + 1) * PAGE_SIZE);
                for page in start..=end {
                    out.extend_from_slice(&self.pages[page]);
                }
                Ok(out)
            }
            [CMD_WRITE, addr, d0, d1, d2, d3] => {
                let addr = *addr as usize;
                if addr >= self.pages.len() || addr < 2 {
                    return Ok(vec![NAK]);
                }
                if self.page_locked(addr) {
                    return Ok(vec![NAK]);
                }
                if addr == 2 {
                    // Lock bytes are OR-writable only (bits can be set,
                    // never cleared), like real OTP lock bits.
                    self.pages[2][2] |= d2;
                    self.pages[2][3] |= d3;
                    let _ = (d0, d1); // internal bytes ignore writes
                } else {
                    self.pages[addr] = [*d0, *d1, *d2, *d3];
                }
                Ok(vec![ACK])
            }
            _ => Err(TagError::NoResponse),
        }
    }

    fn on_field_lost(&mut self) {
        // Type 2 tags keep no volatile session state.
    }

    fn ndef_capacity(&self) -> usize {
        // Usable NDEF payload: data area minus TLV framing (T, L, terminator).
        // Short length form (payload <= 254) costs 3 bytes, long form 5.
        let area = self.data_area_len();
        let short = area.saturating_sub(3).min(0xFE);
        let long = area.saturating_sub(5);
        short.max(long)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> Type2Tag {
        Type2Tag::ntag213(TagUid::from_seed(42))
    }

    #[test]
    fn fresh_tag_has_cc_and_empty_ndef_tlv() {
        let mut t = tag();
        let cc = t.transceive(&[CMD_READ, 3]).unwrap();
        assert_eq!(&cc[..4], &[0xE1, 0x10, 144 / 8, 0x00]);
        // Data area starts with the empty NDEF TLV.
        assert_eq!(&cc[4..7], &[0x03, 0x00, 0xFE]);
    }

    #[test]
    fn read_returns_16_bytes_and_wraps() {
        let mut t = tag();
        let last = t.pages.len() - 1;
        let resp = t.transceive(&[CMD_READ, last as u8]).unwrap();
        assert_eq!(resp.len(), 16);
        // Wrapped portion equals pages 0..3.
        assert_eq!(&resp[4..8], &t.pages[0]);
    }

    #[test]
    fn fast_read_returns_inclusive_range() {
        let mut t = tag();
        t.transceive(&[CMD_WRITE, 5, 9, 8, 7, 6]).unwrap();
        let resp = t.transceive(&[CMD_FAST_READ, 4, 6]).unwrap();
        assert_eq!(resp.len(), 12);
        assert_eq!(&resp[4..8], &[9, 8, 7, 6]);
        // Single page.
        assert_eq!(t.transceive(&[CMD_FAST_READ, 5, 5]).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn fast_read_rejects_bad_ranges() {
        let mut t = tag();
        assert_eq!(t.transceive(&[CMD_FAST_READ, 6, 4]).unwrap(), vec![NAK]);
        assert_eq!(t.transceive(&[CMD_FAST_READ, 0, 200]).unwrap(), vec![NAK]);
    }

    #[test]
    fn read_out_of_range_naks() {
        let mut t = tag();
        let resp = t.transceive(&[CMD_READ, 200]).unwrap();
        assert_eq!(resp, vec![NAK]);
    }

    #[test]
    fn write_and_read_back() {
        let mut t = tag();
        assert_eq!(t.transceive(&[CMD_WRITE, 5, 1, 2, 3, 4]).unwrap(), vec![ACK]);
        let resp = t.transceive(&[CMD_READ, 5]).unwrap();
        assert_eq!(&resp[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn writes_to_header_pages_nak() {
        let mut t = tag();
        assert_eq!(t.transceive(&[CMD_WRITE, 0, 0, 0, 0, 0]).unwrap(), vec![NAK]);
        assert_eq!(t.transceive(&[CMD_WRITE, 1, 0, 0, 0, 0]).unwrap(), vec![NAK]);
    }

    #[test]
    fn lock_bits_are_otp_and_protect_pages() {
        let mut t = tag();
        // Set lock bit for page 4 (lock byte 0, bit 4).
        assert_eq!(t.transceive(&[CMD_WRITE, 2, 0, 0, 1 << 4, 0]).unwrap(), vec![ACK]);
        assert_eq!(t.transceive(&[CMD_WRITE, 4, 9, 9, 9, 9]).unwrap(), vec![NAK]);
        // Page 5 still writable.
        assert_eq!(t.transceive(&[CMD_WRITE, 5, 9, 9, 9, 9]).unwrap(), vec![ACK]);
        // Attempting to clear lock bits has no effect (OR semantics).
        assert_eq!(t.transceive(&[CMD_WRITE, 2, 0, 0, 0, 0]).unwrap(), vec![ACK]);
        assert_eq!(t.transceive(&[CMD_WRITE, 4, 9, 9, 9, 9]).unwrap(), vec![NAK]);
    }

    #[test]
    fn lock_byte_1_covers_pages_8_to_15() {
        let mut t = tag();
        assert_eq!(t.transceive(&[CMD_WRITE, 2, 0, 0, 0, 1 << 2]).unwrap(), vec![ACK]);
        assert_eq!(t.transceive(&[CMD_WRITE, 10, 1, 1, 1, 1]).unwrap(), vec![NAK]);
        assert_eq!(t.transceive(&[CMD_WRITE, 11, 1, 1, 1, 1]).unwrap(), vec![ACK]);
    }

    #[test]
    fn read_only_tag_naks_all_data_writes() {
        let mut t = tag();
        t.set_read_only(true);
        assert!(t.is_read_only());
        assert_eq!(t.transceive(&[CMD_WRITE, 7, 1, 1, 1, 1]).unwrap(), vec![NAK]);
        // CC access nibble reflects read-only state.
        let cc = t.transceive(&[CMD_READ, 3]).unwrap();
        assert_eq!(cc[3], 0x0F);
        t.set_read_only(false);
        assert_eq!(t.transceive(&[CMD_WRITE, 7, 1, 1, 1, 1]).unwrap(), vec![ACK]);
    }

    #[test]
    fn unknown_commands_get_no_response() {
        let mut t = tag();
        assert_eq!(t.transceive(&[0x99, 1, 2]), Err(TagError::NoResponse));
        assert_eq!(t.transceive(&[]), Err(TagError::NoResponse));
        assert_eq!(t.transceive(&[CMD_WRITE, 5, 1]), Err(TagError::NoResponse));
    }

    #[test]
    fn capacity_accounts_for_tlv_overhead() {
        let t213 = Type2Tag::ntag213(TagUid::from_seed(1));
        assert_eq!(t213.data_area_len(), 144);
        assert_eq!(t213.ndef_capacity(), 141); // short TLV form
        let t216 = Type2Tag::ntag216(TagUid::from_seed(2));
        assert_eq!(t216.data_area_len(), 888);
        assert_eq!(t216.ndef_capacity(), 883); // long TLV form
    }

    #[test]
    fn unformat_clears_cc() {
        let mut t = tag();
        t.unformat();
        let cc = t.transceive(&[CMD_READ, 3]).unwrap();
        assert_eq!(&cc[..4], &[0, 0, 0, 0]);
    }

    #[test]
    fn model_sizes_match_datasheets() {
        assert_eq!(Type2Tag::ntag213(TagUid::from_seed(0)).data_area_len(), 144);
        assert_eq!(Type2Tag::ntag215(TagUid::from_seed(0)).data_area_len(), 504);
        assert_eq!(Type2Tag::ntag216(TagUid::from_seed(0)).data_area_len(), 888);
    }

    #[test]
    #[should_panic(expected = "at least 6 pages")]
    fn too_small_tag_panics() {
        Type2Tag::with_pages(TagUid::from_seed(0), 5);
    }
}
