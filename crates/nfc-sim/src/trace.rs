//! World tracing: a timestamped record of everything that physically
//! happened — taps, departures, exchanges, beams — for debugging
//! middleware behaviour and for experiments that need ground truth
//! beyond aggregate [`crate::world::RadioStats`].
//!
//! Tracing is off by default (zero overhead beyond an atomic check);
//! [`crate::world::World::enable_trace`] switches it on with a bounded
//! buffer (oldest entries are dropped first).

use std::collections::VecDeque;

use crate::clock::SimInstant;
use crate::tag::TagUid;
use crate::world::PhoneId;

/// One traced physical event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A tag entered a phone's field.
    TagEntered {
        /// The phone.
        phone: PhoneId,
        /// The tag.
        uid: TagUid,
    },
    /// A tag left a phone's field.
    TagLeft {
        /// The phone.
        phone: PhoneId,
        /// The tag.
        uid: TagUid,
    },
    /// A command/response exchange completed or failed.
    Exchange {
        /// The reader phone.
        phone: PhoneId,
        /// The tag addressed.
        uid: TagUid,
        /// First command byte (the opcode), when present.
        opcode: Option<u8>,
        /// Whether the exchange delivered a response.
        ok: bool,
    },
    /// A beam push was attempted.
    Beam {
        /// The sending phone.
        from: PhoneId,
        /// Bytes pushed.
        bytes: usize,
        /// Peers reached (0 = failed).
        delivered: usize,
    },
    /// The fault injector fired on an exchange (ground truth for tests
    /// correlating injected faults with observed middleware behaviour).
    FaultInjected {
        /// The reader phone.
        phone: PhoneId,
        /// The tag addressed.
        uid: TagUid,
        /// Stable label of the injected fault class.
        fault: &'static str,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened (world clock).
    pub at: SimInstant,
    /// What happened.
    pub event: TraceEvent,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ", self.at)?;
        match &self.event {
            TraceEvent::TagEntered { phone, uid } => write!(f, "{phone} sees {uid}"),
            TraceEvent::TagLeft { phone, uid } => write!(f, "{phone} loses {uid}"),
            TraceEvent::Exchange { phone, uid, opcode, ok } => {
                let op = opcode.map(|o| format!("{o:#04x}")).unwrap_or_else(|| "-".into());
                write!(f, "{phone} <-> {uid} cmd {op} {}", if *ok { "ok" } else { "FAIL" })
            }
            TraceEvent::Beam { from, bytes, delivered } => {
                write!(f, "{from} beams {bytes}B to {delivered} peer(s)")
            }
            TraceEvent::FaultInjected { phone, uid, fault } => {
                write!(f, "{phone} !! {uid} fault {fault}")
            }
        }
    }
}

/// A bounded in-memory trace buffer.
#[derive(Debug)]
pub(crate) struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    pub(crate) fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer { entries: VecDeque::with_capacity(capacity.min(1024)), capacity, dropped: 0 }
    }

    pub(crate) fn push(&mut self, at: SimInstant, event: TraceEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, event });
    }

    pub(crate) fn snapshot(&self) -> (Vec<TraceEntry>, u64) {
        (self.entries.iter().cloned().collect(), self.dropped)
    }

    /// Entries silently discarded because the bounded buffer was full.
    pub(crate) fn dropped_entries(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_bounded_and_counts_drops() {
        let mut buffer = TraceBuffer::new(2);
        for i in 0..5u32 {
            buffer.push(
                SimInstant::from_nanos(i as u64),
                TraceEvent::Beam { from: PhoneId::from_u64(0), bytes: i as usize, delivered: 1 },
            );
        }
        let (entries, dropped) = buffer.snapshot();
        assert_eq!(entries.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(buffer.dropped_entries(), 3);
        assert_eq!(entries[0].at, SimInstant::from_nanos(3));
        assert_eq!(entries[1].at, SimInstant::from_nanos(4));
    }

    #[test]
    fn entries_render_readably() {
        let phone = PhoneId::from_u64(1);
        let uid = TagUid::from_seed(7);
        let cases = [
            TraceEvent::TagEntered { phone, uid },
            TraceEvent::TagLeft { phone, uid },
            TraceEvent::Exchange { phone, uid, opcode: Some(0x30), ok: true },
            TraceEvent::Exchange { phone, uid, opcode: None, ok: false },
            TraceEvent::Beam { from: phone, bytes: 12, delivered: 0 },
            TraceEvent::FaultInjected { phone, uid, fault: "torn_write" },
        ];
        for event in cases {
            let entry = TraceEntry { at: SimInstant::from_nanos(1_000_000), event };
            let rendered = entry.to_string();
            assert!(rendered.starts_with("t+0.001s"), "{rendered}");
            assert!(rendered.len() > 10);
        }
    }
}
