//! Reader-side NDEF procedures: the command sequences a phone's NFC stack
//! executes against a tag to detect the NDEF application, read the stored
//! message, and write a new one.
//!
//! The procedures are written against the [`Transceive`] trait so the same
//! code drives a directly-connected emulator (unit tests), the simulated
//! radio link (which injects loss and latency between commands), or any
//! future transport. Because a write is *many* commands, a mid-operation
//! field loss leaves the tag in a realistic torn state.

use crate::error::{LinkError, NfcOpError, TagError};
use crate::tag::{type2, type4, TagEmulator, TagTech};

/// A single command/response exchange with a tag.
///
/// Generic reader/writer-style functions in this module take
/// `&mut impl Transceive`; a `&mut T` where `T: Transceive` works too.
pub trait Transceive {
    /// Sends `command` and returns the tag's response.
    ///
    /// # Errors
    ///
    /// [`LinkError`] when the exchange did not complete at the radio level.
    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, LinkError>;
}

impl<T: Transceive + ?Sized> Transceive for &mut T {
    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, LinkError> {
        (**self).transceive(command)
    }
}

/// A zero-latency, loss-free link straight to an emulator: the transport
/// used by unit tests and by in-process tooling.
#[derive(Debug)]
pub struct DirectLink<'a> {
    tag: &'a mut dyn TagEmulator,
}

impl<'a> DirectLink<'a> {
    /// Wraps an emulator.
    pub fn new(tag: &'a mut dyn TagEmulator) -> DirectLink<'a> {
        DirectLink { tag }
    }
}

impl Transceive for DirectLink<'_> {
    fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, LinkError> {
        match self.tag.transceive(command) {
            Ok(resp) => Ok(resp),
            // A mute tag manifests to the reader as a response timeout.
            Err(TagError::NoResponse) => Err(LinkError::TransmissionError),
        }
    }
}

/// What NDEF detection learns about a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdefTagInfo {
    /// The tag platform.
    pub tech: TagTech,
    /// Usable NDEF message capacity in bytes.
    pub capacity: usize,
    /// Whether the data area accepts writes.
    pub writable: bool,
}

/// Runs the NDEF detection procedure for `tech`.
///
/// # Errors
///
/// * [`NfcOpError::Link`] — the link failed mid-procedure (transient).
/// * [`NfcOpError::NotNdef`] — no capability container / NDEF application.
/// * [`NfcOpError::Protocol`] — the tag answered with malformed data.
pub fn detect(link: &mut impl Transceive, tech: TagTech) -> Result<NdefTagInfo, NfcOpError> {
    match tech {
        TagTech::Type2 => t2_detect(link),
        TagTech::Type4 => t4_detect(link).map(|s| s.info),
    }
}

/// Reads the complete NDEF message bytes from the tag.
///
/// An empty vector means the tag is formatted but blank (NDEF TLV / NLEN
/// of length zero).
///
/// # Errors
///
/// Same classes as [`detect`].
pub fn read_ndef(link: &mut impl Transceive, tech: TagTech) -> Result<Vec<u8>, NfcOpError> {
    match tech {
        TagTech::Type2 => t2_read_ndef(link),
        TagTech::Type4 => t4_read_ndef(link),
    }
}

/// Writes `message` as the tag's NDEF content, replacing what was there.
///
/// # Errors
///
/// * [`NfcOpError::CapacityExceeded`] — the message does not fit.
/// * [`NfcOpError::ReadOnly`] — the tag rejects writes.
/// * plus the classes of [`detect`].
pub fn write_ndef(
    link: &mut impl Transceive,
    tech: TagTech,
    message: &[u8],
) -> Result<(), NfcOpError> {
    match tech {
        TagTech::Type2 => t2_write_ndef(link, message),
        TagTech::Type4 => t4_write_ndef(link, message),
    }
}

/// Permanently write-protects the tag — the analog of Android's
/// `Ndef.makeReadOnly()`. On Type 2 tags this writes the capability
/// container's write-access nibble (and is then itself locked out); on
/// Type 4 tags it sets the CC file's write-access byte. **Irreversible
/// over the air**, as on real tags.
///
/// # Errors
///
/// * [`NfcOpError::ReadOnly`] — the tag is already protected (the write
///   is refused).
/// * plus the classes of [`detect`].
pub fn make_read_only(link: &mut impl Transceive, tech: TagTech) -> Result<(), NfcOpError> {
    match tech {
        TagTech::Type2 => {
            let resp = link.transceive(&[type2::CMD_READ, 3])?;
            if resp.len() < 4 {
                return Err(NfcOpError::Protocol("short CC read response"));
            }
            if resp[0] != type2::CC_MAGIC {
                return Err(NfcOpError::NotNdef);
            }
            let cc = [resp[0], resp[1], resp[2], resp[3] | 0x0F];
            let write = [type2::CMD_WRITE, 3, cc[0], cc[1], cc[2], cc[3]];
            match link.transceive(&write)?.as_slice() {
                [type2::ACK] => Ok(()),
                _ => Err(NfcOpError::ReadOnly),
            }
        }
        TagTech::Type4 => {
            let session = t4_detect(link)?;
            if !session.info.writable {
                return Err(NfcOpError::ReadOnly);
            }
            let resp = link.transceive(&t4_select_file_apdu(type4::CC_FILE_ID))?;
            if !sw_ok(&resp) {
                return Err(NfcOpError::Protocol("CC file select failed"));
            }
            let resp = link.transceive(&t4_update_binary_apdu(14, &[0xFF]))?;
            if !sw_ok(&resp) {
                return Err(NfcOpError::ReadOnly);
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Type 2 procedures
// ---------------------------------------------------------------------

struct T2Layout {
    data_area_len: usize,
    writable: bool,
}

fn t2_read_cc(link: &mut impl Transceive) -> Result<T2Layout, NfcOpError> {
    let resp = link.transceive(&[type2::CMD_READ, 3])?;
    if resp.len() < 4 {
        return Err(NfcOpError::Protocol("short CC read response"));
    }
    if resp[0] != type2::CC_MAGIC {
        return Err(NfcOpError::NotNdef);
    }
    Ok(T2Layout { data_area_len: resp[2] as usize * 8, writable: resp[3] & 0x0F == 0 })
}

fn t2_detect(link: &mut impl Transceive) -> Result<NdefTagInfo, NfcOpError> {
    let layout = t2_read_cc(link)?;
    let short = layout.data_area_len.saturating_sub(3).min(0xFE);
    let long = layout.data_area_len.saturating_sub(5);
    Ok(NdefTagInfo { tech: TagTech::Type2, capacity: short.max(long), writable: layout.writable })
}

/// Walks the TLV blocks gathered so far. Returns the NDEF payload when
/// the NDEF TLV is completely available, `None` when more bytes are
/// needed, or a protocol error when the structure is definitely invalid.
/// `limit` is the full data-area size: structures pointing beyond it can
/// never become valid.
fn t2_extract_ndef(area: &[u8], limit: usize) -> Result<Option<Vec<u8>>, NfcOpError> {
    let mut i = 0usize;
    loop {
        if i >= limit {
            return Err(NfcOpError::Protocol("missing NDEF TLV"));
        }
        let Some(&tag) = area.get(i) else { return Ok(None) };
        match tag {
            0x00 => i += 1, // NULL TLV
            0xFE => return Err(NfcOpError::Protocol("terminator before NDEF TLV")),
            0x01 | 0x02 => {
                // Lock / memory control TLV: 1-byte length + value.
                let Some(&len) = area.get(i + 1) else { return Ok(None) };
                i += 2 + len as usize;
            }
            0x03 => {
                let (len, header) = match area.get(i + 1) {
                    None => return Ok(None),
                    Some(&0xFF) => {
                        let (Some(&hi), Some(&lo)) = (area.get(i + 2), area.get(i + 3)) else {
                            return Ok(None);
                        };
                        (u16::from_be_bytes([hi, lo]) as usize, 4)
                    }
                    Some(&l) => (l as usize, 2),
                };
                let start = i + header;
                let end = start + len;
                if end > limit {
                    return Err(NfcOpError::Protocol("NDEF TLV length exceeds data area"));
                }
                if end > area.len() {
                    return Ok(None);
                }
                return Ok(Some(area[start..end].to_vec()));
            }
            _ => return Err(NfcOpError::Protocol("unknown TLV block")),
        }
    }
}

fn t2_read_ndef(link: &mut impl Transceive) -> Result<Vec<u8>, NfcOpError> {
    let layout = t2_read_cc(link)?;
    // Read lazily, 16 bytes at a time, stopping as soon as the NDEF TLV
    // is complete — real readers do not sweep the whole EEPROM.
    let mut area: Vec<u8> = Vec::new();
    let mut page = 4usize;
    loop {
        if let Some(payload) = t2_extract_ndef(&area, layout.data_area_len)? {
            return Ok(payload);
        }
        if area.len() >= layout.data_area_len {
            return Err(NfcOpError::Protocol("missing NDEF TLV"));
        }
        let resp = link.transceive(&[type2::CMD_READ, page as u8])?;
        if resp.len() != 16 {
            return Err(NfcOpError::Protocol("READ response was not 16 bytes"));
        }
        area.extend_from_slice(&resp);
        area.truncate(layout.data_area_len);
        page += 4;
    }
}

fn t2_write_ndef(link: &mut impl Transceive, message: &[u8]) -> Result<(), NfcOpError> {
    let layout = t2_read_cc(link)?;
    if !layout.writable {
        return Err(NfcOpError::ReadOnly);
    }
    // Serialize the TLV area: NDEF TLV + terminator.
    let mut area = Vec::with_capacity(message.len() + 5);
    area.push(0x03);
    if message.len() <= 0xFE {
        area.push(message.len() as u8);
    } else {
        area.push(0xFF);
        area.extend_from_slice(&(message.len() as u16).to_be_bytes());
    }
    area.extend_from_slice(message);
    area.push(0xFE);
    if area.len() > layout.data_area_len {
        let overhead = area.len() - message.len();
        return Err(NfcOpError::CapacityExceeded {
            needed: message.len(),
            capacity: layout.data_area_len - overhead,
        });
    }
    // Pad to a whole number of pages and write page by page.
    while area.len() % 4 != 0 {
        area.push(0x00);
    }
    for (offset, chunk) in area.chunks(4).enumerate() {
        let page = 4 + offset;
        let cmd = [type2::CMD_WRITE, page as u8, chunk[0], chunk[1], chunk[2], chunk[3]];
        let resp = link.transceive(&cmd)?;
        if resp != [type2::ACK] {
            return Err(NfcOpError::ReadOnly);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Type 4 procedures
// ---------------------------------------------------------------------

/// Builds the `SELECT` by AID APDU for the NDEF Tag Application.
pub fn t4_select_app_apdu() -> Vec<u8> {
    let mut apdu = vec![0x00, 0xA4, 0x04, 0x00, type4::NDEF_AID.len() as u8];
    apdu.extend_from_slice(&type4::NDEF_AID);
    apdu.push(0x00);
    apdu
}

/// Builds the `SELECT` by file-id APDU.
pub fn t4_select_file_apdu(file_id: u16) -> Vec<u8> {
    let fid = file_id.to_be_bytes();
    vec![0x00, 0xA4, 0x00, 0x0C, 0x02, fid[0], fid[1]]
}

fn t4_read_binary_apdu(offset: u16, le: u8) -> Vec<u8> {
    let o = offset.to_be_bytes();
    vec![0x00, 0xB0, o[0], o[1], le]
}

fn t4_update_binary_apdu(offset: u16, data: &[u8]) -> Vec<u8> {
    let o = offset.to_be_bytes();
    let mut apdu = vec![0x00, 0xD6, o[0], o[1], data.len() as u8];
    apdu.extend_from_slice(data);
    apdu
}

fn sw_ok(resp: &[u8]) -> bool {
    resp.len() >= 2 && resp[resp.len() - 2..] == type4::SW_OK
}

struct T4Session {
    info: NdefTagInfo,
    ndef_file_id: u16,
    max_ndef_file: usize,
    mle: usize,
    mlc: usize,
}

fn t4_detect(link: &mut impl Transceive) -> Result<T4Session, NfcOpError> {
    let resp = link.transceive(&t4_select_app_apdu())?;
    if !sw_ok(&resp) {
        return Err(NfcOpError::NotNdef);
    }
    let resp = link.transceive(&t4_select_file_apdu(type4::CC_FILE_ID))?;
    if !sw_ok(&resp) {
        return Err(NfcOpError::NotNdef);
    }
    let resp = link.transceive(&t4_read_binary_apdu(0, 15))?;
    if !sw_ok(&resp) || resp.len() < 17 {
        return Err(NfcOpError::Protocol("CC file read failed"));
    }
    let cc = &resp[..15];
    if cc[7] != 0x04 || cc[8] != 0x06 {
        return Err(NfcOpError::Protocol("CC lacks NDEF file control TLV"));
    }
    let mle = u16::from_be_bytes([cc[3], cc[4]]) as usize;
    let mlc = u16::from_be_bytes([cc[5], cc[6]]) as usize;
    let ndef_file_id = u16::from_be_bytes([cc[9], cc[10]]);
    let max_ndef_file = u16::from_be_bytes([cc[11], cc[12]]) as usize;
    if mle == 0 || mlc == 0 || max_ndef_file < 2 {
        return Err(NfcOpError::Protocol("CC limits are invalid"));
    }
    let writable = cc[14] == 0x00;
    Ok(T4Session {
        info: NdefTagInfo { tech: TagTech::Type4, capacity: max_ndef_file - 2, writable },
        ndef_file_id,
        max_ndef_file,
        mle,
        mlc,
    })
}

fn t4_select_ndef(link: &mut impl Transceive, session: &T4Session) -> Result<(), NfcOpError> {
    let resp = link.transceive(&t4_select_file_apdu(session.ndef_file_id))?;
    if !sw_ok(&resp) {
        return Err(NfcOpError::Protocol("NDEF file select failed"));
    }
    Ok(())
}

fn t4_read_ndef(link: &mut impl Transceive) -> Result<Vec<u8>, NfcOpError> {
    let session = t4_detect(link)?;
    t4_select_ndef(link, &session)?;
    let resp = link.transceive(&t4_read_binary_apdu(0, 2))?;
    if !sw_ok(&resp) || resp.len() != 4 {
        return Err(NfcOpError::Protocol("NLEN read failed"));
    }
    let nlen = u16::from_be_bytes([resp[0], resp[1]]) as usize;
    if nlen + 2 > session.max_ndef_file {
        return Err(NfcOpError::Protocol("NLEN exceeds the NDEF file"));
    }
    let mut message = Vec::with_capacity(nlen);
    let mut offset = 2usize;
    while message.len() < nlen {
        let want = (nlen - message.len()).min(session.mle).min(255);
        let resp = link.transceive(&t4_read_binary_apdu(offset as u16, want as u8))?;
        if !sw_ok(&resp) || resp.len() != want + 2 {
            return Err(NfcOpError::Protocol("NDEF file read failed"));
        }
        message.extend_from_slice(&resp[..want]);
        offset += want;
    }
    Ok(message)
}

fn t4_write_ndef(link: &mut impl Transceive, message: &[u8]) -> Result<(), NfcOpError> {
    let session = t4_detect(link)?;
    if !session.info.writable {
        return Err(NfcOpError::ReadOnly);
    }
    if message.len() + 2 > session.max_ndef_file {
        return Err(NfcOpError::CapacityExceeded {
            needed: message.len(),
            capacity: session.max_ndef_file - 2,
        });
    }
    t4_select_ndef(link, &session)?;
    // Zero NLEN first so a torn write reads back as an empty tag rather
    // than as garbage — the Type 4 mapping's prescribed write order.
    let resp = link.transceive(&t4_update_binary_apdu(0, &[0, 0]))?;
    if !sw_ok(&resp) {
        return Err(NfcOpError::ReadOnly);
    }
    let mut offset = 2usize;
    for chunk in message.chunks(session.mlc.min(250)) {
        let resp = link.transceive(&t4_update_binary_apdu(offset as u16, chunk))?;
        if !sw_ok(&resp) {
            return Err(NfcOpError::ReadOnly);
        }
        offset += chunk.len();
    }
    let resp = link.transceive(&t4_update_binary_apdu(0, &(message.len() as u16).to_be_bytes()))?;
    if !sw_ok(&resp) {
        return Err(NfcOpError::ReadOnly);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{TagUid, Type2Tag, Type4Tag};

    fn roundtrip(tag: &mut dyn TagEmulator, payload: &[u8]) {
        let tech = tag.tech();
        let mut link = DirectLink::new(tag);
        write_ndef(&mut link, tech, payload).unwrap();
        assert_eq!(read_ndef(&mut link, tech).unwrap(), payload);
    }

    #[test]
    fn type2_write_read_round_trip() {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(1));
        roundtrip(&mut tag, b"hello type 2");
        roundtrip(&mut tag, b""); // blank rewrite
        roundtrip(&mut tag, &vec![0x5A; 400]); // long TLV form
    }

    #[test]
    fn type4_write_read_round_trip() {
        let mut tag = Type4Tag::new(TagUid::from_seed(2), 1024);
        roundtrip(&mut tag, b"hello type 4");
        roundtrip(&mut tag, b"");
        roundtrip(&mut tag, &vec![0xA5; 700]); // multi-chunk read/write
    }

    #[test]
    fn fresh_tags_read_as_blank() {
        let mut t2 = Type2Tag::ntag213(TagUid::from_seed(3));
        assert_eq!(read_ndef(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap(), b"");
        let mut t4 = Type4Tag::new(TagUid::from_seed(4), 256);
        assert_eq!(read_ndef(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap(), b"");
    }

    #[test]
    fn detect_reports_capacity_and_writability() {
        let mut t2 = Type2Tag::ntag213(TagUid::from_seed(5));
        let info = detect(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap();
        assert_eq!(info, NdefTagInfo { tech: TagTech::Type2, capacity: 141, writable: true });
        t2.set_read_only(true);
        let info = detect(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap();
        assert!(!info.writable);

        let mut t4 = Type4Tag::new(TagUid::from_seed(6), 512);
        let info = detect(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap();
        assert_eq!(info, NdefTagInfo { tech: TagTech::Type4, capacity: 510, writable: true });
    }

    #[test]
    fn unformatted_tags_report_not_ndef() {
        let mut t2 = Type2Tag::ntag213(TagUid::from_seed(7));
        t2.unformat();
        assert_eq!(
            detect(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap_err(),
            NfcOpError::NotNdef
        );
        let mut t4 = Type4Tag::new(TagUid::from_seed(8), 256);
        t4.unformat();
        assert_eq!(
            detect(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap_err(),
            NfcOpError::NotNdef
        );
    }

    #[test]
    fn capacity_overflow_is_reported_with_numbers() {
        let mut t2 = Type2Tag::ntag213(TagUid::from_seed(9));
        let err = write_ndef(&mut DirectLink::new(&mut t2), TagTech::Type2, &[0; 200]).unwrap_err();
        assert_eq!(err, NfcOpError::CapacityExceeded { needed: 200, capacity: 141 });

        let mut t4 = Type4Tag::new(TagUid::from_seed(10), 64);
        let err = write_ndef(&mut DirectLink::new(&mut t4), TagTech::Type4, &[0; 100]).unwrap_err();
        assert_eq!(err, NfcOpError::CapacityExceeded { needed: 100, capacity: 62 });
    }

    #[test]
    fn read_only_write_is_rejected() {
        let mut t2 = Type2Tag::ntag213(TagUid::from_seed(11));
        t2.set_read_only(true);
        assert_eq!(
            write_ndef(&mut DirectLink::new(&mut t2), TagTech::Type2, b"x").unwrap_err(),
            NfcOpError::ReadOnly
        );
        let mut t4 = Type4Tag::new(TagUid::from_seed(12), 256);
        t4.set_read_only(true);
        assert_eq!(
            write_ndef(&mut DirectLink::new(&mut t4), TagTech::Type4, b"x").unwrap_err(),
            NfcOpError::ReadOnly
        );
    }

    #[test]
    fn type2_overwrite_shorter_message_leaves_clean_state() {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(13));
        roundtrip(&mut tag, &vec![1; 300]);
        roundtrip(&mut tag, b"tiny");
        // A fresh read still sees only the short message.
        let mut link = DirectLink::new(&mut tag);
        assert_eq!(read_ndef(&mut link, TagTech::Type2).unwrap(), b"tiny");
    }

    /// A link that fails each exchange whose index is in `fail_at`,
    /// simulating noise bursts at precise points of a procedure.
    struct ScriptedLink<'a> {
        inner: DirectLink<'a>,
        exchange: usize,
        fail_at: Vec<usize>,
    }

    impl Transceive for ScriptedLink<'_> {
        fn transceive(&mut self, command: &[u8]) -> Result<Vec<u8>, LinkError> {
            let idx = self.exchange;
            self.exchange += 1;
            if self.fail_at.contains(&idx) {
                return Err(LinkError::TransmissionError);
            }
            self.inner.transceive(command)
        }
    }

    #[test]
    fn torn_type4_write_reads_back_blank() {
        let mut tag = Type4Tag::new(TagUid::from_seed(14), 512);
        // First put real content on the tag.
        write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4, b"old-content").unwrap();
        // Now interrupt a larger write after NLEN was zeroed: exchanges are
        // selectApp, selectCC, readCC, selectNdef, update NLEN=0 (4), then
        // data updates — fail the first data update (index 5).
        let mut scripted =
            ScriptedLink { inner: DirectLink::new(&mut tag), exchange: 0, fail_at: vec![5] };
        let err = write_ndef(&mut scripted, TagTech::Type4, &[7; 300]).unwrap_err();
        assert!(err.is_transient());
        // The prescribed write order guarantees the torn tag reads as blank.
        assert_eq!(read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4).unwrap(), b"");
    }

    #[test]
    fn torn_type2_write_leaves_partial_tlv_detectable() {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(15));
        write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &[3; 100]).unwrap();
        // Type 2 exchanges: read CC (0), then page writes. Fail mid-write.
        let mut scripted =
            ScriptedLink { inner: DirectLink::new(&mut tag), exchange: 0, fail_at: vec![10] };
        let err = write_ndef(&mut scripted, TagTech::Type2, &[9; 200]).unwrap_err();
        assert!(err.is_transient());
        // The tag now holds a torn mixture; a subsequent full write repairs it.
        write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &[9; 200]).unwrap();
        assert_eq!(
            read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2).unwrap(),
            vec![9; 200]
        );
    }

    #[test]
    fn link_failures_propagate_as_transient() {
        let mut tag = Type2Tag::ntag213(TagUid::from_seed(16));
        let mut scripted =
            ScriptedLink { inner: DirectLink::new(&mut tag), exchange: 0, fail_at: vec![0] };
        let err = read_ndef(&mut scripted, TagTech::Type2).unwrap_err();
        assert_eq!(err, NfcOpError::Link(LinkError::TransmissionError));
        assert!(err.is_transient());
    }

    #[test]
    fn make_read_only_is_permanent_over_the_air() {
        // Type 2: content survives, writes stop, a second lock attempt is
        // refused (the CC page itself is now locked).
        let mut t2 = Type2Tag::ntag215(TagUid::from_seed(20));
        write_ndef(&mut DirectLink::new(&mut t2), TagTech::Type2, b"frozen").unwrap();
        make_read_only(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap();
        assert!(t2.is_read_only());
        assert_eq!(
            write_ndef(&mut DirectLink::new(&mut t2), TagTech::Type2, b"nope").unwrap_err(),
            NfcOpError::ReadOnly
        );
        assert_eq!(read_ndef(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap(), b"frozen");
        assert_eq!(
            make_read_only(&mut DirectLink::new(&mut t2), TagTech::Type2).unwrap_err(),
            NfcOpError::ReadOnly
        );

        // Type 4: same contract.
        let mut t4 = Type4Tag::new(TagUid::from_seed(21), 512);
        write_ndef(&mut DirectLink::new(&mut t4), TagTech::Type4, b"frozen4").unwrap();
        make_read_only(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap();
        assert!(t4.is_read_only());
        assert_eq!(
            write_ndef(&mut DirectLink::new(&mut t4), TagTech::Type4, b"nope").unwrap_err(),
            NfcOpError::ReadOnly
        );
        assert_eq!(read_ndef(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap(), b"frozen4");
        assert_eq!(
            make_read_only(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap_err(),
            NfcOpError::ReadOnly
        );
        // Detection reflects the protection.
        let info = detect(&mut DirectLink::new(&mut t4), TagTech::Type4).unwrap();
        assert!(!info.writable);
    }

    #[test]
    fn type2_skips_null_and_control_tlvs() {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(17));
        // Hand-craft a data area: NULL, lock-control TLV, then NDEF TLV.
        let area: Vec<u8> = {
            let mut a = vec![0x00, 0x01, 0x03, 0xA0, 0x10, 0x44]; // NULL + lock ctl (len 3)
            a.extend_from_slice(&[0x03, 0x02, 0xBE, 0xEF, 0xFE]); // NDEF TLV + term
            a
        };
        for (i, chunk) in area.chunks(4).enumerate() {
            let mut page = [0u8; 4];
            page[..chunk.len()].copy_from_slice(chunk);
            tag.transceive(&[type2::CMD_WRITE, (4 + i) as u8, page[0], page[1], page[2], page[3]])
                .unwrap();
        }
        assert_eq!(
            read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2).unwrap(),
            vec![0xBE, 0xEF]
        );
    }
}
