//! The simulated physical world: phones and tags with positions, an
//! event feed per phone, command exchanges over the lossy link, and the
//! peer-to-peer push channel ("Beam").
//!
//! The world is the single source of truth for *where things are*. Every
//! proximity change (a tap, a tag pulled away, two phones brought
//! together) synchronously produces [`NfcEvent`]s on the affected phones'
//! subscriptions — the simulation-level equivalent of the discovery
//! interrupts a real NFC controller raises.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clock::{Clock, SimInstant};
use crate::error::{LinkError, TagError};
use morena_obs::inspect::{ComponentSnapshot, PhonePresence, SnapshotProvider, WorldSnapshot};
use morena_obs::{EventKind, Recorder, NO_OPCODE};

use crate::faults::{self, FaultKind, FaultPlan, FaultStats};
use crate::geometry::Point;
use crate::link::LinkModel;
use crate::tag::{TagEmulator, TagTech, TagUid};
use crate::trace::{TraceBuffer, TraceEntry, TraceEvent};

/// Identity of a phone in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhoneId(u64);

impl PhoneId {
    /// Builds a `PhoneId` from its raw value — for test fixtures and
    /// serialized identities. A world only routes to ids it created.
    pub fn from_u64(raw: u64) -> PhoneId {
        PhoneId(raw)
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PhoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "phone-{}", self.0)
    }
}

/// A proximity or data event delivered to a phone's NFC stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfcEvent {
    /// A tag entered this phone's field.
    TagEntered {
        /// The tag's UID.
        uid: TagUid,
        /// The tag platform, learned during activation.
        tech: TagTech,
    },
    /// A tag left this phone's field.
    TagLeft {
        /// The tag's UID.
        uid: TagUid,
    },
    /// Another phone came into beam range.
    PeerEntered {
        /// The peer phone.
        peer: PhoneId,
    },
    /// A peer phone left beam range.
    PeerLeft {
        /// The peer phone.
        peer: PhoneId,
    },
    /// A beamed NDEF payload arrived from a peer.
    BeamReceived {
        /// The sending phone.
        from: PhoneId,
        /// The raw NDEF message bytes.
        bytes: Vec<u8>,
    },
}

struct TagSlot {
    emulator: Box<dyn TagEmulator>,
    tech: TagTech,
    position: Point,
}

struct PhoneSlot {
    name: String,
    position: Point,
    subscribers: Vec<Sender<NfcEvent>>,
}

/// Aggregate radio activity of a world — the simulation-side ground
/// truth experiments use to report how much physical work an approach
/// cost (exchanges, failures, air time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RadioStats {
    /// Command/response exchanges attempted (including failed ones).
    pub exchanges: u64,
    /// Exchanges rejected before the air (target out of range/unknown).
    pub rejected: u64,
    /// Exchanges lost to noise or mid-flight field loss.
    pub failed: u64,
    /// Payload bytes moved over the air (commands of completed
    /// exchanges, both directions approximated).
    pub bytes: u64,
    /// Total simulated air time spent in exchanges, in nanoseconds.
    pub air_time_nanos: u64,
    /// Beam pushes attempted.
    pub beams: u64,
    /// Beam pushes that reached at least one peer.
    pub beams_delivered: u64,
}

struct WorldState {
    link: LinkModel,
    rng: StdRng,
    tags: HashMap<TagUid, TagSlot>,
    phones: HashMap<PhoneId, PhoneSlot>,
    next_phone: u64,
    radio: RadioStats,
    trace: Option<TraceBuffer>,
    faults: Option<FaultPlan>,
}

impl WorldState {
    fn trace(&mut self, at: SimInstant, event: TraceEvent) {
        if let Some(buffer) = self.trace.as_mut() {
            buffer.push(at, event);
        }
    }

    fn emit(&self, phone: PhoneId, event: NfcEvent) {
        if let Some(slot) = self.phones.get(&phone) {
            for sub in &slot.subscribers {
                // A dropped receiver is fine; stale subscriptions are pruned
                // lazily on subscribe.
                let _ = sub.send(event.clone());
            }
        }
    }

    fn tag_in_range(&self, phone: PhoneId, uid: TagUid) -> bool {
        match (self.phones.get(&phone), self.tags.get(&uid)) {
            (Some(p), Some(t)) => p.position.distance_to(t.position) <= self.link.nfc_range_m,
            _ => false,
        }
    }

    fn peers_in_range(&self, phone: PhoneId) -> Vec<PhoneId> {
        let Some(me) = self.phones.get(&phone) else { return Vec::new() };
        let mut peers: Vec<PhoneId> = self
            .phones
            .iter()
            .filter(|(id, p)| {
                **id != phone && p.position.distance_to(me.position) <= self.link.p2p_range_m
            })
            .map(|(id, _)| *id)
            .collect();
        peers.sort();
        peers
    }
}

/// The phone identity rendered the way observability targets are keyed
/// (`phone-N`), shared between the obs bridge here and the peer layer in
/// `morena-core` so correlation joins line up.
pub fn obs_peer_target(peer: PhoneId) -> String {
    peer.to_string()
}

/// The simulated world. Cheap to clone (shared interior), thread-safe.
///
/// # Examples
///
/// ```
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::tag::{TagUid, Type2Tag};
/// use morena_nfc_sim::world::World;
///
/// let world = World::new(VirtualClock::shared());
/// let phone = world.add_phone("alice");
/// let uid = TagUid::from_seed(1);
/// world.add_tag(Box::new(Type2Tag::ntag213(uid)));
/// world.tap_tag(uid, phone);
/// assert!(world.tag_in_range(phone, uid));
/// ```
#[derive(Clone)]
pub struct World {
    state: Arc<Mutex<WorldState>>,
    clock: Arc<dyn Clock>,
    obs: Arc<Recorder>,
    // Keeps the inspector's world provider alive for the world's
    // lifetime (the registry only holds a weak reference).
    #[allow(dead_code)]
    inspect: Arc<WorldInspect>,
}

/// The sim-side inspector hook: physical ground truth (who is in range
/// of what) plus the installed fault plan's rates and injected count.
struct WorldInspect {
    state: Arc<Mutex<WorldState>>,
}

impl SnapshotProvider for WorldInspect {
    fn snapshot(&self, _now_nanos: u64) -> ComponentSnapshot {
        let state = self.state.lock();
        let mut phones: Vec<PhonePresence> = state
            .phones
            .iter()
            .map(|(id, slot)| {
                let mut tags: Vec<String> = state
                    .tags
                    .iter()
                    .filter(|(&uid, _)| state.tag_in_range(*id, uid))
                    .map(|(uid, _)| uid.to_string())
                    .collect();
                tags.sort();
                PhonePresence {
                    phone: id.as_u64(),
                    name: slot.name.clone(),
                    tags_in_range: tags,
                    peers_in_range: state
                        .peers_in_range(*id)
                        .into_iter()
                        .map(PhoneId::as_u64)
                        .collect(),
                }
            })
            .collect();
        phones.sort_by_key(|p| p.phone);
        let fault_rates = state
            .faults
            .as_ref()
            .map(|plan| {
                let rates = plan.rates();
                FaultKind::ALL
                    .iter()
                    .map(|kind| (kind.label(), rates.rate(*kind)))
                    .filter(|(_, rate)| *rate > 0.0)
                    .collect()
            })
            .unwrap_or_default();
        let faults_injected = state.faults.as_ref().map(|plan| plan.stats().total()).unwrap_or(0);
        ComponentSnapshot::World(WorldSnapshot { phones, fault_rates, faults_injected })
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("World")
            .field("tags", &state.tags.len())
            .field("phones", &state.phones.len())
            .finish()
    }
}

impl World {
    /// Creates a world with the realistic link model and RNG seed 0.
    pub fn new(clock: Arc<dyn Clock>) -> World {
        World::with_link(clock, LinkModel::realistic(), 0)
    }

    /// Creates a world with an explicit link model and RNG seed.
    pub fn with_link(clock: Arc<dyn Clock>, link: LinkModel, seed: u64) -> World {
        let state = Arc::new(Mutex::new(WorldState {
            link,
            rng: StdRng::seed_from_u64(seed),
            tags: HashMap::new(),
            phones: HashMap::new(),
            next_phone: 0,
            radio: RadioStats::default(),
            trace: None,
            faults: None,
        }));
        let obs = Arc::new(Recorder::new());
        let inspect = Arc::new(WorldInspect { state: Arc::clone(&state) });
        obs.inspector()
            .register("world", Arc::downgrade(&inspect) as std::sync::Weak<dyn SnapshotProvider>);
        World { state, clock, obs, inspect }
    }

    /// The world's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The world's observability recorder. Disabled (one atomic check
    /// per instrumentation site) until a sink is installed; the sim
    /// bridges its physical ground truth into it, and the middleware
    /// layers above add operation lifecycle events, so one stream holds
    /// both sides of the correlation.
    pub fn obs(&self) -> &Arc<Recorder> {
        &self.obs
    }

    /// Emits a physical ground-truth event into the obs stream, stamped
    /// with the world clock. Cheap no-op while observability is off.
    fn obs_emit(&self, at: SimInstant, make: impl FnOnce() -> EventKind) {
        if self.obs.is_enabled() {
            self.obs.emit(at.as_nanos(), make());
        }
    }

    /// The current link model (a copy).
    pub fn link_model(&self) -> LinkModel {
        self.state.lock().link.clone()
    }

    /// A snapshot of the world's aggregate radio activity.
    pub fn radio_stats(&self) -> RadioStats {
        self.state.lock().radio
    }

    /// Installs a deterministic [`FaultPlan`] on the radio. Every
    /// subsequent exchange consults the plan; replacing an existing plan
    /// discards it along with its log and counters.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().faults = Some(plan);
    }

    /// Removes the active fault plan, returning it (with its final log
    /// and counters) so callers can assert against the injected ground
    /// truth. `None` when no plan was installed.
    pub fn clear_fault_plan(&self) -> Option<FaultPlan> {
        self.state.lock().faults.take()
    }

    /// Counters of faults injected by the active plan (all zero when no
    /// plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().faults.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// The active plan's injected-fault schedule so far, as
    /// `(exchange index, class)` pairs. Empty when no plan is installed.
    pub fn fault_log(&self) -> Vec<(u64, FaultKind)> {
        self.state.lock().faults.as_ref().map(|p| p.log().to_vec()).unwrap_or_default()
    }

    /// Turns on physical-event tracing with a bounded buffer of
    /// `capacity` entries (oldest dropped first). Re-enabling clears the
    /// buffer.
    ///
    /// # Examples
    ///
    /// ```
    /// use morena_nfc_sim::clock::VirtualClock;
    /// use morena_nfc_sim::tag::{TagUid, Type2Tag};
    /// use morena_nfc_sim::world::World;
    ///
    /// let world = World::new(VirtualClock::shared());
    /// world.enable_trace(64);
    /// let phone = world.add_phone("alice");
    /// let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
    /// world.tap_tag(uid, phone);
    /// let (entries, dropped) = world.trace_snapshot();
    /// assert_eq!(entries.len(), 1); // the TagEntered event
    /// assert_eq!(dropped, 0);
    /// ```
    pub fn enable_trace(&self, capacity: usize) {
        self.state.lock().trace = Some(TraceBuffer::new(capacity));
    }

    /// Turns tracing off, discarding the buffer.
    pub fn disable_trace(&self) {
        self.state.lock().trace = None;
    }

    /// A snapshot of the trace: `(entries, dropped_count)`. Empty when
    /// tracing is off.
    pub fn trace_snapshot(&self) -> (Vec<TraceEntry>, u64) {
        self.state.lock().trace.as_ref().map(|buffer| buffer.snapshot()).unwrap_or_default()
    }

    /// How many trace entries the bounded buffer has silently discarded
    /// since tracing was enabled (`0` when tracing is off). Non-zero
    /// means `trace_snapshot` is an incomplete window of ground truth.
    pub fn trace_dropped_entries(&self) -> u64 {
        self.state.lock().trace.as_ref().map(|buffer| buffer.dropped_entries()).unwrap_or_default()
    }

    /// Adds a phone. Each phone starts isolated, far from everything.
    pub fn add_phone(&self, name: &str) -> PhoneId {
        let mut state = self.state.lock();
        let id = PhoneId(state.next_phone);
        state.next_phone += 1;
        // Spread fresh phones out so they are not accidentally in range.
        let position = Point::new(1000.0 * (id.0 as f64 + 1.0), 0.0);
        state
            .phones
            .insert(id, PhoneSlot { name: name.to_owned(), position, subscribers: Vec::new() });
        id
    }

    /// A phone's display name.
    ///
    /// # Panics
    ///
    /// Panics if the phone does not exist.
    pub fn phone_name(&self, phone: PhoneId) -> String {
        self.state.lock().phones[&phone].name.clone()
    }

    /// Adds a tag to the world, initially far from every phone.
    ///
    /// # Panics
    ///
    /// Panics if a tag with the same UID already exists.
    pub fn add_tag(&self, emulator: Box<dyn TagEmulator>) -> TagUid {
        let mut state = self.state.lock();
        let uid = emulator.uid();
        let tech = emulator.tech();
        assert!(!state.tags.contains_key(&uid), "a tag with UID {uid} already exists in the world");
        state.tags.insert(uid, TagSlot { emulator, tech, position: Point::far_away() });
        uid
    }

    /// Removes a tag from the world entirely, emitting `TagLeft` to any
    /// phone that had it in range. Returns the emulator so callers can
    /// inspect its final memory.
    pub fn take_tag(&self, uid: TagUid) -> Option<Box<dyn TagEmulator>> {
        let mut state = self.state.lock();
        let slot = state.tags.remove(&uid)?;
        let watchers: Vec<PhoneId> = state
            .phones
            .iter()
            .filter(|(_, p)| p.position.distance_to(slot.position) <= state.link.nfc_range_m)
            .map(|(id, _)| *id)
            .collect();
        for phone in watchers {
            state.emit(phone, NfcEvent::TagLeft { uid });
        }
        Some(slot.emulator)
    }

    /// Subscribes to a phone's NFC event feed.
    pub fn subscribe(&self, phone: PhoneId) -> Receiver<NfcEvent> {
        let (tx, rx) = unbounded();
        let mut state = self.state.lock();
        let slot = state.phones.get_mut(&phone).expect("unknown phone");
        slot.subscribers.push(tx);
        rx
    }

    /// Runs `f` with mutable access to a tag's emulator — test/debug
    /// introspection that bypasses the radio.
    pub fn with_tag<R>(&self, uid: TagUid, f: impl FnOnce(&mut dyn TagEmulator) -> R) -> Option<R> {
        let mut state = self.state.lock();
        state.tags.get_mut(&uid).map(|slot| f(slot.emulator.as_mut()))
    }

    // -----------------------------------------------------------------
    // Movement
    // -----------------------------------------------------------------

    /// Moves a tag to an absolute position, emitting enter/leave events.
    pub fn set_tag_position(&self, uid: TagUid, position: Point) {
        let mut state = self.state.lock();
        let Some(slot) = state.tags.get(&uid) else { return };
        let old = slot.position;
        let range = state.link.nfc_range_m;
        let tech = slot.tech;
        let transitions: Vec<(PhoneId, bool)> = state
            .phones
            .iter()
            .filter_map(|(id, p)| {
                let was = p.position.distance_to(old) <= range;
                let is = p.position.distance_to(position) <= range;
                (was != is).then_some((*id, is))
            })
            .collect();
        state.tags.get_mut(&uid).expect("checked").position = position;
        let now = self.clock.now();
        let mut left_any = false;
        for (phone, entered) in transitions {
            if entered {
                state.trace(now, TraceEvent::TagEntered { phone, uid });
                self.obs_emit(now, || EventKind::PhysTagEntered {
                    phone: phone.as_u64(),
                    target: uid.to_string(),
                });
                state.emit(phone, NfcEvent::TagEntered { uid, tech });
            } else {
                left_any = true;
                state.trace(now, TraceEvent::TagLeft { phone, uid });
                self.obs_emit(now, || EventKind::PhysTagLeft {
                    phone: phone.as_u64(),
                    target: uid.to_string(),
                });
                state.emit(phone, NfcEvent::TagLeft { uid });
            }
        }
        if left_any {
            state.tags.get_mut(&uid).expect("checked").emulator.on_field_lost();
        }
    }

    /// Moves a phone to an absolute position, emitting tag and peer
    /// enter/leave events for every affected relationship.
    pub fn set_phone_position(&self, phone: PhoneId, position: Point) {
        let mut state = self.state.lock();
        let Some(slot) = state.phones.get(&phone) else { return };
        let old = slot.position;
        let nfc_range = state.link.nfc_range_m;
        let p2p_range = state.link.p2p_range_m;

        let tag_transitions: Vec<(TagUid, TagTech, bool)> = state
            .tags
            .iter()
            .filter_map(|(uid, t)| {
                let was = t.position.distance_to(old) <= nfc_range;
                let is = t.position.distance_to(position) <= nfc_range;
                (was != is).then_some((*uid, t.tech, is))
            })
            .collect();
        let peer_transitions: Vec<(PhoneId, bool)> = state
            .phones
            .iter()
            .filter_map(|(id, p)| {
                if *id == phone {
                    return None;
                }
                let was = p.position.distance_to(old) <= p2p_range;
                let is = p.position.distance_to(position) <= p2p_range;
                (was != is).then_some((*id, is))
            })
            .collect();

        state.phones.get_mut(&phone).expect("checked").position = position;

        let now = self.clock.now();
        for (uid, tech, entered) in tag_transitions {
            if entered {
                state.trace(now, TraceEvent::TagEntered { phone, uid });
                self.obs_emit(now, || EventKind::PhysTagEntered {
                    phone: phone.as_u64(),
                    target: uid.to_string(),
                });
                state.emit(phone, NfcEvent::TagEntered { uid, tech });
            } else {
                state.trace(now, TraceEvent::TagLeft { phone, uid });
                self.obs_emit(now, || EventKind::PhysTagLeft {
                    phone: phone.as_u64(),
                    target: uid.to_string(),
                });
                state.emit(phone, NfcEvent::TagLeft { uid });
                state.tags.get_mut(&uid).expect("checked").emulator.on_field_lost();
            }
        }
        for (peer, entered) in peer_transitions {
            let (a, b) = (phone, peer);
            if entered {
                // The legacy trace plane has no peer events; the obs
                // stream records both directions so `*`-target pushes
                // correlate from either phone's perspective.
                self.obs_emit(now, || EventKind::PhysPeerEntered {
                    phone: a.as_u64(),
                    target: obs_peer_target(b),
                });
                self.obs_emit(now, || EventKind::PhysPeerEntered {
                    phone: b.as_u64(),
                    target: obs_peer_target(a),
                });
                state.emit(a, NfcEvent::PeerEntered { peer: b });
                state.emit(b, NfcEvent::PeerEntered { peer: a });
            } else {
                self.obs_emit(now, || EventKind::PhysPeerLeft {
                    phone: a.as_u64(),
                    target: obs_peer_target(b),
                });
                self.obs_emit(now, || EventKind::PhysPeerLeft {
                    phone: b.as_u64(),
                    target: obs_peer_target(a),
                });
                state.emit(a, NfcEvent::PeerLeft { peer: b });
                state.emit(b, NfcEvent::PeerLeft { peer: a });
            }
        }
    }

    /// Taps a tag on a phone: the tag moves into the phone's field.
    pub fn tap_tag(&self, uid: TagUid, phone: PhoneId) {
        let position = {
            let state = self.state.lock();
            let Some(p) = state.phones.get(&phone) else { return };
            p.position
        };
        self.set_tag_position(uid, position);
    }

    /// Pulls a tag away from everything.
    pub fn remove_tag_from_field(&self, uid: TagUid) {
        self.set_tag_position(uid, Point::far_away());
    }

    /// Places a tag at exactly `distance` meters from a phone's current
    /// position — for exercising the distance-dependent link behaviour
    /// (reliability falls toward the field edge).
    pub fn place_tag_near(&self, uid: TagUid, phone: PhoneId, distance: f64) {
        let position = {
            let state = self.state.lock();
            let Some(p) = state.phones.get(&phone) else { return };
            Point::new(p.position.x + distance, p.position.y)
        };
        self.set_tag_position(uid, position);
    }

    /// Brings phone `b` next to phone `a` (into beam range).
    pub fn bring_phones_together(&self, a: PhoneId, b: PhoneId) {
        let position = {
            let state = self.state.lock();
            let Some(p) = state.phones.get(&a) else { return };
            Point::new(p.position.x + 0.01, p.position.y)
        };
        self.set_phone_position(b, position);
    }

    /// Moves phone `b` far from everything.
    pub fn separate_phone(&self, b: PhoneId) {
        self.set_phone_position(b, Point::new(-1000.0 * (b.0 as f64 + 1.0), -5000.0));
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// Whether `uid` is currently in `phone`'s field.
    pub fn tag_in_range(&self, phone: PhoneId, uid: TagUid) -> bool {
        self.state.lock().tag_in_range(phone, uid)
    }

    /// All tags currently in `phone`'s field.
    pub fn tags_in_range(&self, phone: PhoneId) -> Vec<(TagUid, TagTech)> {
        let state = self.state.lock();
        let Some(p) = state.phones.get(&phone) else { return Vec::new() };
        let mut v: Vec<(TagUid, TagTech)> = state
            .tags
            .iter()
            .filter(|(_, t)| t.position.distance_to(p.position) <= state.link.nfc_range_m)
            .map(|(uid, t)| (*uid, t.tech))
            .collect();
        v.sort_by_key(|(uid, _)| *uid);
        v
    }

    /// All peer phones currently in beam range of `phone`.
    pub fn peers_in_range(&self, phone: PhoneId) -> Vec<PhoneId> {
        self.state.lock().peers_in_range(phone)
    }

    // -----------------------------------------------------------------
    // Radio operations
    // -----------------------------------------------------------------

    /// Performs one command/response exchange between `phone` and `uid`.
    ///
    /// The exchange costs link latency (slept on the world clock) and may
    /// fail probabilistically; if the tag leaves the field while the
    /// exchange is in flight, the command is lost ([`LinkError::FieldLost`])
    /// even though earlier commands may already have mutated the tag —
    /// this is how torn writes arise.
    ///
    /// # Errors
    ///
    /// [`LinkError`] on any radio-level failure.
    pub fn transceive(
        &self,
        phone: PhoneId,
        uid: TagUid,
        command: &[u8],
    ) -> Result<Vec<u8>, LinkError> {
        let (latency, fails) = {
            let mut state = self.state.lock();
            state.radio.exchanges += 1;
            if !state.phones.contains_key(&phone) || !state.tags.contains_key(&uid) {
                state.radio.rejected += 1;
                return Err(LinkError::UnknownDevice);
            }
            if !state.tag_in_range(phone, uid) {
                state.radio.rejected += 1;
                return Err(LinkError::OutOfRange);
            }
            let distance = {
                let p = state.phones[&phone].position;
                let t = state.tags[&uid].position;
                p.distance_to(t)
            };
            let link = state.link.clone();
            let fails = link.sample_failure(distance, &mut state.rng);
            // Response size is unknown before executing; approximate the
            // air time with command size + a nominal 16-byte response.
            (link.exchange_latency(command.len() + 16), fails)
        };
        self.clock.sleep(latency);
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.radio.air_time_nanos += latency.as_nanos() as u64;
        let opcode = command.first().copied();
        let obs_exchange = |ok: bool| EventKind::PhysExchange {
            phone: phone.as_u64(),
            target: uid.to_string(),
            opcode: opcode.map(u64::from).unwrap_or(NO_OPCODE),
            ok,
        };
        if !state.tag_in_range(phone, uid) {
            state.radio.failed += 1;
            state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: false });
            self.obs_emit(now, || obs_exchange(false));
            return Err(LinkError::FieldLost);
        }
        if fails {
            state.radio.failed += 1;
            state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: false });
            self.obs_emit(now, || obs_exchange(false));
            return Err(LinkError::TransmissionError);
        }
        let injected =
            state.faults.as_mut().and_then(|p| p.decide(faults::is_write_command(command)));
        if let Some(kind) = injected {
            state.trace(now, TraceEvent::FaultInjected { phone, uid, fault: kind.label() });
            self.obs_emit(now, || EventKind::FaultInjected {
                phone: phone.as_u64(),
                target: uid.to_string(),
                fault: kind.label(),
            });
            self.obs.metrics().counter("sim.fault_injected").inc();
            // Per-class ground truth next to the aggregate, so the
            // telemetry sampler can expose injection rate by class.
            self.obs.metrics().counter(kind.metric_name()).inc();
            match kind {
                FaultKind::RfDrop => {
                    // The command reaches the tag and takes effect; the
                    // response is lost on the air. The reader cannot
                    // distinguish this from a command that never arrived.
                    let slot = state.tags.get_mut(&uid).ok_or(LinkError::FieldLost)?;
                    let _ = slot.emulator.transceive(command);
                    state.radio.failed += 1;
                    state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: false });
                    self.obs_emit(now, || obs_exchange(false));
                    return Err(LinkError::FieldLost);
                }
                FaultKind::TornWrite => {
                    // Power loss mid-write: only a torn prefix of the
                    // write lands, and no response comes back.
                    if let Some(torn) = faults::torn_write_command(command) {
                        let slot = state.tags.get_mut(&uid).ok_or(LinkError::FieldLost)?;
                        let _ = slot.emulator.transceive(&torn);
                    }
                    state.radio.failed += 1;
                    state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: false });
                    self.obs_emit(now, || obs_exchange(false));
                    return Err(LinkError::FieldLost);
                }
                FaultKind::Corruption => {
                    // The exchange "succeeds" at the radio level but a
                    // bit of the response flips on the way back.
                    state.radio.bytes += command.len() as u64 + 16;
                    state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: true });
                    self.obs_emit(now, || obs_exchange(true));
                    let slot = state.tags.get_mut(&uid).ok_or(LinkError::FieldLost)?;
                    let mut resp = match slot.emulator.transceive(command) {
                        Ok(resp) => resp,
                        Err(TagError::NoResponse) => return Err(LinkError::TransmissionError),
                    };
                    if let Some(p) = state.faults.as_mut() {
                        p.corrupt(&mut resp);
                    }
                    return Ok(resp);
                }
                FaultKind::StuckTag => {
                    // The tag stalls and never answers: the exchange
                    // dwells for the plan's stall time, then fails.
                    state.radio.failed += 1;
                    state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: false });
                    self.obs_emit(now, || obs_exchange(false));
                    let stall = state.faults.as_ref().map(|p| p.stall()).unwrap_or_default();
                    state.radio.air_time_nanos += stall.as_nanos() as u64;
                    drop(state);
                    self.clock.sleep(stall);
                    return Err(LinkError::TransmissionError);
                }
                FaultKind::LatencySpike => {
                    // The exchange completes, just far slower than the
                    // link model predicts; the extra dwell is slept
                    // outside the lock like the nominal latency.
                    state.radio.bytes += command.len() as u64 + 16;
                    state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: true });
                    self.obs_emit(now, || obs_exchange(true));
                    let slot = state.tags.get_mut(&uid).ok_or(LinkError::FieldLost)?;
                    let result = match slot.emulator.transceive(command) {
                        Ok(resp) => Ok(resp),
                        Err(TagError::NoResponse) => Err(LinkError::TransmissionError),
                    };
                    let spike = state.faults.as_ref().map(|p| p.spike()).unwrap_or_default();
                    state.radio.air_time_nanos += spike.as_nanos() as u64;
                    drop(state);
                    self.clock.sleep(spike);
                    return result;
                }
            }
        }
        state.radio.bytes += command.len() as u64 + 16;
        state.trace(now, TraceEvent::Exchange { phone, uid, opcode, ok: true });
        self.obs_emit(now, || obs_exchange(true));
        let slot = state.tags.get_mut(&uid).ok_or(LinkError::FieldLost)?;
        match slot.emulator.transceive(command) {
            Ok(resp) => Ok(resp),
            Err(TagError::NoResponse) => Err(LinkError::TransmissionError),
        }
    }

    /// Beams `bytes` from `from` to every peer in range (NFC push is
    /// undirected). Returns how many peers received it.
    ///
    /// # Errors
    ///
    /// * [`LinkError::NoPeerInRange`] — nobody to push to.
    /// * [`LinkError::FieldLost`] — the peers moved away mid-transfer.
    /// * [`LinkError::TransmissionError`] — noise corrupted the push.
    pub fn beam(&self, from: PhoneId, bytes: &[u8]) -> Result<usize, LinkError> {
        let (latency, fails, peers_before) = {
            let mut state = self.state.lock();
            state.radio.beams += 1;
            if !state.phones.contains_key(&from) {
                return Err(LinkError::UnknownDevice);
            }
            let peers = state.peers_in_range(from);
            if peers.is_empty() {
                return Err(LinkError::NoPeerInRange);
            }
            let link = state.link.clone();
            let fails = link.sample_failure(0.0, &mut state.rng);
            (link.exchange_latency(bytes.len()), fails, peers)
        };
        self.clock.sleep(latency);
        let mut state = self.state.lock();
        state.radio.air_time_nanos += latency.as_nanos() as u64;
        let peers_now = state.peers_in_range(from);
        let delivered: Vec<PhoneId> =
            peers_before.into_iter().filter(|p| peers_now.contains(p)).collect();
        if delivered.is_empty() {
            state.radio.failed += 1;
            return Err(LinkError::FieldLost);
        }
        if fails {
            state.radio.failed += 1;
            return Err(LinkError::TransmissionError);
        }
        state.radio.beams_delivered += 1;
        state.radio.bytes += bytes.len() as u64;
        let now = self.clock.now();
        state.trace(now, TraceEvent::Beam { from, bytes: bytes.len(), delivered: delivered.len() });
        self.obs_emit(now, || EventKind::PhysBeam {
            phone: from.as_u64(),
            bytes: bytes.len() as u64,
            delivered: delivered.len() as u64,
        });
        for peer in &delivered {
            state.emit(*peer, NfcEvent::BeamReceived { from, bytes: bytes.to_vec() });
        }
        Ok(delivered.len())
    }

    /// Beams `bytes` from `from` to the specific peer `to`, modelling the
    /// connection-oriented (LLCP-style) transport real NFC P2P stacks run
    /// on top of the broadcast radio. Fails if `to` is not in proximity.
    ///
    /// # Errors
    ///
    /// * [`LinkError::UnknownDevice`] — either phone does not exist.
    /// * [`LinkError::OutOfRange`] — `to` is not in beam range.
    /// * [`LinkError::FieldLost`] — `to` moved away mid-transfer.
    /// * [`LinkError::TransmissionError`] — noise corrupted the push.
    pub fn beam_to(&self, from: PhoneId, to: PhoneId, bytes: &[u8]) -> Result<(), LinkError> {
        let (latency, fails) = {
            let mut state = self.state.lock();
            state.radio.beams += 1;
            if !state.phones.contains_key(&from) || !state.phones.contains_key(&to) {
                return Err(LinkError::UnknownDevice);
            }
            if !state.peers_in_range(from).contains(&to) {
                return Err(LinkError::OutOfRange);
            }
            let link = state.link.clone();
            let fails = link.sample_failure(0.0, &mut state.rng);
            (link.exchange_latency(bytes.len()), fails)
        };
        self.clock.sleep(latency);
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.radio.air_time_nanos += latency.as_nanos() as u64;
        if !state.peers_in_range(from).contains(&to) {
            state.radio.failed += 1;
            return Err(LinkError::FieldLost);
        }
        if fails {
            state.radio.failed += 1;
            return Err(LinkError::TransmissionError);
        }
        state.radio.beams_delivered += 1;
        state.radio.bytes += bytes.len() as u64;
        state.trace(now, TraceEvent::Beam { from, bytes: bytes.len(), delivered: 1 });
        self.obs_emit(now, || EventKind::PhysBeam {
            phone: from.as_u64(),
            bytes: bytes.len() as u64,
            delivered: 1,
        });
        state.emit(to, NfcEvent::BeamReceived { from, bytes: bytes.to_vec() });
        Ok(())
    }

    /// Sleeps `d` on the world clock (convenience for scenarios/tests).
    pub fn sleep(&self, d: Duration) {
        self.clock.sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::tag::{Type2Tag, Type4Tag};

    fn world() -> World {
        World::with_link(VirtualClock::shared(), LinkModel::instant(), 7)
    }

    #[test]
    fn tap_and_remove_emit_events() {
        let w = world();
        let phone = w.add_phone("alice");
        let rx = w.subscribe(phone);
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
        w.tap_tag(uid, phone);
        assert_eq!(rx.try_recv().unwrap(), NfcEvent::TagEntered { uid, tech: TagTech::Type2 });
        w.remove_tag_from_field(uid);
        assert_eq!(rx.try_recv().unwrap(), NfcEvent::TagLeft { uid });
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn moving_the_phone_also_emits_tag_events() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type4Tag::new(TagUid::from_seed(2), 256)));
        w.set_tag_position(uid, Point::new(5.0, 5.0));
        let rx = w.subscribe(phone);
        w.set_phone_position(phone, Point::new(5.0, 5.0));
        assert_eq!(rx.try_recv().unwrap(), NfcEvent::TagEntered { uid, tech: TagTech::Type4 });
        w.set_phone_position(phone, Point::new(50.0, 50.0));
        assert_eq!(rx.try_recv().unwrap(), NfcEvent::TagLeft { uid });
    }

    #[test]
    fn transceive_requires_proximity() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(3))));
        assert_eq!(w.transceive(phone, uid, &[0x30, 3]).unwrap_err(), LinkError::OutOfRange);
        w.tap_tag(uid, phone);
        let resp = w.transceive(phone, uid, &[0x30, 3]).unwrap();
        assert_eq!(resp[0], 0xE1);
    }

    #[test]
    fn unknown_devices_are_reported() {
        let w = world();
        let phone = w.add_phone("alice");
        assert_eq!(
            w.transceive(phone, TagUid::from_seed(99), &[0x30, 0]).unwrap_err(),
            LinkError::UnknownDevice
        );
    }

    #[test]
    fn total_failure_link_always_errors() {
        let clock = VirtualClock::shared();
        let w = World::with_link(clock, LinkModel::with_failure_prob(1.0), 1);
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(4))));
        w.tap_tag(uid, phone);
        assert_eq!(w.transceive(phone, uid, &[0x30, 3]).unwrap_err(), LinkError::TransmissionError);
    }

    #[test]
    fn transceive_consumes_virtual_time() {
        let clock = VirtualClock::shared();
        let w = World::with_link(Arc::clone(&clock) as Arc<dyn Clock>, LinkModel::reliable(), 1);
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(5))));
        w.tap_tag(uid, phone);
        let before = clock.now();
        w.transceive(phone, uid, &[0x30, 3]).unwrap();
        assert!(clock.now() > before);
    }

    #[test]
    fn beam_reaches_peers_in_range_only() {
        let w = world();
        let alice = w.add_phone("alice");
        let bob = w.add_phone("bob");
        let carol = w.add_phone("carol");
        let rx_bob = w.subscribe(bob);
        let rx_carol = w.subscribe(carol);
        assert_eq!(w.beam(alice, b"hi").unwrap_err(), LinkError::NoPeerInRange);
        w.bring_phones_together(alice, bob);
        assert_eq!(rx_bob.try_recv().unwrap(), NfcEvent::PeerEntered { peer: alice });
        assert_eq!(w.beam(alice, b"hi").unwrap(), 1);
        assert_eq!(
            rx_bob.try_recv().unwrap(),
            NfcEvent::BeamReceived { from: alice, bytes: b"hi".to_vec() }
        );
        assert!(rx_carol.try_recv().is_err());
        w.separate_phone(bob);
        assert_eq!(rx_bob.try_recv().unwrap(), NfcEvent::PeerLeft { peer: alice });
    }

    #[test]
    fn beam_to_is_directed() {
        let w = world();
        let alice = w.add_phone("alice");
        let bob = w.add_phone("bob");
        let carol = w.add_phone("carol");
        let rx_bob = w.subscribe(bob);
        let rx_carol = w.subscribe(carol);
        assert_eq!(w.beam_to(alice, bob, b"x").unwrap_err(), LinkError::OutOfRange);
        // Bring BOTH bob and carol next to alice; only bob must receive.
        w.bring_phones_together(alice, bob);
        w.bring_phones_together(alice, carol);
        w.beam_to(alice, bob, b"for bob").unwrap();
        let got: Vec<NfcEvent> = rx_bob.try_iter().collect();
        assert!(got.contains(&NfcEvent::BeamReceived { from: alice, bytes: b"for bob".to_vec() }));
        assert!(rx_carol.try_iter().all(|e| !matches!(e, NfcEvent::BeamReceived { .. })));
        // Unknown device.
        assert_eq!(
            w.beam_to(alice, PhoneId::from_u64(99), b"x").unwrap_err(),
            LinkError::UnknownDevice
        );
    }

    #[test]
    fn field_loss_resets_type4_session() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type4Tag::new(TagUid::from_seed(6), 256)));
        w.tap_tag(uid, phone);
        // Select the application.
        let mut select = vec![0x00, 0xA4, 0x04, 0x00, 0x07];
        select.extend_from_slice(&crate::tag::type4::NDEF_AID);
        select.push(0x00);
        assert_eq!(w.transceive(phone, uid, &select).unwrap(), vec![0x90, 0x00]);
        // Losing the field resets selection: READ BINARY now not allowed.
        w.remove_tag_from_field(uid);
        w.tap_tag(uid, phone);
        let resp = w.transceive(phone, uid, &[0x00, 0xB0, 0x00, 0x00, 0x02]).unwrap();
        assert_eq!(resp, vec![0x69, 0x86]);
    }

    #[test]
    fn take_tag_returns_emulator_and_notifies() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(7))));
        w.tap_tag(uid, phone);
        let rx = w.subscribe(phone);
        let emulator = w.take_tag(uid).unwrap();
        assert_eq!(emulator.uid(), uid);
        assert_eq!(rx.try_recv().unwrap(), NfcEvent::TagLeft { uid });
        assert!(w.take_tag(uid).is_none());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_uid_panics() {
        let w = world();
        w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(8))));
        w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(8))));
    }

    #[test]
    fn radio_stats_track_activity() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(30))));
        assert_eq!(w.radio_stats(), crate::world::RadioStats::default());
        // Out-of-range exchange: counted and rejected.
        assert!(w.transceive(phone, uid, &[0x30, 3]).is_err());
        let stats = w.radio_stats();
        assert_eq!(stats.exchanges, 1);
        assert_eq!(stats.rejected, 1);
        // In-range exchange: bytes move.
        w.tap_tag(uid, phone);
        w.transceive(phone, uid, &[0x30, 3]).unwrap();
        let stats = w.radio_stats();
        assert_eq!(stats.exchanges, 2);
        assert_eq!(stats.bytes, 2 + 16);
        // Beam accounting.
        let bob = w.add_phone("bob");
        assert!(w.beam(phone, b"xy").is_err());
        w.bring_phones_together(phone, bob);
        w.beam(phone, b"xy").unwrap();
        let stats = w.radio_stats();
        assert_eq!(stats.beams, 2);
        assert_eq!(stats.beams_delivered, 1);
        assert_eq!(stats.bytes, 2 + 16 + 2);
    }

    #[test]
    fn trace_records_physical_events() {
        use crate::trace::TraceEvent;
        let w = world();
        w.enable_trace(100);
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(40))));
        w.tap_tag(uid, phone);
        w.transceive(phone, uid, &[0x30, 3]).unwrap();
        w.remove_tag_from_field(uid);
        let (entries, dropped) = w.trace_snapshot();
        assert_eq!(dropped, 0);
        let events: Vec<&TraceEvent> = entries.iter().map(|e| &e.event).collect();
        assert!(matches!(events[0], TraceEvent::TagEntered { uid: u, .. } if *u == uid));
        assert!(matches!(events[1], TraceEvent::Exchange { opcode: Some(0x30), ok: true, .. }));
        assert!(matches!(events[2], TraceEvent::TagLeft { uid: u, .. } if *u == uid));
        // Rendering works for all entries.
        for entry in &entries {
            assert!(!entry.to_string().is_empty());
        }
        // Disabling clears.
        w.disable_trace();
        assert_eq!(w.trace_snapshot().0.len(), 0);
    }

    #[test]
    fn obs_bridge_mirrors_physical_events() {
        use morena_obs::{EventKind, RingSink};

        let w = world();
        let ring = Arc::new(RingSink::new(64));
        w.obs().install(ring.clone());

        let phone = w.add_phone("alice");
        let bob = w.add_phone("bob");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(41))));
        w.tap_tag(uid, phone);
        w.transceive(phone, uid, &[0x30, 3]).unwrap();
        w.remove_tag_from_field(uid);
        w.bring_phones_together(phone, bob);
        w.beam(phone, b"xy").unwrap();
        w.separate_phone(bob);

        let kinds: Vec<&'static str> =
            ring.snapshot().iter().map(|e| e.kind.type_label()).collect();
        assert_eq!(
            kinds,
            vec![
                "phys_tag_entered",
                "phys_exchange",
                "phys_tag_left",
                "phys_peer_entered", // both directions
                "phys_peer_entered",
                "phys_beam",
                "phys_peer_left",
                "phys_peer_left",
            ]
        );
        let events = ring.snapshot();
        assert!(matches!(&events[1].kind, EventKind::PhysExchange { opcode: 0x30, ok: true, .. }));
        // Sequence numbers are gap-free and timestamps follow the world
        // clock.
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.seq, i as u64);
        }
        assert_eq!(ring.dropped_entries(), 0);
        assert_eq!(w.trace_dropped_entries(), 0);
    }

    #[test]
    fn with_tag_gives_direct_access() {
        let w = world();
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(9))));
        let tech = w.with_tag(uid, |t| t.tech()).unwrap();
        assert_eq!(tech, TagTech::Type2);
        assert!(w.with_tag(TagUid::from_seed(10), |t| t.tech()).is_none());
    }
}
