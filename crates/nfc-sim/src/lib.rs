//! # morena-nfc-sim
//!
//! A discrete-event simulation of the NFC hardware stack that the MORENA
//! middleware (Middleware 2012) runs on: RFID tags with byte-accurate
//! memory models, the short-range lossy radio link, per-phone NFC
//! controllers, a peer-to-peer push channel ("Beam"), and scripted
//! physical scenarios.
//!
//! The paper's whole premise is that NFC communication is *slow and
//! failure-prone* — tags slide out of the 4 cm field mid-operation, reads
//! and writes take tens of milliseconds, and every exchange can be lost to
//! noise. This crate reproduces exactly those failure modes so the
//! middleware layers above have something real to be robust against:
//!
//! * [`clock`] — pluggable time: [`clock::SystemClock`] for examples and
//!   benchmarks, [`clock::VirtualClock`] for deterministic tests.
//! * [`tag`] — Type 2 (NTAG-style page memory) and Type 4 (APDU/file)
//!   tag emulators.
//! * [`proto`] — the reader-side NDEF detect/read/write procedures, built
//!   from individual tag commands so faults can strike mid-operation.
//! * [`link`] — latency and failure model of the radio link.
//! * [`faults`] — a seeded, deterministic fault injector layered on the
//!   link: RF drops, torn writes, corruption, stalls, latency spikes.
//! * [`world`] — phones and tags in 2D space; proximity events; beam.
//! * [`controller`] — the per-phone [`controller::NfcHandle`] facade the
//!   software stack uses.
//! * [`scenario`] — scripted timelines of taps and movements.
//!
//! # Examples
//!
//! ```
//! use morena_nfc_sim::clock::VirtualClock;
//! use morena_nfc_sim::controller::NfcHandle;
//! use morena_nfc_sim::link::LinkModel;
//! use morena_nfc_sim::tag::{TagUid, Type2Tag};
//! use morena_nfc_sim::world::World;
//!
//! # fn main() -> Result<(), morena_nfc_sim::error::NfcOpError> {
//! let world = World::with_link(VirtualClock::shared(), LinkModel::reliable(), 0);
//! let phone = world.add_phone("alice");
//! let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
//!
//! let nfc = NfcHandle::new(world.clone(), phone);
//! world.tap_tag(uid, phone);
//! nfc.ndef_write(uid, b"hello over the air")?;
//! assert_eq!(nfc.ndef_read(uid)?, b"hello over the air");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod controller;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod link;
pub mod proto;
pub mod scenario;
pub mod tag;
pub mod trace;
pub mod world;

pub use clock::{Clock, SimInstant, SystemClock, VirtualClock};
pub use controller::NfcHandle;
pub use error::{LinkError, NfcOpError, TagError};
pub use faults::{FaultKind, FaultPlan, FaultRates, FaultStats};
pub use link::LinkModel;
pub use tag::{TagEmulator, TagTech, TagUid, Type2Tag, Type4Tag};
pub use world::{NfcEvent, PhoneId, World};
