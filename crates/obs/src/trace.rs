//! Causal trace contexts: one `trace_id` per application-visible
//! operation, propagated through everything that operation *causes* —
//! retry attempts, verify-after-write probes, coalesced batch members,
//! listener callbacks, and (in-band, via a reserved NDEF record the core
//! layer owns) across devices on beam and peer payloads.
//!
//! The model is deliberately minimal — three ids and a sampling bit:
//!
//! * [`TraceContext::trace_id`] names the whole causal tree. Every event
//!   stamped with the same `trace_id` is part of one end-to-end story,
//!   even when its spans ran on different phones.
//! * [`TraceContext::span_id`] names one hop of that story (one queued
//!   op, one received beam, one lease acquire).
//! * [`TraceContext::parent_span_id`] is the edge: the span that caused
//!   this one (`0` for a root).
//!
//! Contexts travel two ways:
//!
//! * **In-process** via an ambient thread-local scope ([`current`],
//!   [`with`], [`enter`]): the event loop installs the head op's
//!   context around executor attempts, so even the simulator's
//!   `Phys*` ground-truth events — emitted synchronously inside the
//!   attempt — join the op's trace without any signature change.
//! * **Cross-device** as a 17-byte wire payload ([`TraceContext::to_wire`]
//!   / [`TraceContext::from_wire`]): version byte, `trace_id`, and the
//!   sender's `span_id`, big-endian. The core layer wraps these bytes in
//!   an NFC Forum external record appended to beam/peer messages and
//!   stripped before application delivery.
//!
//! Sampling is head-based: the decision is made once when a **root**
//! context is minted ([`SampleRate::admits`]) and inherited by every
//! child, local or remote. An unsampled context still carries ids (so
//! causality keeps flowing to any downstream hop) but is never attached
//! to emitted events.

use std::cell::Cell;

/// Wire format version of the cross-device context payload.
pub const TRACE_WIRE_VERSION: u8 = 1;

/// Size in bytes of the encoded cross-device context payload:
/// version byte + `trace_id` + sender `span_id`.
pub const TRACE_WIRE_LEN: usize = 17;

/// A causal trace context: the identity of one end-to-end story and of
/// the hop currently being worked on.
///
/// `Copy` and allocation-free on purpose: contexts ride the submit hot
/// path and must not disturb the zero-allocation cached-read gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identity of the whole causal tree, shared across devices.
    pub trace_id: u64,
    /// Identity of this hop (unique per recorder).
    pub span_id: u64,
    /// The span that caused this one; `0` for a root span.
    pub parent_span_id: u64,
    /// Head-based sampling decision, inherited from the root. Unsampled
    /// contexts propagate causality but are never stamped onto events.
    pub sampled: bool,
}

impl TraceContext {
    /// Mints a sampled root context (no parent).
    pub fn root(trace_id: u64, span_id: u64) -> TraceContext {
        TraceContext { trace_id, span_id, parent_span_id: 0, sampled: true }
    }

    /// Mints an unsampled root context: causality still flows to
    /// children, but no event carries it.
    pub fn unsampled_root(trace_id: u64, span_id: u64) -> TraceContext {
        TraceContext { trace_id, span_id, parent_span_id: 0, sampled: false }
    }

    /// Derives a child context: same trace, same sampling decision, this
    /// context's span as the parent edge.
    pub fn child(self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: self.span_id,
            sampled: self.sampled,
        }
    }

    /// Whether this context is a root (has no parent edge).
    pub fn is_root(&self) -> bool {
        self.parent_span_id == 0
    }

    /// Encodes the cross-device payload: `[version, trace_id BE,
    /// span_id BE]`. The sampling bit is *not* carried — a context on
    /// the wire was emitted by a sampled sender by construction, and the
    /// receiver re-applies its own stamping rules.
    pub fn to_wire(&self) -> [u8; TRACE_WIRE_LEN] {
        let mut bytes = [0u8; TRACE_WIRE_LEN];
        bytes[0] = TRACE_WIRE_VERSION;
        bytes[1..9].copy_from_slice(&self.trace_id.to_be_bytes());
        bytes[9..17].copy_from_slice(&self.span_id.to_be_bytes());
        bytes
    }

    /// Decodes a cross-device payload. The returned context carries the
    /// *sender's* span as `span_id`; the receiver should derive its own
    /// hop with [`TraceContext::child`]. Returns `None` for payloads of
    /// the wrong length or an unknown version (forward compatibility:
    /// unknown versions are ignored, not errors).
    pub fn from_wire(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != TRACE_WIRE_LEN || bytes[0] != TRACE_WIRE_VERSION {
            return None;
        }
        let trace_id = u64::from_be_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let span_id = u64::from_be_bytes(bytes[9..17].try_into().expect("8 bytes"));
        Some(TraceContext { trace_id, span_id, parent_span_id: 0, sampled: true })
    }
}

/// Head-based sampling rate for newly minted root traces.
///
/// The decision applies at the **root** only; children (including
/// remote ones) inherit it. With monotonically assigned trace ids,
/// [`SampleRate::one_in`] is exact — every n-th root is sampled — not
/// probabilistic, which keeps tests and benches deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleRate(u32);

impl SampleRate {
    /// Sample every trace (the default; right for tests and debugging).
    pub fn always() -> SampleRate {
        SampleRate(1)
    }

    /// Sample no traces (ids are still minted so causality is intact).
    pub fn never() -> SampleRate {
        SampleRate(0)
    }

    /// Sample one in `n` root traces. `one_in(0)` is [`SampleRate::never`],
    /// `one_in(1)` is [`SampleRate::always`].
    pub fn one_in(n: u32) -> SampleRate {
        SampleRate(n)
    }

    /// Whether the root trace numbered `trace_id` is sampled.
    pub fn admits(&self, trace_id: u64) -> bool {
        match self.0 {
            0 => false,
            n => trace_id.is_multiple_of(u64::from(n)),
        }
    }

    /// The denominator: 0 = never, 1 = always, n = one in n.
    pub fn denominator(&self) -> u32 {
        self.0
    }
}

impl Default for SampleRate {
    fn default() -> SampleRate {
        SampleRate::always()
    }
}

impl std::fmt::Display for SampleRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            0 => write!(f, "never"),
            n => write!(f, "1/{n}"),
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The ambient trace context of the calling thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// RAII guard restoring the previous ambient context on drop.
///
/// Returned by [`enter`]; hold it for the duration of the causally
/// scoped work.
#[derive(Debug)]
pub struct ScopeGuard {
    prev: Option<TraceContext>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Installs `ctx` as the calling thread's ambient context until the
/// returned guard drops (`None` clears the scope — useful to keep an
/// untraced callback from inheriting a stale context).
#[must_use = "dropping the guard immediately restores the previous scope"]
pub fn enter(ctx: Option<TraceContext>) -> ScopeGuard {
    ScopeGuard { prev: CURRENT.with(|c| c.replace(ctx)) }
}

/// Runs `f` with `ctx` as the ambient context, restoring the previous
/// scope afterwards (also on panic — the guard is RAII).
pub fn with<R>(ctx: Option<TraceContext>, f: impl FnOnce() -> R) -> R {
    let _guard = enter(ctx);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_inherits_trace_and_links_parent() {
        let root = TraceContext::root(7, 10);
        assert!(root.is_root());
        assert!(root.sampled);
        let child = root.child(11);
        assert_eq!(child.trace_id, 7);
        assert_eq!(child.span_id, 11);
        assert_eq!(child.parent_span_id, 10);
        assert!(child.sampled);
        assert!(!child.is_root());
        // Unsampled roots breed unsampled children.
        let dark = TraceContext::unsampled_root(8, 20).child(21);
        assert!(!dark.sampled);
    }

    #[test]
    fn wire_round_trips_and_rejects_garbage() {
        let ctx = TraceContext::root(0xDEAD_BEEF_0123_4567, 42);
        let wire = ctx.to_wire();
        assert_eq!(wire.len(), TRACE_WIRE_LEN);
        assert_eq!(wire[0], TRACE_WIRE_VERSION);
        let back = TraceContext::from_wire(&wire).expect("round trip");
        assert_eq!(back.trace_id, ctx.trace_id);
        assert_eq!(back.span_id, ctx.span_id);
        assert!(back.is_root(), "wire context is a fresh parent edge");
        // Wrong length, wrong version: ignored, not an error.
        assert_eq!(TraceContext::from_wire(&wire[..16]), None);
        let mut bad = wire;
        bad[0] = 99;
        assert_eq!(TraceContext::from_wire(&bad), None);
    }

    #[test]
    fn sample_rates_are_exact_on_monotonic_ids() {
        let always = SampleRate::always();
        let never = SampleRate::never();
        let tenth = SampleRate::one_in(10);
        assert!((1..=100).all(|n| always.admits(n)));
        assert!(!(1..=100).any(|n| never.admits(n)));
        assert_eq!((1..=100).filter(|&n| tenth.admits(n)).count(), 10);
        assert_eq!(SampleRate::default(), SampleRate::always());
        assert_eq!(SampleRate::one_in(0), SampleRate::never());
        assert_eq!(always.to_string(), "1/1");
        assert_eq!(never.to_string(), "never");
        assert_eq!(tenth.denominator(), 10);
    }

    #[test]
    fn ambient_scope_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceContext::root(1, 1);
        let b = a.child(2);
        with(Some(a), || {
            assert_eq!(current(), Some(a));
            with(Some(b), || assert_eq!(current(), Some(b)));
            assert_eq!(current(), Some(a));
            with(None, || assert_eq!(current(), None));
            assert_eq!(current(), Some(a));
        });
        assert_eq!(current(), None);
    }

    #[test]
    fn enter_guard_restores_on_drop() {
        let ctx = TraceContext::root(3, 9);
        let guard = enter(Some(ctx));
        assert_eq!(current(), Some(ctx));
        drop(guard);
        assert_eq!(current(), None);
    }
}
