//! The structured event model.
//!
//! Every instrumentation site in the middleware and the simulator emits
//! an [`EventKind`]; the [`Recorder`](crate::Recorder) stamps it with a
//! global monotonic sequence number and the caller-supplied timestamp to
//! form an [`ObsEvent`]. Identities are deliberately plain (`u64` phone
//! ids, `String` targets) so this crate depends on nothing above it.
//!
//! Two families of events share the stream:
//!
//! * **middleware events** (`Op*`, `TagDetected`, `Lease`, …) describe
//!   what the middleware *did*;
//! * **physical events** (`Phys*`) are the simulator's ground truth,
//!   bridged from `nfc-sim`'s trace plane: what was *actually* in radio
//!   range, which exchanges crossed the air, which beams were delivered.
//!
//! [`correlate`](crate::correlate) joins the two families by
//! `(phone, target)` to attribute operation latency.

use crate::json::ObjectWriter;
use crate::trace::TraceContext;

/// Sentinel for [`EventKind::PhysExchange::opcode`] when the exchanged
/// command carried no opcode byte (outside the `u8` range on purpose).
pub const NO_OPCODE: u64 = 256;

/// The kind of operation submitted to an event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read the NDEF payload of a tag.
    Read,
    /// Write an NDEF payload to a tag.
    Write,
    /// Permanently lock a tag read-only.
    MakeReadOnly,
    /// Push (beam) a payload to a peer phone.
    Push,
}

impl OpKind {
    /// Stable lower-case label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::MakeReadOnly => "make_read_only",
            OpKind::Push => "push",
        }
    }
}

/// How a single attempt of an operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt succeeded; the operation completes.
    Success,
    /// The attempt failed transiently (tag out of range, link glitch);
    /// the loop will retry until the deadline.
    Transient,
    /// The attempt failed permanently; the operation fails.
    Permanent,
}

impl AttemptOutcome {
    /// Stable lower-case label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            AttemptOutcome::Success => "success",
            AttemptOutcome::Transient => "transient",
            AttemptOutcome::Permanent => "permanent",
        }
    }
}

/// Terminal outcome of a whole operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation succeeded within its deadline.
    Succeeded,
    /// The operation failed permanently.
    Failed,
    /// The deadline elapsed before any attempt succeeded.
    TimedOut,
    /// The submitter cancelled the operation.
    Cancelled,
    /// The operation had not reached a terminal state when the event
    /// stream ended. Never emitted in an [`EventKind::OpCompleted`];
    /// only synthesized by [`correlate`](crate::correlate) for ops
    /// still in flight at the analysis horizon.
    Pending,
}

impl OpOutcome {
    /// Stable lower-case label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            OpOutcome::Succeeded => "succeeded",
            OpOutcome::Failed => "failed",
            OpOutcome::TimedOut => "timed_out",
            OpOutcome::Cancelled => "cancelled",
            OpOutcome::Pending => "pending",
        }
    }
}

/// What happened to a lease on a shared tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    /// A fresh (or expired-and-taken-over) lease was granted.
    Granted,
    /// An existing lease was renewed by its holder.
    Renewed,
    /// The holder released the lease early.
    Released,
    /// The lease was denied: another device holds it.
    Denied,
    /// Two devices raced for a free lease and this one lost.
    LostRace,
}

impl LeaseAction {
    /// Stable lower-case label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            LeaseAction::Granted => "granted",
            LeaseAction::Renewed => "renewed",
            LeaseAction::Released => "released",
            LeaseAction::Denied => "denied",
            LeaseAction::LostRace => "lost_race",
        }
    }
}

/// The payload of one observability event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    // ---- middleware: operation lifecycle -------------------------------
    /// An operation was submitted to an event loop queue.
    OpEnqueued {
        /// Correlation id, unique per recorder.
        op_id: u64,
        /// Name of the event loop thread (e.g. `tag-3`).
        loop_name: String,
        /// Phone that issued the operation.
        phone: u64,
        /// Target identity: tag uid, peer id, or `*` for undirected beam.
        target: String,
        /// What kind of operation.
        op: OpKind,
        /// Absolute deadline, in clock nanoseconds.
        deadline_nanos: u64,
    },
    /// One attempt at the head-of-queue operation finished.
    OpAttempt {
        /// Correlation id of the operation.
        op_id: u64,
        /// When the attempt started, in clock nanoseconds.
        started_nanos: u64,
        /// How long the attempt took.
        duration_nanos: u64,
        /// How the attempt ended.
        outcome: AttemptOutcome,
    },
    /// An operation reached a terminal state.
    OpCompleted {
        /// Correlation id of the operation.
        op_id: u64,
        /// Terminal outcome.
        outcome: OpOutcome,
    },

    // ---- middleware: discovery ----------------------------------------
    /// Discovery resolved a tag sighting to a far reference.
    TagDetected {
        /// Phone that saw the tag.
        phone: u64,
        /// Tag uid.
        target: String,
        /// `true` if this tag was seen before (redetection).
        redetection: bool,
    },
    /// Discovery pre-read found an empty (blank) tag.
    EmptyTagDetected {
        /// Phone that saw the tag.
        phone: u64,
        /// Tag uid.
        target: String,
    },

    // ---- middleware: beam / peer receive side --------------------------
    /// A beamed payload arrived and was dispatched to a listener.
    BeamReceived {
        /// Receiving phone.
        phone: u64,
        /// Sending phone.
        from: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A typed peer message arrived on a peer inbox.
    PeerReceived {
        /// Receiving phone.
        phone: u64,
        /// Sending phone.
        from: u64,
        /// Payload size in bytes.
        bytes: u64,
    },

    // ---- middleware: leases -------------------------------------------
    /// A lease transition on a shared tag.
    Lease {
        /// Phone performing the transition.
        phone: u64,
        /// Tag uid the lease lives on.
        target: String,
        /// What happened.
        action: LeaseAction,
        /// Lease expiry in clock nanoseconds (0 when not applicable).
        expires_nanos: u64,
    },

    // ---- explicit spans -------------------------------------------------
    /// A named span closed (see [`Span`](crate::Span)).
    SpanClosed {
        /// Static span name (e.g. `lease.acquire`).
        name: &'static str,
        /// Phone the span belongs to.
        phone: u64,
        /// When the span opened, in clock nanoseconds.
        started_nanos: u64,
        /// Span duration in nanoseconds.
        duration_nanos: u64,
    },

    // ---- physical ground truth (bridged from nfc-sim) -------------------
    /// A tag physically entered a phone's radio range.
    PhysTagEntered {
        /// Phone whose range the tag entered.
        phone: u64,
        /// Tag uid.
        target: String,
    },
    /// A tag physically left a phone's radio range.
    PhysTagLeft {
        /// Phone whose range the tag left.
        phone: u64,
        /// Tag uid.
        target: String,
    },
    /// A raw NDEF exchange crossed the simulated air interface.
    PhysExchange {
        /// Phone driving the exchange.
        phone: u64,
        /// Tag uid.
        target: String,
        /// First command byte (the opcode); `NO_OPCODE` when the
        /// command was empty.
        opcode: u64,
        /// Whether the exchange succeeded at the radio level.
        ok: bool,
    },
    /// A beam crossed the simulated air interface.
    PhysBeam {
        /// Sending phone.
        phone: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Number of peers the payload was delivered to.
        delivered: u64,
    },
    /// Another phone physically entered P2P range.
    PhysPeerEntered {
        /// Observing phone.
        phone: u64,
        /// The peer that entered, rendered like a target (`phone-N`).
        target: String,
    },
    /// Another phone physically left P2P range.
    PhysPeerLeft {
        /// Observing phone.
        phone: u64,
        /// The peer that left, rendered like a target (`phone-N`).
        target: String,
    },
    /// The simulator's fault injector fired on an exchange — injected
    /// ground truth, correlatable with the middleware's recovery events.
    FaultInjected {
        /// Phone driving the faulted exchange.
        phone: u64,
        /// Tag uid.
        target: String,
        /// Stable label of the injected fault class (e.g. `torn_write`).
        fault: &'static str,
    },
}

impl EventKind {
    /// Stable snake-case type tag used as the `"type"` field in JSONL.
    pub fn type_label(&self) -> &'static str {
        match self {
            EventKind::OpEnqueued { .. } => "op_enqueued",
            EventKind::OpAttempt { .. } => "op_attempt",
            EventKind::OpCompleted { .. } => "op_completed",
            EventKind::TagDetected { .. } => "tag_detected",
            EventKind::EmptyTagDetected { .. } => "empty_tag_detected",
            EventKind::BeamReceived { .. } => "beam_received",
            EventKind::PeerReceived { .. } => "peer_received",
            EventKind::Lease { .. } => "lease",
            EventKind::SpanClosed { .. } => "span",
            EventKind::PhysTagEntered { .. } => "phys_tag_entered",
            EventKind::PhysTagLeft { .. } => "phys_tag_left",
            EventKind::PhysExchange { .. } => "phys_exchange",
            EventKind::PhysBeam { .. } => "phys_beam",
            EventKind::PhysPeerEntered { .. } => "phys_peer_entered",
            EventKind::PhysPeerLeft { .. } => "phys_peer_left",
            EventKind::FaultInjected { .. } => "fault_injected",
        }
    }
}

/// One recorded event: a sequence number, a timestamp, and a payload.
///
/// `seq` is globally monotonic per [`Recorder`](crate::Recorder) and
/// gap-free as long as no sink drops events, which makes it usable both
/// for total ordering and for loss detection. `at_nanos` is on whatever
/// clock the emitting layer uses (the sim's virtual clock in tests, a
/// monotonic wall clock on hardware).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Global monotonic sequence number (per recorder).
    pub seq: u64,
    /// Timestamp in clock nanoseconds.
    pub at_nanos: u64,
    /// The causal trace context this event belongs to, when the emitting
    /// site was traced and the trace is sampled (see [`crate::trace`]).
    pub trace: Option<TraceContext>,
    /// The event payload.
    pub kind: EventKind,
}

impl ObsEvent {
    /// Render this event as a single flat JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("seq", self.seq).u64("at_ns", self.at_nanos).str("type", self.kind.type_label());
        match &self.kind {
            EventKind::OpEnqueued { op_id, loop_name, phone, target, op, deadline_nanos } => {
                w.u64("op_id", *op_id)
                    .str("loop", loop_name)
                    .u64("phone", *phone)
                    .str("target", target)
                    .str("op", op.label())
                    .u64("deadline_ns", *deadline_nanos);
            }
            EventKind::OpAttempt { op_id, started_nanos, duration_nanos, outcome } => {
                w.u64("op_id", *op_id)
                    .u64("started_ns", *started_nanos)
                    .u64("duration_ns", *duration_nanos)
                    .str("outcome", outcome.label());
            }
            EventKind::OpCompleted { op_id, outcome } => {
                w.u64("op_id", *op_id).str("outcome", outcome.label());
            }
            EventKind::TagDetected { phone, target, redetection } => {
                w.u64("phone", *phone).str("target", target).bool("redetection", *redetection);
            }
            EventKind::EmptyTagDetected { phone, target } => {
                w.u64("phone", *phone).str("target", target);
            }
            EventKind::BeamReceived { phone, from, bytes }
            | EventKind::PeerReceived { phone, from, bytes } => {
                w.u64("phone", *phone).u64("from", *from).u64("bytes", *bytes);
            }
            EventKind::Lease { phone, target, action, expires_nanos } => {
                w.u64("phone", *phone)
                    .str("target", target)
                    .str("action", action.label())
                    .u64("expires_ns", *expires_nanos);
            }
            EventKind::SpanClosed { name, phone, started_nanos, duration_nanos } => {
                w.str("name", name)
                    .u64("phone", *phone)
                    .u64("started_ns", *started_nanos)
                    .u64("duration_ns", *duration_nanos);
            }
            EventKind::PhysTagEntered { phone, target }
            | EventKind::PhysTagLeft { phone, target }
            | EventKind::PhysPeerEntered { phone, target }
            | EventKind::PhysPeerLeft { phone, target } => {
                w.u64("phone", *phone).str("target", target);
            }
            EventKind::PhysExchange { phone, target, opcode, ok } => {
                w.u64("phone", *phone).str("target", target).u64("opcode", *opcode).bool("ok", *ok);
            }
            EventKind::PhysBeam { phone, bytes, delivered } => {
                w.u64("phone", *phone).u64("bytes", *bytes).u64("delivered", *delivered);
            }
            EventKind::FaultInjected { phone, target, fault } => {
                w.u64("phone", *phone).str("target", target).str("fault", fault);
            }
        }
        if let Some(trace) = &self.trace {
            w.u64("trace_id", trace.trace_id).u64("span_id", trace.span_id);
            if trace.parent_span_id != 0 {
                w.u64("parent_span_id", trace.parent_span_id);
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_flat_and_tagged() {
        let ev = ObsEvent {
            seq: 3,
            at_nanos: 1_500,
            trace: None,
            kind: EventKind::OpEnqueued {
                op_id: 9,
                loop_name: "tag-1".into(),
                phone: 0,
                target: "tag-1".into(),
                op: OpKind::Read,
                deadline_nanos: 10_000,
            },
        };
        let json = ev.to_json();
        assert!(json.starts_with("{\"seq\":3,\"at_ns\":1500,\"type\":\"op_enqueued\""));
        assert!(json.contains("\"op\":\"read\""));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn trace_fields_render_only_when_present() {
        let mut ev = ObsEvent {
            seq: 1,
            at_nanos: 10,
            trace: None,
            kind: EventKind::OpCompleted { op_id: 4, outcome: OpOutcome::Succeeded },
        };
        assert!(!ev.to_json().contains("trace_id"));
        ev.trace = Some(TraceContext::root(6, 2));
        let json = ev.to_json();
        assert!(json.contains("\"trace_id\":6"));
        assert!(json.contains("\"span_id\":2"));
        // A root span has no parent edge to render.
        assert!(!json.contains("parent_span_id"));
        ev.trace = Some(TraceContext::root(6, 2).child(3));
        assert!(ev.to_json().contains("\"parent_span_id\":2"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OpKind::MakeReadOnly.label(), "make_read_only");
        assert_eq!(AttemptOutcome::Transient.label(), "transient");
        assert_eq!(OpOutcome::TimedOut.label(), "timed_out");
        assert_eq!(LeaseAction::LostRace.label(), "lost_race");
    }
}
