//! OpenMetrics/Prometheus text exposition: a renderer over
//! [`MetricsSnapshot`] plus a tiny dependency-free HTTP/1.1 listener so
//! a real Prometheus can scrape a running swarm (or a future
//! `morena-relayd`).
//!
//! The renderer speaks the OpenMetrics text format: `# TYPE` metadata,
//! `_total`-suffixed counters, cumulative histogram buckets with an
//! explicit `+Inf` bound and seconds-based `le` labels (the registry's
//! histograms are nanoseconds internally; Prometheus convention is
//! base-unit seconds), and a terminating `# EOF` line. Metric names are
//! sanitized from the registry's dotted names (`ops.submitted` →
//! `morena_ops_submitted`); anything outside `[a-zA-Z0-9_]` maps to
//! `_`, so exotic names degrade, never corrupt the exposition.
//!
//! The [`ExpositionServer`] is deliberately minimal rather than a web
//! framework: one accept thread, serial request handling (concurrency
//! bounded at one in-flight scrape — a scraper pool hammering the port
//! queues in the kernel backlog), read/write timeouts so a stuck client
//! cannot wedge the thread, an 8 KiB request cap, `Connection: close`
//! on every response, and a prompt, joining shutdown. Each scrape
//! evaluates the watchdog against a fresh inspector snapshot, so the
//! `morena_health` gauge is live, not cached.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::inspect::{HealthReport, InspectorSnapshot, Watchdog, WatchdogConfig};
use crate::metrics::{MetricsSnapshot, BUCKET_BOUNDS_NANOS};
use crate::recorder::Recorder;
use crate::timeseries::health_level;

/// The `Content-Type` the exposition endpoint serves.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Sanitize a registry metric name into an OpenMetrics-legal name with
/// the `morena_` namespace prefix: `op.attempt_ns` →
/// `morena_op_attempt_ns`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("morena_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn seconds(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Render a metrics snapshot (and optionally a live inspector snapshot
/// plus its health report) as OpenMetrics text, terminated by `# EOF`.
///
/// Counters render as `<name>_total`; gauges as-is; histograms as
/// cumulative `_bucket{le="…"}` series in seconds with `+Inf`, `_sum`,
/// and `_count`. The inspector contributes `morena_health` (0 healthy /
/// 1 degraded / 2 stalled — see
/// [`health_level`](crate::timeseries::health_level)),
/// `morena_health_findings`, `morena_mem_bytes`,
/// `morena_queue_depth`, and `morena_loops`.
pub fn render_openmetrics(
    metrics: &MetricsSnapshot,
    inspect: Option<(&InspectorSnapshot, &HealthReport)>,
) -> String {
    let mut out = String::with_capacity(4096);
    for (name, &value) in &metrics.counters {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name}_total {value}\n"));
    }
    for (name, &value) in &metrics.gauges {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, hist) in &metrics.histograms {
        // Histograms are named `*_ns` internally; the exposition is in
        // seconds, so swap the unit suffix rather than lying about it.
        let base = sanitize_metric_name(name);
        let base = base.strip_suffix("_ns").map(|b| format!("{b}_seconds")).unwrap_or(base);
        out.push_str(&format!("# TYPE {base} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &bound) in BUCKET_BOUNDS_NANOS.iter().enumerate() {
            cumulative += hist.counts.get(i).copied().unwrap_or(0);
            out.push_str(&format!("{base}_bucket{{le=\"{}\"}} {cumulative}\n", seconds(bound)));
        }
        out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
        out.push_str(&format!("{base}_sum {}\n", seconds(hist.sum_nanos)));
        out.push_str(&format!("{base}_count {}\n", hist.count()));
    }
    if let Some((snapshot, report)) = inspect {
        let queue_depth: u64 = snapshot.loops().map(|l| l.queue_depth as u64).sum();
        let loops = snapshot.loops().count();
        out.push_str(&format!(
            "# TYPE morena_health gauge\nmorena_health {}\n",
            health_level(report.health)
        ));
        out.push_str(&format!(
            "# TYPE morena_health_findings gauge\nmorena_health_findings {}\n",
            report.findings.len()
        ));
        out.push_str(&format!(
            "# TYPE morena_mem_bytes gauge\nmorena_mem_bytes {}\n",
            report.total_mem_bytes
        ));
        out.push_str(&format!(
            "# TYPE morena_queue_depth gauge\nmorena_queue_depth {queue_depth}\n"
        ));
        out.push_str(&format!("# TYPE morena_loops gauge\nmorena_loops {loops}\n"));
    }
    out.push_str("# EOF\n");
    out
}

/// The blocking scrape endpoint. Construct with
/// [`ExpositionServer::bind`]; the listener thread stops and joins on
/// [`ExpositionServer::shutdown`] or drop.
pub struct ExpositionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl ExpositionServer {
    /// Bind `addr` (use port 0 for an ephemeral port — see
    /// [`ExpositionServer::local_addr`]) and serve scrapes of
    /// `recorder`'s metrics and health. `clock` stamps the inspector
    /// snapshot each scrape with the world's notion of now.
    pub fn bind(
        addr: impl ToSocketAddrs,
        recorder: Arc<Recorder>,
        clock: impl Fn() -> u64 + Send + 'static,
        watchdog: WatchdogConfig,
    ) -> std::io::Result<ExpositionServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_scrapes = Arc::clone(&scrapes);
        let handle = std::thread::Builder::new()
            .name("morena-expose".into())
            .spawn(move || {
                let watchdog = Watchdog::with_config(watchdog);
                while !thread_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ =
                                serve_one(stream, &recorder, &clock, &watchdog, &thread_scrapes);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .expect("spawn exposition thread");
        Ok(ExpositionServer { addr, stop, scrapes, handle: Some(handle) })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Successful scrapes served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stop accepting, finish any in-flight response, and join the
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ExpositionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(
    mut stream: TcpStream,
    recorder: &Arc<Recorder>,
    clock: &(impl Fn() -> u64 + Send),
    watchdog: &Watchdog,
    scrapes: &AtomicU64,
) -> std::io::Result<()> {
    // The accepted socket may inherit the listener's non-blocking mode
    // on some platforms; this handler wants plain blocking reads under
    // a timeout.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read headers up to the blank line, capped at 8 KiB.
    let mut request = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&buf[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 8 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&request);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        let now = clock();
        let metrics = recorder.metrics().snapshot();
        let snapshot = recorder.inspector().snapshot(now);
        let report = watchdog.evaluate_with_metrics(&snapshot, &metrics);
        recorder.metrics().counter("obs.expose.scrapes").inc();
        scrapes.fetch_add(1, Ordering::Relaxed);
        (
            "200 OK",
            OPENMETRICS_CONTENT_TYPE,
            render_openmetrics(&metrics, Some((&snapshot, &report))),
        )
    } else if path == "/health" {
        let now = clock();
        let snapshot = recorder.inspector().snapshot(now);
        let report = watchdog.evaluate_with_metrics(&snapshot, &recorder.metrics().snapshot());
        ("200 OK", "application/json; charset=utf-8", report.to_json())
    } else {
        ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string())
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitizes_names_into_the_namespace() {
        assert_eq!(sanitize_metric_name("ops.submitted"), "morena_ops_submitted");
        assert_eq!(sanitize_metric_name("weird name/π"), "morena_weird_name__");
    }

    #[test]
    fn renders_counters_gauges_histograms_and_eof() {
        let reg = MetricsRegistry::new();
        reg.counter("ops.submitted").add(4);
        reg.gauge("queue.depth").set(-2);
        reg.histogram("op.attempt_ns").observe(1_500);
        reg.histogram("op.attempt_ns").observe(3_000_000);
        let text = render_openmetrics(&reg.snapshot(), None);
        assert!(
            text.contains("# TYPE morena_ops_submitted counter\nmorena_ops_submitted_total 4\n")
        );
        assert!(text.contains("# TYPE morena_queue_depth gauge\nmorena_queue_depth -2\n"));
        // Unit-swapped histogram name with cumulative seconds buckets.
        assert!(text.contains("# TYPE morena_op_attempt_seconds histogram\n"));
        assert!(text.contains("morena_op_attempt_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("morena_op_attempt_seconds_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ordered() {
        let reg = MetricsRegistry::new();
        reg.histogram("op.total_ns").observe(1_500); // (1us, 2us]
        reg.histogram("op.total_ns").observe(1_500);
        reg.histogram("op.total_ns").observe(500_000_000_000); // overflow
        let text = render_openmetrics(&reg.snapshot(), None);
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("morena_op_total_seconds_bucket{le=\"") else {
                continue;
            };
            let (le, count) = rest.split_once("\"} ").unwrap();
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
            let count: u64 = count.parse().unwrap();
            assert!(le > last_le, "le must increase: {line}");
            assert!(count >= last_count, "cumulative counts must not decrease: {line}");
            last_le = le;
            last_count = count;
            buckets += 1;
        }
        assert_eq!(buckets, BUCKET_BOUNDS_NANOS.len() + 1);
        assert_eq!(last_count, 3); // +Inf sees everything, incl. overflow
    }

    #[test]
    fn server_serves_scrapes_over_real_tcp_and_shuts_down() {
        let recorder = Arc::new(Recorder::new());
        recorder.metrics().counter("ops.submitted").add(7);
        let mut server = ExpositionServer::bind(
            ("127.0.0.1", 0),
            Arc::clone(&recorder),
            || 42,
            WatchdogConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();

        let scrape = |path: &str| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            out
        };

        let response = scrape("/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "got: {response}");
        assert!(response.contains(OPENMETRICS_CONTENT_TYPE));
        assert!(response.contains("morena_ops_submitted_total 7"));
        assert!(response.contains("morena_health 0"));
        assert!(response.trim_end().ends_with("# EOF"));

        let health = scrape("/health");
        assert!(health.contains("\"health\":\"healthy\""));
        assert!(scrape("/nope").starts_with("HTTP/1.1 404"));
        assert_eq!(server.scrapes(), 1); // only /metrics counts as a scrape
        assert_eq!(recorder.metrics().snapshot().counter("obs.expose.scrapes"), 1);

        let started = std::time::Instant::now();
        server.shutdown();
        server.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may let one last connect through the dead backlog;
                // what matters is nothing answers.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 1];
                !matches!(s.read(&mut buf), Ok(1..))
            }
        );
    }
}
