//! Metrics registry: counters, gauges, and fixed-bucket latency
//! histograms keyed by static names.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones; registration is lazy and idempotent, so instrumentation sites
//! can simply ask for `registry.counter("ops.submitted")` each time or
//! cache the handle — both hit the same underlying atomic. Snapshots are
//! consistent enough for reporting (each cell is read atomically) and
//! render to both a human table and JSON.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::json::ObjectWriter;

/// Histogram bucket upper bounds in nanoseconds: a 1-2-5 ladder from
/// 1 µs to 100 s. Observations above the last bound land in an implicit
/// overflow bucket.
pub const BUCKET_BOUNDS_NANOS: [u64; 25] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
];

const BUCKETS: usize = BUCKET_BOUNDS_NANOS.len() + 1; // + overflow

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set / add / sub).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_NANOS`].
///
/// Lock-free: `observe` is a bounds lookup plus three relaxed atomic
/// adds. Quantile estimates come from [`HistogramSnapshot::quantile`].
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Index of the bucket an observation falls into.
    fn bucket_index(nanos: u64) -> usize {
        BUCKET_BOUNDS_NANOS.partition_point(|&bound| bound < nanos).min(BUCKETS - 1)
    }

    /// Record one observation, in nanoseconds.
    #[inline]
    pub fn observe(&self, nanos: u64) {
        self.counts[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Record one observation given as a [`std::time::Duration`].
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Take a point-in-time snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; `counts[i]` covers
    /// `(BUCKET_BOUNDS_NANOS[i-1], BUCKET_BOUNDS_NANOS[i]]`, with a final
    /// overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values, in nanoseconds (saturating on read
    /// side only in the sense that it wraps like the live counter).
    pub sum_nanos: u64,
    /// Largest observed value, in nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation in nanoseconds, `None` when empty.
    pub fn mean_nanos(&self) -> Option<u64> {
        self.sum_nanos.checked_div(self.count())
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) in nanoseconds by
    /// linear interpolation inside the containing bucket. Returns `None`
    /// for an empty histogram; the overflow bucket reports the observed
    /// maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += count;
            if cumulative >= rank {
                if i >= BUCKET_BOUNDS_NANOS.len() {
                    return Some(self.max_nanos);
                }
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NANOS[i - 1] };
                let upper = BUCKET_BOUNDS_NANOS[i];
                let into = (rank - before) as f64 / count as f64;
                return Some(lower + ((upper - lower) as f64 * into).round() as u64);
            }
        }
        Some(self.max_nanos)
    }

    /// Median estimate in nanoseconds.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate in nanoseconds.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate in nanoseconds.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Bucket-wise difference `self - earlier`, for per-window
    /// quantiles from two cumulative snapshots of the same histogram.
    ///
    /// Counts and the sum subtract saturating; `max_nanos` keeps the
    /// *later* snapshot's value because a maximum cannot be un-observed
    /// — the window's true max is unknowable from two cumulative
    /// snapshots, so the reported one is an upper bound (best-effort,
    /// exact whenever the window contains the lifetime maximum).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_sub(earlier.counts.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            counts,
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            max_nanos: self.max_nanos,
        }
    }

    fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("count", self.count())
            .u64("sum_ns", self.sum_nanos)
            .u64("max_ns", self.max_nanos)
            .u64("p50_ns", self.p50().unwrap_or(0))
            .u64("p95_ns", self.p95().unwrap_or(0))
            .u64("p99_ns", self.p99().unwrap_or(0));
        w.finish()
    }
}

struct Registry<T> {
    entries: RwLock<HashMap<&'static str, T>>,
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Self { entries: RwLock::new(HashMap::new()) }
    }
}

impl<T: Clone> Registry<T> {
    fn get_or_insert(&self, name: &'static str, make: impl FnOnce() -> T) -> T {
        if let Some(found) = self.entries.read().expect("metrics lock").get(name) {
            return found.clone();
        }
        let mut entries = self.entries.write().expect("metrics lock");
        entries.entry(name).or_insert_with(make).clone()
    }

    fn for_each(&self, mut f: impl FnMut(&'static str, &T)) {
        let entries = self.entries.read().expect("metrics lock");
        let mut names: Vec<_> = entries.keys().copied().collect();
        names.sort_unstable();
        for name in names {
            f(name, &entries[name]);
        }
    }
}

/// Registry of named counters, gauges, and histograms.
///
/// One registry lives inside each [`Recorder`](crate::Recorder); the
/// metric surface is always available (independently of whether event
/// tracing is enabled) so cheap counters can stay on in production.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Registry<Counter>,
    gauges: Registry<Gauge>,
    histograms: Registry<Arc<Histogram>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up (or lazily create) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters.get_or_insert(name, || Counter(Arc::new(AtomicU64::new(0))))
    }

    /// Look up (or lazily create) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges.get_or_insert(name, || Gauge(Arc::new(AtomicI64::new(0))))
    }

    /// Look up (or lazily create) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histograms.get_or_insert(name, || Arc::new(Histogram::new()))
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        self.counters.for_each(|name, c| {
            snap.counters.insert(name.to_string(), c.get());
        });
        self.gauges.for_each(|name, g| {
            snap.gauges.insert(name.to_string(), g.get());
        });
        self.histograms.for_each(|name, h| {
            snap.histograms.insert(name.to_string(), h.snapshot());
        });
        snap
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, `0` when it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, `0` when it was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, when registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The change since `earlier`: counters subtract (saturating),
    /// histograms subtract bucket-wise (see
    /// [`HistogramSnapshot::delta`]), gauges keep this snapshot's
    /// values (a level, not a flow, has no meaningful difference).
    ///
    /// Metrics absent from `earlier` are treated as starting at zero,
    /// so a window that first touches a metric reports its full value.
    /// This is how benches report per-window rates instead of
    /// process-lifetime totals.
    ///
    /// **Counter resets clamp to zero.** If `earlier` is *ahead* of
    /// `self` for some counter or histogram bucket — a restarted
    /// process scraped across the restart, a registry swapped under a
    /// long-lived sampler — the subtraction saturates and that window
    /// reports `0`, never a negative rate. One window of undercounting
    /// is the defined cost of a reset; consumers (the sampler's rate
    /// series, the bench reports) can rely on deltas being
    /// non-negative.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, &v)| (name.clone(), v.saturating_sub(earlier.counter(name))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, hist)| {
                    let windowed = match earlier.histograms.get(name) {
                        Some(prev) => hist.delta(prev),
                        None => hist.clone(),
                    };
                    (name.clone(), windowed)
                })
                .collect(),
        }
    }

    /// Render the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = ObjectWriter::new();
        for (name, value) in &self.counters {
            counters.u64(name, *value);
        }
        let mut gauges = ObjectWriter::new();
        for (name, value) in &self.gauges {
            gauges.i64(name, *value);
        }
        let mut histograms = ObjectWriter::new();
        for (name, hist) in &self.histograms {
            histograms.raw(name, &hist.to_json());
        }
        let mut root = ObjectWriter::new();
        root.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms.finish());
        root.finish()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "counter   {name:<28} {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "gauge     {name:<28} {value}")?;
        }
        for (name, hist) in &self.histograms {
            writeln!(
                f,
                "histogram {name:<28} n={} mean={} p50={} p95={} p99={} max={}",
                hist.count(),
                fmt_nanos(hist.mean_nanos().unwrap_or(0)),
                fmt_nanos(hist.p50().unwrap_or(0)),
                fmt_nanos(hist.p95().unwrap_or(0)),
                fmt_nanos(hist.p99().unwrap_or(0)),
                fmt_nanos(hist.max_nanos),
            )?;
        }
        Ok(())
    }
}

/// Format a nanosecond quantity with a human unit (`12.3ms`).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Format a byte quantity with a human unit (`12.3MiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.1}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        // A value exactly on a bound belongs to that bound's bucket.
        assert_eq!(Histogram::bucket_index(1_000), 0);
        assert_eq!(Histogram::bucket_index(1_001), 1);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(100_000_000_000), 24);
        // Past the last bound: overflow bucket.
        assert_eq!(Histogram::bucket_index(100_000_000_001), 25);
        assert_eq!(Histogram::bucket_index(u64::MAX), 25);
    }

    #[test]
    fn histogram_counts_land_in_expected_buckets() {
        let h = Histogram::new();
        h.observe(500); // bucket 0 (≤1us)
        h.observe(1_500); // bucket 1 (≤2us)
        h.observe(3_000_000); // ≤5ms bucket
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.counts[0], 1);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(snap.counts[Histogram::bucket_index(3_000_000)], 1);
        assert_eq!(snap.sum_nanos, 3_001_500 + 500);
        assert_eq!(snap.max_nanos, 3_000_000);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.quantile(1.0), None);
        assert_eq!(snap.mean_nanos(), None);
        assert_eq!(snap.max_nanos, 0);
    }

    #[test]
    fn out_of_range_quantiles_are_none_even_when_populated() {
        let h = Histogram::new();
        h.observe(1_500);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), None);
        assert_eq!(snap.quantile(-0.1), None);
        assert_eq!(snap.quantile(1.1), None);
        assert_eq!(snap.quantile(f64::NAN), None);
        assert!(snap.quantile(1.0).is_some());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations spread uniformly in the (1ms, 2ms] bucket.
        for i in 0..100 {
            h.observe(1_000_001 + i * 9_000);
        }
        let snap = h.snapshot();
        let p50 = snap.p50().unwrap();
        // Interpolated median of a single bucket = halfway into it.
        assert_eq!(p50, 1_500_000);
        let p99 = snap.p99().unwrap();
        assert_eq!(p99, 1_990_000);
    }

    #[test]
    fn quantiles_across_buckets_respect_rank() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(800); // ≤1us bucket
        }
        for _ in 0..10 {
            h.observe(40_000_000); // (20ms, 50ms] bucket
        }
        let snap = h.snapshot();
        assert!(snap.p50().unwrap() <= 1_000);
        let p95 = snap.p95().unwrap();
        assert!((20_000_000..=50_000_000).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = Histogram::new();
        h.observe(500_000_000_000); // beyond the last bound
        let snap = h.snapshot();
        assert_eq!(snap.quantile(1.0), Some(500_000_000_000));
    }

    #[test]
    fn overflow_quantiles_clamp_to_max_not_a_bound() {
        // Any rank landing in the overflow bucket must report the real
        // observed maximum, never interpolate past the last bound.
        let h = Histogram::new();
        for _ in 0..50 {
            h.observe(800); // ≤1us bucket
        }
        for _ in 0..50 {
            h.observe(300_000_000_000); // overflow bucket
        }
        let snap = h.snapshot();
        assert_eq!(snap.p95(), Some(300_000_000_000));
        assert_eq!(snap.p99(), Some(300_000_000_000));
        assert_eq!(snap.quantile(1.0), Some(300_000_000_000));
    }

    #[test]
    fn max_nanos_bounds_any_in_range_estimate_to_its_bucket() {
        // Interpolation can place an estimate above the true max inside
        // the max's own bucket, but never above the bucket's upper
        // bound; the exact max is always available via `max_nanos`.
        let h = Histogram::new();
        h.observe(1_200_000); // lone observation in the (1ms, 2ms] bucket
        let snap = h.snapshot();
        assert_eq!(snap.max_nanos, 1_200_000);
        let p50 = snap.p50().unwrap();
        let idx = Histogram::bucket_index(snap.max_nanos);
        assert!(p50 <= BUCKET_BOUNDS_NANOS[idx], "estimate {p50} left the max's bucket");
        // With every sample in the overflow bucket the estimate and the
        // exact max agree precisely.
        let h = Histogram::new();
        h.observe(200_000_000_001);
        h.observe(400_000_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.p50(), Some(snap.max_nanos));
        assert_eq!(snap.max_nanos, 400_000_000_000);
    }

    #[test]
    fn sum_nanos_wraps_modulo_u64_by_design() {
        // The live counter is a relaxed `AtomicU64` that wraps on
        // overflow; a snapshot surfaces the wrapped value rather than
        // saturating. ~584 years of summed nanoseconds per wrap makes
        // this a documented curiosity, not a practical hazard.
        let h = Histogram::new();
        h.observe(u64::MAX - 5);
        h.observe(10);
        let snap = h.snapshot();
        assert_eq!(snap.sum_nanos, 4); // (u64::MAX - 5) + 10, mod 2^64
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max_nanos, u64::MAX - 5);
        // The wrapped sum propagates into the (now meaningless) mean —
        // count and max stay trustworthy.
        assert_eq!(snap.mean_nanos(), Some(2));
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.counter("x").add(2);
        assert_eq!(reg.counter("x").get(), 3);
        reg.gauge("g").set(5);
        reg.gauge("g").sub(2);
        assert_eq!(reg.gauge("g").get(), 3);
        reg.histogram("h").observe(10);
        assert_eq!(reg.histogram("h").snapshot().count(), 1);
    }

    #[test]
    fn histogram_delta_reports_the_window_only() {
        let h = Histogram::new();
        h.observe(1_500);
        h.observe(1_500);
        let earlier = h.snapshot();
        h.observe(1_500);
        h.observe(40_000_000);
        let windowed = h.snapshot().delta(&earlier);
        assert_eq!(windowed.count(), 2);
        assert_eq!(windowed.counts[1], 1); // one more in (1us, 2us]
        assert_eq!(windowed.sum_nanos, 1_500 + 40_000_000);
        // Max is best-effort: the later snapshot's lifetime max, which
        // here happens to be exact because the window contains it.
        assert_eq!(windowed.max_nanos, 40_000_000);
        let p99 = windowed.p99().unwrap();
        assert!((20_000_000..=50_000_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("ops.completed").add(10);
        reg.gauge("queue.depth").set(7);
        let earlier = reg.snapshot();
        reg.counter("ops.completed").add(5);
        reg.counter("ops.retried").add(2); // born inside the window
        reg.gauge("queue.depth").set(3);
        reg.histogram("op.total_ns").observe(1_000);
        let windowed = reg.snapshot().delta(&earlier);
        assert_eq!(windowed.counter("ops.completed"), 5);
        assert_eq!(windowed.counter("ops.retried"), 2);
        assert_eq!(windowed.gauge("queue.depth"), 3);
        assert_eq!(windowed.histogram("op.total_ns").unwrap().count(), 1);
        // A counter that went "backwards" (registry swap) saturates.
        let later = MetricsSnapshot::default();
        assert_eq!(later.delta(&earlier).counter("ops.completed"), 0);
    }

    #[test]
    fn delta_across_counter_reset_clamps_to_zero() {
        // A "later" snapshot from a restarted registry: every cell is
        // behind the earlier one. The window must read 0 everywhere,
        // never wrap negative.
        let before = MetricsRegistry::new();
        before.counter("ops.completed").add(1_000);
        before.histogram("op.total_ns").observe(1_500);
        before.histogram("op.total_ns").observe(1_500);
        let earlier = before.snapshot();

        let restarted = MetricsRegistry::new();
        restarted.counter("ops.completed").add(3); // fresh process, small count
        restarted.histogram("op.total_ns").observe(1_500);
        let windowed = restarted.snapshot().delta(&earlier);

        assert_eq!(windowed.counter("ops.completed"), 0);
        let hist = windowed.histogram("op.total_ns").unwrap();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.sum_nanos, 0);
        assert!(hist.counts.iter().all(|&c| c == 0), "no bucket may underflow");
    }

    #[test]
    fn delta_partial_reset_clamps_per_cell_not_per_snapshot() {
        // Only one counter went backwards; the other still reports its
        // true window.
        let mut earlier = MetricsSnapshot::default();
        earlier.counters.insert("a".into(), 100);
        earlier.counters.insert("b".into(), 5);
        let mut later = MetricsSnapshot::default();
        later.counters.insert("a".into(), 40); // reset
        later.counters.insert("b".into(), 9);
        let windowed = later.delta(&earlier);
        assert_eq!(windowed.counter("a"), 0);
        assert_eq!(windowed.counter("b"), 4);
    }

    #[test]
    fn fmt_bytes_picks_human_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.0MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00GiB");
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("ops.submitted").add(4);
        reg.gauge("queue.depth").set(-1);
        reg.histogram("op.attempt_ns").observe(1_500);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"counters\":{\"ops.submitted\":4}"));
        assert!(json.contains("\"gauges\":{\"queue.depth\":-1}"));
        assert!(json.contains("\"op.attempt_ns\":{\"count\":1"));
    }
}
