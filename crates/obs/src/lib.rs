//! # morena-obs
//!
//! The unified tracing and metrics layer of the MORENA reproduction: a
//! lightweight structured event model, pluggable sinks, a metrics
//! registry with fixed-bucket latency histograms, and a correlation
//! module that joins middleware operation events with the simulator's
//! physical ground truth.
//!
//! The middleware's core abstraction — a far reference with a private
//! event loop that retries asynchronous operations while tags drift in
//! and out of range — is exactly the kind of intermittent, retry-heavy
//! system that cannot be tuned blind. This crate gives every layer one
//! vocabulary:
//!
//! * [`ObsEvent`] / [`EventKind`] — structured events with a global
//!   monotonic `seq` and per-operation correlation ids, covering the
//!   full op lifecycle (enqueue, attempt, retry, completion), discovery,
//!   beam, lease, peer traffic, and the *physical* ground truth bridged
//!   from the simulator (tag enter/leave, exchanges, beams).
//! * [`Recorder`] — the per-world hub. Disabled by default: every
//!   instrumentation site costs one relaxed atomic load until a sink is
//!   installed.
//! * [`ObsSink`] implementations — [`RingSink`] (bounded, lock-light,
//!   in-memory), [`JsonlSink`] (one JSON object per line, for bench
//!   runs), [`NullSink`], and [`TeeSink`].
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket latency
//!   histograms with p50/p95/p99 snapshots, keyed by static names.
//! * [`correlate`] — joins op events with physical events to attribute
//!   each operation's latency into *out-of-range wait* vs *exchange
//!   time* vs *queue delay*, summing exactly to the op's total.
//! * [`trace`] — causal [`TraceContext`]s minted at application-visible
//!   operations and propagated through retries, coalesced batches, and
//!   (in-band, as a reserved NDEF record) across devices; head-based
//!   sampling via [`SampleRate`].
//! * [`critical`] — per-trace critical-path analysis joining a trace's
//!   hops with their [`OpBreakdown`]s: which hop, and which latency
//!   component, dominated the end-to-end time.
//! * [`OpStats`] / [`OpStatsSnapshot`] — the per-event-loop lifetime
//!   counters (previously private to `morena-core`), so there is one
//!   stats path, not two.
//! * [`profile`] — the [`MemFootprint`] sizing trait behind the live
//!   `mem_bytes` figures, and (behind the `alloc-profile` feature) a
//!   counting global allocator with [`AllocScope`] regions so benches
//!   can assert allocations per operation.
//! * [`timeseries`] — the continuous plane: a background [`Sampler`]
//!   turning metric deltas and inspector snapshots into bounded
//!   per-series ring buffers, with sparkline rendering for
//!   [`render_top_with_series`].
//! * [`expose`] — OpenMetrics text exposition and the dependency-free
//!   [`ExpositionServer`] HTTP scrape endpoint.
//! * [`flight`] — the always-on [`FlightRecorder`] black box: bounded
//!   per-component event history, dumped to disk on stall transitions,
//!   panics, or demand.
//!
//! The crate is deliberately dependency-free (std only) and knows
//! nothing about the middleware or the simulator: identities are plain
//! integers and strings, timestamps are nanoseconds on whatever clock
//! the caller uses. Higher layers own the wiring.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use morena_obs::{EventKind, OpKind, Recorder, RingSink};
//!
//! let recorder = Recorder::new();
//! assert!(!recorder.is_enabled()); // off by default: one atomic check
//!
//! let ring = Arc::new(RingSink::new(1024));
//! recorder.install(ring.clone());
//!
//! let op = recorder.next_op_id();
//! recorder.emit(1_000, EventKind::OpEnqueued {
//!     op_id: op,
//!     loop_name: "tag-1".into(),
//!     phone: 0,
//!     target: "tag-1".into(),
//!     op: OpKind::Write,
//!     deadline_nanos: 10_000_000,
//! });
//! recorder.metrics().counter("ops.submitted").inc();
//!
//! let events = ring.snapshot();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].seq, 0);
//! assert_eq!(recorder.metrics().snapshot().counter("ops.submitted"), 1);
//! ```

// The crate is unsafe-free except for the opt-in tracking allocator
// (`profile`, behind the `alloc-profile` feature), whose `GlobalAlloc`
// impl is irreducibly unsafe. The default build keeps the hard forbid;
// the profiling build downgrades to `deny` so that one module can
// carry a scoped `allow` with its safety comment.
#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod correlate;
pub mod critical;
pub mod event;
pub mod expose;
pub mod flight;
pub mod inspect;
mod json;
pub mod metrics;
pub mod opstats;
pub mod profile;
pub mod recorder;
pub mod sink;
pub mod timeseries;
pub mod trace;

pub use chrome::{export_chrome_trace, ChromeTraceSink};
pub use correlate::{correlate, OpBreakdown};
pub use critical::{analyze_trace, analyze_traces, CostComponent, TraceAnalysis, TraceHop};
pub use event::{AttemptOutcome, EventKind, LeaseAction, ObsEvent, OpKind, OpOutcome, NO_OPCODE};
pub use expose::{render_openmetrics, ExpositionServer, OPENMETRICS_CONTENT_TYPE};
pub use flight::{install_panic_hook, FlightConfig, FlightRecorder};
pub use inspect::{
    render_top, render_top_with_series, ComponentSnapshot, Finding, Health, HealthReport,
    HealthTransition, Inspector, InspectorSnapshot, SnapshotProvider, Watchdog, WatchdogConfig,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use opstats::{OpStats, OpStatsSnapshot};
pub use profile::{AllocScope, AllocStats, MemFootprint};
pub use recorder::{Recorder, Span};
pub use sink::{JsonlSink, NullSink, ObsSink, RingSink, TeeSink};
pub use timeseries::{sparkline, Sampler, SamplerConfig, SeriesRing, SeriesStore};
pub use trace::{SampleRate, TraceContext, TRACE_WIRE_LEN, TRACE_WIRE_VERSION};
