//! Continuous time-series telemetry: per-series ring buffers and the
//! background [`Sampler`] that fills them.
//!
//! The inspector ([`crate::inspect`]) answers *what is happening now*;
//! this module answers *what happened over the last minute*. A
//! [`Sampler`] thread wakes on a configurable cadence and captures, per
//! tick:
//!
//! * the [`MetricsSnapshot`](crate::MetricsSnapshot) **delta** since the
//!   previous tick — counters become per-second rates, gauges stay
//!   levels, histograms contribute windowed p99s and event rates;
//! * an [`InspectorSnapshot`](crate::inspect::InspectorSnapshot) —
//!   aggregate queue depth, live loop count, total `mem_bytes`, and
//!   (for a bounded number of loops) per-loop queue depths;
//! * the [`Watchdog`](crate::Watchdog)'s verdict, recorded as a numeric
//!   health series (0 = healthy, 1 = degraded, 2 = stalled).
//!
//! Every series lives in a fixed-capacity [`SeriesRing`]; memory is
//! bounded no matter how long the process runs. The sampler meters its
//! own cost into the recorder's metrics (`obs.sampler.tick_ns`,
//! `obs.sampler.ticks`) so the telemetry plane's overhead is itself a
//! gated bench metric.
//!
//! When a [`FlightRecorder`](crate::flight::FlightRecorder) is wired
//! into the [`SamplerConfig`], the sampler feeds it the health verdict
//! each tick and dumps the recorder to disk on the first transition to
//! [`Health::Stalled`] — the always-on crash/stall forensics loop.
//!
//! `morena-obs` owns no clock, so the sampler takes a caller-supplied
//! `Fn() -> u64` returning nanoseconds on whatever clock the rest of
//! the world uses (the sim's virtual clock in tests, a monotonic wall
//! clock on hardware). The *cadence* itself runs on real time — the
//! point of a sampler is to observe a possibly-wedged system, so it
//! must never block on the clock it is observing.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::flight::FlightRecorder;
use crate::inspect::{Health, Watchdog, WatchdogConfig};
use crate::recorder::Recorder;

/// The eight block glyphs sparklines are drawn with, lowest to highest.
const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a unicode sparkline at most `width` characters
/// wide. Values are resampled (bucket-max) when there are more points
/// than columns; the vertical scale is min..max of the rendered window,
/// so a flat series renders as a flat low line. Empty input renders
/// empty.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Resample to at most `width` buckets, taking each bucket's max so
    // short spikes stay visible.
    let buckets: Vec<f64> = if values.len() <= width {
        values.to_vec()
    } else {
        (0..width)
            .map(|i| {
                let lo = i * values.len() / width;
                let hi = (((i + 1) * values.len() / width).max(lo + 1)).min(values.len());
                values[lo..hi].iter().copied().fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    };
    let min = buckets.iter().copied().fold(f64::INFINITY, f64::min);
    let max = buckets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    buckets
        .iter()
        .map(|&v| {
            if !v.is_finite() || span <= 0.0 {
                SPARK_GLYPHS[0]
            } else {
                let norm = ((v - min) / span * 7.0).round() as usize;
                SPARK_GLYPHS[norm.min(7)]
            }
        })
        .collect()
}

/// A fixed-capacity ring of `(at_nanos, value)` points — one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRing {
    points: std::collections::VecDeque<(u64, f64)>,
    capacity: usize,
    dropped: u64,
}

impl SeriesRing {
    /// A ring holding at most `capacity` points (min 2 so a derivative
    /// is always computable once full).
    pub fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            points: std::collections::VecDeque::new(),
            capacity: capacity.max(2),
            dropped: 0,
        }
    }

    /// Append a point, evicting the oldest when full.
    pub fn push(&mut self, at_nanos: u64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((at_nanos, value));
    }

    /// Points currently held, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.points.back().copied()
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are held.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Change per second across the retained window: `(last - first) /
    /// Δt`. `None` with fewer than two points or a zero-width window.
    /// For a level series (a gauge) this is its derivative; for a series
    /// that is already a rate it is the rate's trend.
    pub fn derivative_per_sec(&self) -> Option<f64> {
        let (t0, v0) = self.points.front().copied()?;
        let (t1, v1) = self.points.back().copied()?;
        if t1 <= t0 {
            return None;
        }
        Some((v1 - v0) / ((t1 - t0) as f64 / 1e9))
    }

    /// Just the values, oldest first (the sparkline input).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }
}

/// A named collection of [`SeriesRing`]s behind one lock.
///
/// All rings share one capacity (fixed at construction), so the store's
/// memory is `O(series × capacity)` regardless of run length. Recording
/// into an unknown name creates the series lazily.
#[derive(Debug)]
pub struct SeriesStore {
    capacity: usize,
    series: Mutex<BTreeMap<String, SeriesRing>>,
}

impl SeriesStore {
    /// A store whose rings hold `capacity` points each.
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore { capacity: capacity.max(2), series: Mutex::new(BTreeMap::new()) }
    }

    /// Append one point to `name`, creating the series if needed.
    pub fn record(&self, name: &str, at_nanos: u64, value: f64) {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series
            .entry(name.to_string())
            .or_insert_with(|| SeriesRing::new(self.capacity))
            .push(at_nanos, value);
    }

    /// Every series name currently present, sorted.
    pub fn names(&self) -> Vec<String> {
        self.series.lock().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// A copy of one series' points, oldest first.
    pub fn points(&self, name: &str) -> Option<Vec<(u64, f64)>> {
        self.series
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|r| r.points().collect())
    }

    /// The most recent value of one series.
    pub fn latest(&self, name: &str) -> Option<f64> {
        self.series
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .and_then(|r| r.latest())
            .map(|(_, v)| v)
    }

    /// Change per second across one series' retained window (see
    /// [`SeriesRing::derivative_per_sec`]).
    pub fn derivative_per_sec(&self, name: &str) -> Option<f64> {
        self.series
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .and_then(|r| r.derivative_per_sec())
    }

    /// Sparkline of one series at most `width` characters wide, empty
    /// when the series does not exist.
    pub fn sparkline(&self, name: &str, width: usize) -> String {
        let values = match self.series.lock().unwrap_or_else(|e| e.into_inner()).get(name) {
            Some(ring) => ring.values(),
            None => return String::new(),
        };
        sparkline(&values, width)
    }

    /// Number of series currently held.
    pub fn series_count(&self) -> usize {
        self.series.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Cadence, retention, and escalation knobs for a [`Sampler`].
///
/// Cadences are configuration, not code (RAFDA's policy-separation
/// lesson): everything here can differ per deployment without touching
/// the sampling loop.
#[derive(Clone)]
pub struct SamplerConfig {
    /// Real-time interval between ticks. Default 100 ms (10 Hz).
    pub interval: Duration,
    /// Points retained per series. Default 600 (one minute at 10 Hz).
    pub capacity: usize,
    /// How many event loops get an individual `loop.<name>.queue`
    /// series (first-registered wins; the aggregate series always
    /// covers everyone). Bounds series cardinality at swarm scale.
    /// Default 64.
    pub per_loop_series: usize,
    /// Thresholds for the health series / stall-dump watchdog.
    pub watchdog: WatchdogConfig,
    /// Flight recorder to feed health transitions into and to dump on
    /// the first transition to `Stalled`.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Directory stall dumps are written into (`flight-stalled-<n>.json`).
    /// Ignored without a flight recorder.
    pub dump_dir: Option<PathBuf>,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: Duration::from_millis(100),
            capacity: 600,
            per_loop_series: 64,
            watchdog: WatchdogConfig::default(),
            flight: None,
            dump_dir: None,
        }
    }
}

#[derive(Default)]
struct SamplerSignal {
    stopped: Mutex<bool>,
    condvar: Condvar,
}

/// The background sampling thread. Construct with [`Sampler::spawn`];
/// the thread stops and joins on [`Sampler::stop`] or drop (shutdown
/// ordering: stop the sampler *before* tearing down the world so the
/// final tick never observes half-dropped components).
pub struct Sampler {
    store: Arc<SeriesStore>,
    signal: Arc<SamplerSignal>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawn a sampler over `recorder`, stamping points with `clock`
    /// (nanoseconds on the world's clock; the tick cadence itself is
    /// real time, so a wedged virtual clock cannot wedge the sampler).
    pub fn spawn(
        recorder: Arc<Recorder>,
        clock: impl Fn() -> u64 + Send + 'static,
        config: SamplerConfig,
    ) -> Sampler {
        let store = Arc::new(SeriesStore::new(config.capacity));
        let signal = Arc::new(SamplerSignal::default());
        let thread_store = Arc::clone(&store);
        let thread_signal = Arc::clone(&signal);
        let handle = std::thread::Builder::new()
            .name("morena-sampler".into())
            .spawn(move || run_sampler(recorder, clock, config, thread_store, thread_signal))
            .expect("spawn sampler thread");
        Sampler { store, signal, handle: Some(handle) }
    }

    /// The series this sampler fills; shareable with renderers while
    /// the sampler runs.
    pub fn series(&self) -> &Arc<SeriesStore> {
        &self.store
    }

    /// Stop the sampling thread and join it. Idempotent.
    pub fn stop(&mut self) {
        {
            let mut stopped = self.signal.stopped.lock().unwrap_or_else(|e| e.into_inner());
            *stopped = true;
            self.signal.condvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_sampler(
    recorder: Arc<Recorder>,
    clock: impl Fn() -> u64,
    config: SamplerConfig,
    store: Arc<SeriesStore>,
    signal: Arc<SamplerSignal>,
) {
    let watchdog = Watchdog::with_config(config.watchdog);
    let mut prev_metrics = recorder.metrics().snapshot();
    let mut prev_at = clock();
    let mut prev_health = Health::Healthy;
    loop {
        // Interruptible sleep: `stop()` flips the flag and notifies, so
        // shutdown never waits out a full interval.
        {
            let stopped = signal.stopped.lock().unwrap_or_else(|e| e.into_inner());
            let (stopped, _) = signal
                .condvar
                .wait_timeout_while(stopped, config.interval, |stopped| !*stopped)
                .unwrap_or_else(|e| e.into_inner());
            if *stopped {
                return;
            }
        }

        let tick_started = std::time::Instant::now();
        let now = clock();
        let window_secs = (now.saturating_sub(prev_at) as f64 / 1e9).max(1e-9);

        // Metrics delta: counters and histogram counts become rates.
        let metrics = recorder.metrics().snapshot();
        let delta = metrics.delta(&prev_metrics);
        for (name, &value) in &delta.counters {
            store.record(name, now, value as f64 / window_secs);
        }
        for (name, &value) in &delta.gauges {
            store.record(name, now, value as f64);
        }
        for (name, hist) in &delta.histograms {
            store.record(&format!("{name}.rate"), now, hist.count() as f64 / window_secs);
            if let Some(p99) = hist.p99() {
                store.record(&format!("{name}.p99_ns"), now, p99 as f64);
            }
        }

        // Inspector: aggregates always, per-loop depth for a bounded set.
        let snapshot = recorder.inspector().snapshot(now);
        let mut queue_total = 0u64;
        let mut loops = 0u64;
        for (i, l) in snapshot.loops().enumerate() {
            queue_total += l.queue_depth as u64;
            loops += 1;
            if i < config.per_loop_series {
                store.record(&format!("loop.{}.queue", l.name), now, l.queue_depth as f64);
            }
        }
        store.record("inspect.loops", now, loops as f64);
        store.record("inspect.queue_depth", now, queue_total as f64);
        store.record("inspect.mem_bytes", now, snapshot.total_mem_bytes() as f64);
        for entry in &snapshot.components {
            if let crate::inspect::ComponentSnapshot::World(w) = &entry.state {
                store.record("world.faults_injected", now, w.faults_injected as f64);
            }
        }

        // Health verdict, plus flight-recorder escalation.
        let report = watchdog.evaluate_with_metrics(&snapshot, &metrics);
        store.record("inspect.health", now, health_level(report.health));
        if let Some(flight) = &config.flight {
            flight.note_health(now, report.health);
            if report.health == Health::Stalled && prev_health != Health::Stalled {
                if let Some(dir) = &config.dump_dir {
                    let _ = flight.dump_to_dir(dir, "stalled", now, Some(&report));
                    recorder.metrics().counter("obs.flight.stall_dumps").inc();
                }
            }
        }
        prev_health = report.health;
        prev_metrics = metrics;
        prev_at = now;

        // Meter our own cost so the overhead claim is checkable.
        recorder
            .metrics()
            .histogram("obs.sampler.tick_ns")
            .observe_duration(tick_started.elapsed());
        recorder.metrics().counter("obs.sampler.ticks").inc();
    }
}

/// Numeric encoding of [`Health`] used by the `inspect.health` series
/// and the OpenMetrics `morena_health` gauge: 0 healthy, 1 degraded,
/// 2 stalled.
pub fn health_level(health: Health) -> f64 {
    match health {
        Health::Healthy => 0.0,
        Health::Degraded => 1.0,
        Health::Stalled => 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = SeriesRing::new(3);
        for i in 0..5u64 {
            ring.push(i * 10, i as f64);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let points: Vec<_> = ring.points().collect();
        assert_eq!(points, vec![(20, 2.0), (30, 3.0), (40, 4.0)]);
        assert_eq!(ring.latest(), Some((40, 4.0)));
    }

    #[test]
    fn derivative_spans_the_retained_window() {
        let mut ring = SeriesRing::new(8);
        ring.push(0, 0.0);
        ring.push(2_000_000_000, 10.0); // +10 over 2 s
        assert_eq!(ring.derivative_per_sec(), Some(5.0));
        // A single point has no derivative; nor does a zero-width window.
        let mut flat = SeriesRing::new(8);
        flat.push(5, 1.0);
        assert_eq!(flat.derivative_per_sec(), None);
        flat.push(5, 2.0);
        assert_eq!(flat.derivative_per_sec(), None);
    }

    #[test]
    fn sparkline_scales_and_resamples() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 10), "▁");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
        // Flat series: all-low, not all-high.
        assert_eq!(sparkline(&[3.0, 3.0, 3.0], 3), "▁▁▁");
        // Resampling keeps spikes (bucket max).
        let mut values = vec![0.0; 100];
        values[50] = 9.0;
        let line = sparkline(&values, 10);
        assert_eq!(line.chars().count(), 10);
        assert!(line.contains('█'), "spike lost in resample: {line}");
    }

    #[test]
    fn store_records_lazily_and_queries() {
        let store = SeriesStore::new(4);
        store.record("a", 0, 1.0);
        store.record("a", 1_000_000_000, 3.0);
        store.record("b", 0, 7.0);
        assert_eq!(store.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(store.latest("a"), Some(3.0));
        assert_eq!(store.derivative_per_sec("a"), Some(2.0));
        assert_eq!(store.points("b").unwrap(), vec![(0, 7.0)]);
        assert_eq!(store.latest("missing"), None);
        assert!(!store.sparkline("a", 8).is_empty());
        assert!(store.sparkline("missing", 8).is_empty());
    }

    #[test]
    fn sampler_captures_rates_inspector_aggregates_and_health() {
        let recorder = Arc::new(Recorder::new());
        recorder.metrics().counter("ops.test").add(10);
        let now = Arc::new(AtomicU64::new(0));
        let clock_now = Arc::clone(&now);
        let mut sampler = Sampler::spawn(
            Arc::clone(&recorder),
            move || clock_now.load(Ordering::Relaxed),
            SamplerConfig { interval: Duration::from_millis(2), ..SamplerConfig::default() },
        );
        // Advance the fake clock and feed the counter so ticks see a
        // positive rate over a known window.
        for step in 1..=50u64 {
            now.store(step * 10_000_000, Ordering::Relaxed); // 10 ms per step
            recorder.metrics().counter("ops.test").add(5);
            recorder.metrics().histogram("op.lat_ns").observe(2_000);
            std::thread::sleep(Duration::from_millis(2));
            if sampler.series().latest("ops.test").is_some()
                && sampler.series().latest("op.lat_ns.p99_ns").is_some()
            {
                break;
            }
        }
        sampler.stop();
        let store = sampler.series();
        let rate = store.latest("ops.test").expect("counter rate series");
        assert!(rate > 0.0, "rate should be positive, got {rate}");
        assert_eq!(store.latest("inspect.loops"), Some(0.0));
        assert_eq!(store.latest("inspect.health"), Some(0.0));
        assert!(store.latest("op.lat_ns.p99_ns").unwrap_or(0.0) > 0.0);
        // The sampler metered itself.
        let metrics = recorder.metrics().snapshot();
        assert!(metrics.counter("obs.sampler.ticks") > 0);
        assert!(metrics.histogram("obs.sampler.tick_ns").unwrap().count() > 0);
    }

    #[test]
    fn sampler_stop_is_prompt_and_idempotent() {
        let recorder = Arc::new(Recorder::new());
        let mut sampler = Sampler::spawn(
            recorder,
            || 0,
            SamplerConfig { interval: Duration::from_secs(3600), ..SamplerConfig::default() },
        );
        let started = std::time::Instant::now();
        sampler.stop();
        sampler.stop();
        assert!(started.elapsed() < Duration::from_secs(5), "stop must not wait out the interval");
    }
}
