//! Joining middleware op events with physical ground truth.
//!
//! The event loop tells us *what the middleware experienced* (enqueue,
//! attempts, completion); the bridged simulator trace tells us *what was
//! physically true* (when the target was actually in radio range). This
//! module joins the two by `(phone, target)` and attributes every
//! operation's latency into three exhaustive components:
//!
//! * **out-of-range wait** — time inside the op's `[enqueued,
//!   completed]` window during which the target was *not* in range. The
//!   middleware could not have done better; this is the physics of §3.2's
//!   intermittent connections.
//! * **exchange time** — time spent inside physical attempts (clamped so
//!   overlap with out-of-range time is never double-counted).
//! * **queue delay** — the remainder: head-of-line blocking behind other
//!   queued ops, retry backoff, and scheduling slack. This is the only
//!   component middleware engineering can shrink.
//!
//! By construction `out_of_range + exchange + queue == total`, which is
//! what `tests/observability.rs` asserts against a scripted sim run.
//!
//! Operations still pending when the stream ends — enqueued (and maybe
//! attempted) but never completed — are exactly the ops an operator
//! needs to see, so they are *not* dropped: they get a partial
//! breakdown with [`OpOutcome::Pending`] whose window closes at the
//! stream horizon (the latest timestamp seen). The sum invariant holds
//! for them too.

use std::collections::HashMap;

use crate::event::{AttemptOutcome, EventKind, ObsEvent, OpKind, OpOutcome};
use crate::json::ObjectWriter;

/// Latency attribution for one operation (completed, or still pending
/// at the stream horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct OpBreakdown {
    /// Correlation id of the operation.
    pub op_id: u64,
    /// Event loop that ran it.
    pub loop_name: String,
    /// Phone that issued it.
    pub phone: u64,
    /// Target identity (tag uid, `phone-N`, or `*`).
    pub target: String,
    /// Operation kind.
    pub op: OpKind,
    /// Terminal outcome, or [`OpOutcome::Pending`] for an op still in
    /// flight at the stream horizon.
    pub outcome: OpOutcome,
    /// Enqueue timestamp, clock nanoseconds.
    pub enqueued_nanos: u64,
    /// Completion timestamp, clock nanoseconds. For a pending op this
    /// is the stream horizon: the window analyzed so far.
    pub completed_nanos: u64,
    /// Total latency: `completed - enqueued` (latency *so far* for a
    /// pending op).
    pub total_nanos: u64,
    /// Time the target was physically out of range inside the window.
    pub out_of_range_nanos: u64,
    /// Time spent inside physical attempts (clamped to avoid double
    /// counting overlap with out-of-range time).
    pub exchange_nanos: u64,
    /// Residual: queueing, retry backoff, scheduling. Always
    /// `total - out_of_range - exchange`.
    pub queue_nanos: u64,
    /// Number of physical attempts made.
    pub attempts: u64,
    /// Attempts that failed transiently (retries).
    pub retries: u64,
}

impl OpBreakdown {
    /// Render as one flat JSON object (for reports and bench output).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("op_id", self.op_id)
            .str("loop", &self.loop_name)
            .u64("phone", self.phone)
            .str("target", &self.target)
            .str("op", self.op.label())
            .str("outcome", self.outcome.label())
            .u64("enqueued_ns", self.enqueued_nanos)
            .u64("completed_ns", self.completed_nanos)
            .u64("total_ns", self.total_nanos)
            .u64("out_of_range_ns", self.out_of_range_nanos)
            .u64("exchange_ns", self.exchange_nanos)
            .u64("queue_ns", self.queue_nanos)
            .u64("attempts", self.attempts)
            .u64("retries", self.retries);
        w.finish()
    }
}

#[derive(Default)]
struct OpRecord {
    loop_name: String,
    phone: u64,
    target: String,
    op: Option<OpKind>,
    enqueued: Option<u64>,
    attempt_nanos: u64,
    attempts: u64,
    retries: u64,
    completed: Option<(u64, OpOutcome)>,
}

/// Half-open presence intervals for one `(phone, target)` pair.
#[derive(Default, Clone)]
struct Presence {
    /// Closed intervals `[enter, leave)`.
    intervals: Vec<(u64, u64)>,
    /// Entry time of a still-open interval.
    open_since: Option<u64>,
}

impl Presence {
    fn enter(&mut self, at: u64) {
        if self.open_since.is_none() {
            self.open_since = Some(at);
        }
    }

    fn leave(&mut self, at: u64) {
        if let Some(since) = self.open_since.take() {
            if at > since {
                self.intervals.push((since, at));
            }
        }
    }

    /// Materialize, extending any still-open interval to `horizon`.
    fn close(mut self, horizon: u64) -> Vec<(u64, u64)> {
        if let Some(since) = self.open_since.take() {
            if horizon > since {
                self.intervals.push((since, horizon));
            }
        }
        self.intervals
    }
}

/// Total overlap between `window` and the union of `intervals`.
fn overlap(intervals: &mut [(u64, u64)], window: (u64, u64)) -> u64 {
    intervals.sort_unstable();
    let (win_start, win_end) = window;
    let mut covered = 0u64;
    let mut cursor = win_start;
    for &(start, end) in intervals.iter() {
        let start = start.max(cursor);
        let end = end.min(win_end);
        if start < end {
            covered += end - start;
            cursor = end;
        }
        if cursor >= win_end {
            break;
        }
    }
    covered
}

/// Join op lifecycle events with physical presence events and attribute
/// each operation's latency. See the [module docs](self).
///
/// Events may arrive in any order. Operations that never completed get
/// a partial breakdown with [`OpOutcome::Pending`], windowed to the
/// stream horizon; only ops whose *enqueue* fell outside the event
/// window are skipped (there is no window to attribute). The returned
/// breakdowns are sorted by `op_id`.
pub fn correlate(events: &[ObsEvent]) -> Vec<OpBreakdown> {
    let mut ops: HashMap<u64, OpRecord> = HashMap::new();
    // Tag presence and peer presence are tracked separately so a `*`
    // target (undirected beam) can union all peers of a phone.
    let mut tag_presence: HashMap<(u64, String), Presence> = HashMap::new();
    let mut peer_presence: HashMap<(u64, String), Presence> = HashMap::new();
    let mut horizon = 0u64;

    let mut ordered: Vec<&ObsEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.at_nanos, e.seq));

    for event in ordered {
        horizon = horizon.max(event.at_nanos);
        let at = event.at_nanos;
        match &event.kind {
            EventKind::OpEnqueued { op_id, loop_name, phone, target, op, .. } => {
                let record = ops.entry(*op_id).or_default();
                record.loop_name = loop_name.clone();
                record.phone = *phone;
                record.target = target.clone();
                record.op = Some(*op);
                record.enqueued = Some(at);
            }
            EventKind::OpAttempt { op_id, duration_nanos, outcome, .. } => {
                let record = ops.entry(*op_id).or_default();
                record.attempts += 1;
                record.attempt_nanos = record.attempt_nanos.saturating_add(*duration_nanos);
                if *outcome == AttemptOutcome::Transient {
                    record.retries += 1;
                }
            }
            EventKind::OpCompleted { op_id, outcome } => {
                ops.entry(*op_id).or_default().completed = Some((at, *outcome));
            }
            EventKind::PhysTagEntered { phone, target } => {
                tag_presence.entry((*phone, target.clone())).or_default().enter(at);
            }
            EventKind::PhysTagLeft { phone, target } => {
                tag_presence.entry((*phone, target.clone())).or_default().leave(at);
            }
            EventKind::PhysPeerEntered { phone, target } => {
                peer_presence.entry((*phone, target.clone())).or_default().enter(at);
            }
            EventKind::PhysPeerLeft { phone, target } => {
                peer_presence.entry((*phone, target.clone())).or_default().leave(at);
            }
            _ => {}
        }
    }

    // Materialize presence: still-open intervals run to the horizon.
    let tag_intervals: HashMap<(u64, String), Vec<(u64, u64)>> =
        tag_presence.into_iter().map(|(key, p)| (key, p.close(horizon))).collect();
    let peer_intervals: HashMap<(u64, String), Vec<(u64, u64)>> =
        peer_presence.into_iter().map(|(key, p)| (key, p.close(horizon))).collect();

    let mut breakdowns = Vec::new();
    for (op_id, record) in ops {
        let (Some(op), Some(enqueued)) = (record.op, record.enqueued) else {
            continue;
        };
        // An op with no completion event is still in flight: close its
        // window at the horizon and mark it pending.
        let (completed, outcome) =
            record.completed.unwrap_or((horizon.max(enqueued), OpOutcome::Pending));
        let total = completed.saturating_sub(enqueued);
        let window = (enqueued, completed);

        let mut in_range = {
            let key = (record.phone, record.target.clone());
            if record.target == "*" {
                // Undirected push: in range whenever *any* peer is.
                let mut merged: Vec<(u64, u64)> = peer_intervals
                    .iter()
                    .filter(|((phone, _), _)| *phone == record.phone)
                    .flat_map(|(_, ivs)| ivs.iter().copied())
                    .collect();
                overlap(&mut merged, window)
            } else if let Some(ivs) = tag_intervals.get(&key) {
                overlap(&mut ivs.clone(), window)
            } else if let Some(ivs) = peer_intervals.get(&key) {
                overlap(&mut ivs.clone(), window)
            } else {
                // No physical knowledge about this target: attribute
                // nothing to out-of-range rather than everything.
                total
            }
        };
        in_range = in_range.min(total);

        let out_of_range = total - in_range;
        // Attempts overlap in-range time by definition; clamp so the
        // three components always sum exactly to the total.
        let exchange = record.attempt_nanos.min(in_range);
        let queue = total - out_of_range - exchange;

        breakdowns.push(OpBreakdown {
            op_id,
            loop_name: record.loop_name,
            phone: record.phone,
            target: record.target,
            op,
            outcome,
            enqueued_nanos: enqueued,
            completed_nanos: completed,
            total_nanos: total,
            out_of_range_nanos: out_of_range,
            exchange_nanos: exchange,
            queue_nanos: queue,
            attempts: record.attempts,
            retries: record.retries,
        });
    }
    breakdowns.sort_by_key(|b| b.op_id);
    breakdowns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at: u64, kind: EventKind) -> ObsEvent {
        ObsEvent { seq, at_nanos: at, trace: None, kind }
    }

    fn enqueue(seq: u64, at: u64, op_id: u64, target: &str) -> ObsEvent {
        ev(
            seq,
            at,
            EventKind::OpEnqueued {
                op_id,
                loop_name: format!("tag-{target}"),
                phone: 0,
                target: target.into(),
                op: OpKind::Write,
                deadline_nanos: at + 10_000_000,
            },
        )
    }

    fn attempt(seq: u64, at: u64, op_id: u64, dur: u64, outcome: AttemptOutcome) -> ObsEvent {
        ev(
            seq,
            at,
            EventKind::OpAttempt {
                op_id,
                started_nanos: at.saturating_sub(dur),
                duration_nanos: dur,
                outcome,
            },
        )
    }

    fn complete(seq: u64, at: u64, op_id: u64) -> ObsEvent {
        ev(seq, at, EventKind::OpCompleted { op_id, outcome: OpOutcome::Succeeded })
    }

    #[test]
    fn attributes_out_of_range_wait() {
        // Enqueued at t=0 with the tag absent; tag enters at t=700;
        // one 100ns attempt finishes the op at t=800.
        let events = [
            enqueue(0, 0, 1, "A"),
            ev(1, 700, EventKind::PhysTagEntered { phone: 0, target: "A".into() }),
            attempt(2, 800, 1, 100, AttemptOutcome::Success),
            complete(3, 800, 1),
        ];
        let b = &correlate(&events)[0];
        assert_eq!(b.total_nanos, 800);
        assert_eq!(b.out_of_range_nanos, 700);
        assert_eq!(b.exchange_nanos, 100);
        assert_eq!(b.queue_nanos, 0);
        assert_eq!(b.attempts, 1);
        assert_eq!(b.retries, 0);
        assert_eq!(b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos, b.total_nanos);
    }

    #[test]
    fn queue_delay_is_the_residual() {
        // Tag in range the whole time; op waits 500ns behind the queue,
        // then a 100ns attempt completes it.
        let events = [
            ev(0, 0, EventKind::PhysTagEntered { phone: 0, target: "A".into() }),
            enqueue(1, 100, 1, "A"),
            attempt(2, 700, 1, 100, AttemptOutcome::Success),
            complete(3, 700, 1),
        ];
        let b = &correlate(&events)[0];
        assert_eq!(b.total_nanos, 600);
        assert_eq!(b.out_of_range_nanos, 0);
        assert_eq!(b.exchange_nanos, 100);
        assert_eq!(b.queue_nanos, 500);
    }

    #[test]
    fn components_always_sum_to_total_even_when_attempts_overlap_absence() {
        // The tag flickers: attempts accumulate more time than the op
        // ever spent in range; exchange is clamped, sum still exact.
        let events = [
            enqueue(0, 0, 1, "A"),
            ev(1, 100, EventKind::PhysTagEntered { phone: 0, target: "A".into() }),
            ev(2, 200, EventKind::PhysTagLeft { phone: 0, target: "A".into() }),
            attempt(3, 250, 1, 400, AttemptOutcome::Transient),
            ev(4, 900, EventKind::PhysTagEntered { phone: 0, target: "A".into() }),
            attempt(5, 1_000, 1, 50, AttemptOutcome::Success),
            complete(6, 1_000, 1),
        ];
        let b = &correlate(&events)[0];
        assert_eq!(b.total_nanos, 1_000);
        // In range: [100,200) + [900,1000) = 200ns.
        assert_eq!(b.out_of_range_nanos, 800);
        assert_eq!(b.exchange_nanos, 200); // clamped from 450
        assert_eq!(b.queue_nanos, 0);
        assert_eq!(b.retries, 1);
        assert_eq!(b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos, b.total_nanos);
    }

    #[test]
    fn still_open_presence_extends_to_horizon() {
        let events = [
            ev(0, 0, EventKind::PhysTagEntered { phone: 0, target: "A".into() }),
            enqueue(1, 10, 1, "A"),
            attempt(2, 60, 1, 50, AttemptOutcome::Success),
            complete(3, 60, 1),
        ];
        let b = &correlate(&events)[0];
        assert_eq!(b.out_of_range_nanos, 0);
        assert_eq!(b.exchange_nanos, 50);
    }

    #[test]
    fn unknown_target_attributes_nothing_to_out_of_range() {
        let events = [
            enqueue(0, 0, 1, "mystery"),
            attempt(1, 100, 1, 40, AttemptOutcome::Success),
            complete(2, 100, 1),
        ];
        let b = &correlate(&events)[0];
        assert_eq!(b.out_of_range_nanos, 0);
        assert_eq!(b.exchange_nanos, 40);
        assert_eq!(b.queue_nanos, 60);
    }

    #[test]
    fn star_target_unions_peer_presence() {
        let events = [
            ev(
                0,
                0,
                EventKind::OpEnqueued {
                    op_id: 1,
                    loop_name: "beam".into(),
                    phone: 0,
                    target: "*".into(),
                    op: OpKind::Push,
                    deadline_nanos: 10_000,
                },
            ),
            ev(1, 400, EventKind::PhysPeerEntered { phone: 0, target: "phone-1".into() }),
            attempt(2, 500, 1, 100, AttemptOutcome::Success),
            complete(3, 500, 1),
        ];
        let b = &correlate(&events)[0];
        assert_eq!(b.op, OpKind::Push);
        assert_eq!(b.out_of_range_nanos, 400);
        assert_eq!(b.exchange_nanos, 100);
        assert_eq!(b.queue_nanos, 0);
    }

    #[test]
    fn pending_ops_get_partial_breakdowns_and_output_sorted() {
        let events = [
            enqueue(0, 0, 2, "A"),
            enqueue(1, 0, 1, "A"),
            complete(2, 50, 1),
            complete(3, 60, 2),
            enqueue(4, 70, 3, "A"), // never completes
        ];
        let breakdowns = correlate(&events);
        let ids: Vec<u64> = breakdowns.iter().map(|b| b.op_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(breakdowns[0].outcome, OpOutcome::Succeeded);
        let pending = &breakdowns[2];
        assert_eq!(pending.outcome, OpOutcome::Pending);
        assert_eq!(pending.completed_nanos, 70); // the stream horizon
        assert_eq!(pending.total_nanos, 0);
    }

    #[test]
    fn pending_op_attribution_respects_the_sum_invariant() {
        // Enqueued at t=0, tag enters at t=600, one failed attempt, the
        // stream ends at t=1_000 with the op still in flight.
        let events = [
            enqueue(0, 0, 1, "A"),
            ev(1, 600, EventKind::PhysTagEntered { phone: 0, target: "A".into() }),
            attempt(2, 700, 1, 100, AttemptOutcome::Transient),
            ev(3, 1_000, EventKind::PhysTagLeft { phone: 0, target: "A".into() }),
        ];
        let breakdowns = correlate(&events);
        assert_eq!(breakdowns.len(), 1);
        let b = &breakdowns[0];
        assert_eq!(b.outcome, OpOutcome::Pending);
        assert_eq!(b.completed_nanos, 1_000);
        assert_eq!(b.total_nanos, 1_000);
        assert_eq!(b.out_of_range_nanos, 600); // [0,600) before entry
        assert_eq!(b.exchange_nanos, 100);
        assert_eq!(b.queue_nanos, 300);
        assert_eq!(b.attempts, 1);
        assert_eq!(b.retries, 1);
        assert_eq!(b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos, b.total_nanos);
        // An orphan attempt with no enqueue still yields nothing.
        let orphan = [attempt(0, 10, 9, 5, AttemptOutcome::Transient)];
        assert!(correlate(&orphan).is_empty());
    }

    #[test]
    fn breakdown_serializes_to_json() {
        let events = [
            enqueue(0, 0, 1, "A"),
            attempt(1, 100, 1, 40, AttemptOutcome::Success),
            complete(2, 100, 1),
        ];
        let json = correlate(&events)[0].to_json();
        assert!(json.contains("\"op_id\":1"));
        assert!(json.contains("\"outcome\":\"succeeded\""));
        assert!(json.contains("\"queue_ns\":60"));
    }
}
