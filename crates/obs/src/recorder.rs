//! The [`Recorder`]: the per-world observability hub.
//!
//! A recorder starts *disabled*. In that state every instrumentation
//! site reduces to one relaxed atomic load — callers are expected to
//! guard event construction behind [`Recorder::is_enabled`], and
//! [`Recorder::emit`] re-checks it anyway. Installing a sink enables
//! recording; the metrics registry is always live (counters are cheap
//! enough to leave on).
//!
//! The recorder is an *instance*, not a global: the simulator's `World`
//! owns one, and the middleware reaches it through its NFC handle. This
//! keeps parallel tests deterministic and lets every world carry its own
//! isolated event stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::event::{EventKind, ObsEvent};
use crate::inspect::Inspector;
use crate::metrics::MetricsRegistry;
use crate::sink::ObsSink;
use crate::trace::{self, TraceContext};

/// Hub that stamps events with sequence numbers and forwards them to
/// the installed sink. See the [module docs](self).
pub struct Recorder {
    enabled: AtomicBool,
    seq: AtomicU64,
    next_op_id: AtomicU64,
    // Trace/span ids start at 1: 0 is the "no parent" sentinel in
    // `TraceContext::parent_span_id` and must never name a real span.
    next_trace_id: AtomicU64,
    next_span_id: AtomicU64,
    sink: RwLock<Option<Arc<dyn ObsSink>>>,
    metrics: MetricsRegistry,
    inspector: Inspector,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Create a disabled recorder with an empty metrics registry.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            next_op_id: AtomicU64::new(0),
            next_trace_id: AtomicU64::new(1),
            next_span_id: AtomicU64::new(1),
            sink: RwLock::new(None),
            metrics: MetricsRegistry::new(),
            inspector: Inspector::new(),
        }
    }

    /// Whether event recording is enabled. This is the one relaxed
    /// atomic load instrumentation sites pay when observability is off;
    /// callers should skip event construction entirely when it returns
    /// `false`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Install a sink and enable recording.
    pub fn install(&self, sink: Arc<dyn ObsSink>) {
        *self.sink.write().expect("recorder sink lock") = Some(sink);
        self.enabled.store(true, Ordering::Release);
    }

    /// Add a sink *alongside* whatever is already installed (teeing
    /// with it) and enable recording. This is how an always-on
    /// [`FlightRecorder`](crate::flight::FlightRecorder) rides along
    /// without displacing a test's ring or a bench's JSONL stream.
    pub fn attach(&self, sink: Arc<dyn ObsSink>) {
        let mut slot = self.sink.write().expect("recorder sink lock");
        *slot = Some(match slot.take() {
            Some(existing) => Arc::new(crate::sink::TeeSink::new(vec![existing, sink])),
            None => sink,
        });
        drop(slot);
        self.enabled.store(true, Ordering::Release);
    }

    /// Disable recording and drop the sink (after flushing it).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
        let sink = self.sink.write().expect("recorder sink lock").take();
        if let Some(sink) = sink {
            sink.flush();
        }
    }

    /// Flush the installed sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = self.sink.read().expect("recorder sink lock").as_ref() {
            sink.flush();
        }
    }

    /// Allocate a fresh per-operation correlation id. Ids are unique per
    /// recorder and monotonically increasing; allocation is cheap and
    /// works even while recording is disabled (so an op enqueued before
    /// `install` still correlates afterwards).
    #[inline]
    pub fn next_op_id(&self) -> u64 {
        self.next_op_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a fresh trace id. Like op ids: unique per recorder,
    /// monotonic from 1, and live even while recording is disabled.
    #[inline]
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a fresh span id (same contract as trace ids).
    #[inline]
    pub fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Stamp `kind` with the next sequence number and the given
    /// timestamp and forward it to the sink. No-op while disabled.
    ///
    /// The event inherits the calling thread's ambient
    /// [`trace::current`] context (if sampled) — this is how the
    /// simulator's `Phys*` ground truth joins the trace of the op whose
    /// attempt triggered it, with no signature change anywhere.
    pub fn emit(&self, at_nanos: u64, kind: EventKind) {
        self.emit_traced(at_nanos, trace::current(), kind);
    }

    /// [`Recorder::emit`] with an explicit trace context (overriding the
    /// ambient one). Unsampled contexts are stripped: they exist to keep
    /// causality flowing, not to appear in the stream.
    pub fn emit_traced(&self, at_nanos: u64, trace: Option<TraceContext>, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let sink = self.sink.read().expect("recorder sink lock");
        let Some(sink) = sink.as_ref() else { return };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trace = trace.filter(|t| t.sampled);
        sink.record(&ObsEvent { seq, at_nanos, trace, kind });
    }

    /// The recorder's metrics registry (always live).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The live-component registry (always live, like the metrics).
    /// Components register [`SnapshotProvider`](crate::inspect::SnapshotProvider)s
    /// here; a watchdog or "morena-top" renderer polls
    /// [`Inspector::snapshot`].
    pub fn inspector(&self) -> &Inspector {
        &self.inspector
    }

    /// Open an explicit span; close it with [`Span::end`] to emit a
    /// [`EventKind::SpanClosed`] event carrying its duration.
    pub fn span(self: &Arc<Self>, name: &'static str, phone: u64, started_nanos: u64) -> Span {
        Span { recorder: Arc::clone(self), name, phone, started_nanos }
    }
}

/// An open span. Spans are explicit: the caller supplies the end
/// timestamp because `morena-obs` owns no clock (the middleware runs on
/// a virtual clock in tests and a monotonic wall clock on hardware).
#[must_use = "a span only records once `end` is called"]
pub struct Span {
    recorder: Arc<Recorder>,
    name: &'static str,
    phone: u64,
    started_nanos: u64,
}

impl Span {
    /// Close the span at `end_nanos`, emitting its duration.
    pub fn end(self, end_nanos: u64) {
        let duration = end_nanos.saturating_sub(self.started_nanos);
        self.recorder.emit(
            end_nanos,
            EventKind::SpanClosed {
                name: self.name,
                phone: self.phone,
                started_nanos: self.started_nanos,
                duration_nanos: duration,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn disabled_recorder_emits_nothing() {
        let rec = Recorder::new();
        assert!(!rec.is_enabled());
        rec.emit(0, EventKind::PhysTagEntered { phone: 0, target: "t".into() });
        // Sequence numbers are only consumed by delivered events.
        let ring = Arc::new(RingSink::new(4));
        rec.install(ring.clone());
        rec.emit(5, EventKind::PhysTagEntered { phone: 0, target: "t".into() });
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].at_nanos, 5);
    }

    #[test]
    fn disable_stops_delivery_and_flushes() {
        let rec = Recorder::new();
        let ring = Arc::new(RingSink::new(4));
        rec.install(ring.clone());
        rec.disable();
        rec.emit(1, EventKind::PhysTagLeft { phone: 0, target: "t".into() });
        assert!(ring.is_empty());
    }

    #[test]
    fn attach_tees_with_the_installed_sink() {
        let rec = Recorder::new();
        let first = Arc::new(RingSink::new(4));
        let second = Arc::new(RingSink::new(4));
        rec.install(first.clone());
        rec.attach(second.clone());
        rec.emit(1, EventKind::PhysTagEntered { phone: 0, target: "t".into() });
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        // Attaching to a bare recorder just installs and enables.
        let rec = Recorder::new();
        let only = Arc::new(RingSink::new(4));
        rec.attach(only.clone());
        assert!(rec.is_enabled());
        rec.emit(2, EventKind::PhysTagLeft { phone: 0, target: "t".into() });
        assert_eq!(only.len(), 1);
    }

    #[test]
    fn op_ids_are_unique_and_work_while_disabled() {
        let rec = Recorder::new();
        assert_eq!(rec.next_op_id(), 0);
        assert_eq!(rec.next_op_id(), 1);
    }

    #[test]
    fn spans_emit_duration_on_end() {
        let rec = Arc::new(Recorder::new());
        let ring = Arc::new(RingSink::new(4));
        rec.install(ring.clone());
        let span = rec.span("lease.acquire", 3, 100);
        span.end(350);
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::SpanClosed { name, phone, started_nanos, duration_nanos } => {
                assert_eq!(*name, "lease.acquire");
                assert_eq!(*phone, 3);
                assert_eq!(*started_nanos, 100);
                assert_eq!(*duration_nanos, 250);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn span_end_before_start_saturates_to_zero() {
        let rec = Arc::new(Recorder::new());
        let ring = Arc::new(RingSink::new(4));
        rec.install(ring.clone());
        rec.span("s", 0, 100).end(50);
        match &ring.snapshot()[0].kind {
            EventKind::SpanClosed { duration_nanos, .. } => assert_eq!(*duration_nanos, 0),
            other => panic!("unexpected event {other:?}"),
        }
    }
}
