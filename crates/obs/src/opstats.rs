//! Per-event-loop lifetime counters.
//!
//! [`OpStats`] started life inside `morena-core`'s event loop; it now
//! lives here so the middleware has exactly one stats path — the event
//! loop updates these counters through the `record_*` methods and
//! `morena-core` re-exports both types from their original paths.
//!
//! Accumulators saturate instead of wrapping, and the derived means are
//! division-safe at zero samples: a freshly spawned loop (or one that
//! only ever timed out) reports `None` rather than panicking or lying.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Saturating `fetch_add` for accumulator counters: once an accumulator
/// reaches `u64::MAX` it stays there instead of wrapping to a small
/// (and badly misleading) value.
fn saturating_add(cell: &AtomicU64, nanos: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(nanos);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// Monotone counters describing an event loop's lifetime activity — the
/// raw material of the EXT-RETRY / EXT-BATCH experiments.
#[derive(Debug, Default)]
pub struct OpStats {
    submitted: AtomicU64,
    attempts: AtomicU64,
    transient_failures: AtomicU64,
    succeeded: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    attempt_nanos_total: AtomicU64,
    attempt_nanos_max: AtomicU64,
    completion_nanos_total: AtomicU64,
}

impl OpStats {
    /// Create a zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one submitted operation.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one physical attempt and accumulate its duration.
    pub fn record_attempt(&self, nanos: u64) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        saturating_add(&self.attempt_nanos_total, nanos);
        self.attempt_nanos_max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Count one transient attempt failure (the op stays queued).
    pub fn record_transient_failure(&self) {
        self.transient_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful completion and its submit-to-success latency.
    pub fn record_succeeded(&self, completion_nanos: u64) {
        self.succeeded.fetch_add(1, Ordering::Relaxed);
        saturating_add(&self.completion_nanos_total, completion_nanos);
    }

    /// Count one operation dropped at its deadline.
    pub fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one permanent failure.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one cancelled operation.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> OpStatsSnapshot {
        OpStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            transient_failures: self.transient_failures.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            attempt_nanos_total: self.attempt_nanos_total.load(Ordering::Relaxed),
            attempt_nanos_max: self.attempt_nanos_max.load(Ordering::Relaxed),
            completion_nanos_total: self.completion_nanos_total.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStatsSnapshot {
    /// Operations ever submitted.
    pub submitted: u64,
    /// Physical attempts (submissions × retries).
    pub attempts: u64,
    /// Attempts that failed transiently and stayed queued.
    pub transient_failures: u64,
    /// Operations that completed successfully.
    pub succeeded: u64,
    /// Operations dropped at their deadline.
    pub timed_out: u64,
    /// Operations that failed permanently.
    pub failed: u64,
    /// Operations cancelled by shutdown.
    pub cancelled: u64,
    /// Total clock time spent inside physical attempts, in nanoseconds
    /// (saturating).
    pub attempt_nanos_total: u64,
    /// The single longest physical attempt, in nanoseconds.
    pub attempt_nanos_max: u64,
    /// Total queue-to-completion latency over succeeded operations, in
    /// nanoseconds (saturating).
    pub completion_nanos_total: u64,
}

impl OpStatsSnapshot {
    /// Mean duration of one physical attempt, when any were made.
    ///
    /// `checked_div` (rather than a bare `/` behind a `> 0` test) keeps
    /// this safe even if the struct was built by hand with inconsistent
    /// fields.
    pub fn mean_attempt(&self) -> Option<Duration> {
        self.attempt_nanos_total.checked_div(self.attempts).map(Duration::from_nanos)
    }

    /// Mean submit-to-success latency, when any operation succeeded.
    pub fn mean_completion(&self) -> Option<Duration> {
        self.completion_nanos_total.checked_div(self.succeeded).map(Duration::from_nanos)
    }

    /// Fraction of attempts that failed transiently, when any attempts
    /// were made. A retry-policy figure of merit for EXT-RETRY.
    pub fn transient_failure_ratio(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.transient_failures as f64 / self.attempts as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_means_are_none() {
        let snap = OpStatsSnapshot::default();
        assert_eq!(snap.mean_attempt(), None);
        assert_eq!(snap.mean_completion(), None);
        assert_eq!(snap.transient_failure_ratio(), None);
    }

    #[test]
    fn record_methods_roll_up() {
        let stats = OpStats::new();
        stats.record_submitted();
        stats.record_submitted();
        stats.record_attempt(100);
        stats.record_attempt(300);
        stats.record_transient_failure();
        stats.record_succeeded(1_000);
        stats.record_timed_out();
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.attempts, 2);
        assert_eq!(snap.attempt_nanos_total, 400);
        assert_eq!(snap.attempt_nanos_max, 300);
        assert_eq!(snap.transient_failures, 1);
        assert_eq!(snap.succeeded, 1);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.mean_attempt(), Some(Duration::from_nanos(200)));
        assert_eq!(snap.mean_completion(), Some(Duration::from_nanos(1_000)));
        assert_eq!(snap.transient_failure_ratio(), Some(0.5));
    }

    #[test]
    fn accumulators_saturate_instead_of_wrapping() {
        let stats = OpStats::new();
        stats.record_attempt(u64::MAX - 10);
        stats.record_attempt(100);
        let snap = stats.snapshot();
        assert_eq!(snap.attempt_nanos_total, u64::MAX);
        assert_eq!(snap.attempt_nanos_max, u64::MAX - 10);
        // The mean stays well-defined (if clamped) rather than tiny.
        assert!(snap.mean_attempt().unwrap() > Duration::from_nanos(u64::MAX / 4));
    }
}
