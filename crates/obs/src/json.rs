//! Minimal hand-rolled JSON encoding.
//!
//! `morena-obs` is dependency-free by design, so the JSONL exporter and
//! metric snapshots build their JSON with this tiny writer instead of a
//! serialization framework. Only the forms the crate emits are
//! supported: flat objects with string keys and string/u64/i64/bool or
//! pre-rendered nested-object values.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
///
/// The output is pure ASCII: control characters and every non-ASCII
/// scalar are `\uXXXX`-escaped (as a UTF-16 surrogate pair beyond the
/// BMP), so flight dumps and Chrome traces stay valid JSON — and safe
/// for latin-1-assuming consumers — no matter what ends up in a
/// component or metric name.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || !c.is_ascii() => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for a single flat JSON object.
pub(crate) struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    pub(crate) fn new() -> Self {
        Self { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    pub(crate) fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    pub(crate) fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub(crate) fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub(crate) fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Insert a pre-rendered JSON fragment as the value for `key`.
    pub(crate) fn raw(&mut self, key: &str, fragment: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(fragment);
        self
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn escapes_non_ascii_to_pure_ascii() {
        let mut out = String::new();
        write_str(&mut out, "tag-π\u{7f}");
        assert_eq!(out, "\"tag-\\u03c0\\u007f\"");
        // Beyond the BMP: a UTF-16 surrogate pair.
        let mut out = String::new();
        write_str(&mut out, "🦀");
        assert_eq!(out, "\"\\ud83e\\udd80\"");
        assert!(out.is_ascii());
    }

    #[test]
    fn object_writer_builds_flat_objects() {
        let mut w = ObjectWriter::new();
        w.str("type", "x").u64("n", 7).bool("ok", true);
        assert_eq!(w.finish(), "{\"type\":\"x\",\"n\":7,\"ok\":true}");
    }
}
