//! Chrome `trace_event` JSON export for Perfetto.
//!
//! [`export_chrome_trace`] turns an [`ObsEvent`] stream into the JSON
//! object format the Chrome trace-event spec defines, so any bench or
//! fault run opens directly in `ui.perfetto.dev` (or
//! `chrome://tracing`). The mapping keeps the middleware and the
//! simulator's ground truth on separate processes so their tracks sit
//! side by side on one timeline:
//!
//! * **pid 1 — `morena middleware`**: one thread track per event loop
//!   (named after the loop, e.g. `tag-3`). Operation lifecycles are
//!   async `b`/`e` pairs (category `op`, id = the op's correlation id),
//!   so a queued op renders as a bar from enqueue to completion;
//!   attempts are nested `X` complete events on the same track. Spans,
//!   discovery sightings, lease transitions, and beam/peer receipts
//!   land on one `phone-N events` track per phone.
//! * **pid 2 — `nfc-sim`**: one `phone-N radio` track per phone
//!   carrying instants for the physical ground truth — tag enter/leave,
//!   exchanges, beams, peer presence, and injected faults.
//!
//! Events that carry a [`TraceContext`](crate::TraceContext) are also
//! linked by Perfetto **flow events**: for every trace id that touched
//! two or more spans the exporter emits an `s` → `t`… → `f` chain
//! (category `trace`, id = the trace id) through the first event of
//! each span in causal (sequence) order, so an arrow follows a beam
//! from the sender's op track through the simulator's radio track to
//! the receiving phone's handler — across process and thread tracks.
//!
//! Track ordering is pinned with `process_sort_index` /
//! `thread_sort_index` metadata: the middleware always renders above
//! the simulator, and radio tracks sort by phone number rather than
//! first-seen order, so repeated exports of the same workload line up.
//!
//! Timestamps convert from clock nanoseconds to the spec's fractional
//! microseconds, preserving sub-microsecond precision.
//!
//! [`ChromeTraceSink`] is the buffering [`ObsSink`] counterpart: install
//! it (or tee it next to a ring), run a workload, then write
//! [`ChromeTraceSink::export`] to a `.json` artifact.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use morena_obs::chrome::ChromeTraceSink;
//! use morena_obs::{EventKind, OpKind, Recorder};
//!
//! let recorder = Recorder::new();
//! let sink = Arc::new(ChromeTraceSink::new());
//! recorder.install(sink.clone());
//! recorder.emit(1_000, EventKind::OpEnqueued {
//!     op_id: 0,
//!     loop_name: "tag-1".into(),
//!     phone: 0,
//!     target: "tag-1".into(),
//!     op: OpKind::Write,
//!     deadline_nanos: 5_000_000,
//! });
//! let json = sink.export();
//! assert!(json.starts_with("{\"traceEvents\":["));
//! assert!(json.contains("\"ph\":\"b\""));
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use crate::event::{EventKind, ObsEvent};
use crate::json::ObjectWriter;
use crate::sink::ObsSink;

/// Process id of the middleware tracks.
const PID_MIDDLEWARE: u64 = 1;
/// Process id of the simulator ground-truth tracks.
const PID_SIM: u64 = 2;
/// First tid of the per-phone middleware event tracks (loop tracks
/// count up from 1, so this leaves room for ~1000 loops).
const TID_PHONE_BASE: u64 = 1001;
/// Track for op events whose enqueue fell outside the exported window.
const TID_ORPHAN: u64 = 1000;

/// Render `nanos` as the spec's microsecond timestamp, keeping
/// nanosecond precision as a fractional part.
fn ts_micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Where a traced span first rendered — the anchor of one flow-event
/// step.
struct FlowSite {
    pid: u64,
    tid: u64,
    at_nanos: u64,
}

struct TraceWriter {
    out: String,
    first: bool,
    /// loop_name → middleware tid, in first-seen order.
    loop_tids: HashMap<String, u64>,
    /// op_id → (tid, rendered async-event name) from its enqueue.
    ops: HashMap<u64, (u64, String)>,
    /// middleware phones seen (for per-phone event tracks).
    mid_phones: Vec<u64>,
    /// simulator phones seen (for radio tracks).
    sim_phones: Vec<u64>,
    orphan_used: bool,
    /// trace_id → flow anchors in causal (sequence) order.
    flows: HashMap<u64, Vec<FlowSite>>,
    /// (trace_id, span_id) pairs that already anchored a flow step.
    seen_spans: HashSet<(u64, u64)>,
}

impl TraceWriter {
    fn new() -> TraceWriter {
        TraceWriter {
            out: String::from("{\"traceEvents\":["),
            first: true,
            loop_tids: HashMap::new(),
            ops: HashMap::new(),
            mid_phones: Vec::new(),
            sim_phones: Vec::new(),
            orphan_used: false,
            flows: HashMap::new(),
            seen_spans: HashSet::new(),
        }
    }

    fn push(&mut self, rendered: String) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(&rendered);
    }

    fn loop_tid(&mut self, loop_name: &str) -> u64 {
        let next = self.loop_tids.len() as u64 + 1;
        *self.loop_tids.entry(loop_name.to_string()).or_insert(next)
    }

    fn mid_phone_tid(&mut self, phone: u64) -> u64 {
        if !self.mid_phones.contains(&phone) {
            self.mid_phones.push(phone);
        }
        TID_PHONE_BASE + phone
    }

    fn sim_phone_tid(&mut self, phone: u64) -> u64 {
        if !self.sim_phones.contains(&phone) {
            self.sim_phones.push(phone);
        }
        phone + 1
    }

    /// Common fields of every emitted event.
    fn base(name: &str, ph: &str, pid: u64, tid: u64, at_nanos: u64) -> ObjectWriter {
        let mut w = ObjectWriter::new();
        w.str("name", name)
            .str("ph", ph)
            .u64("pid", pid)
            .u64("tid", tid)
            .raw("ts", &ts_micros(at_nanos));
        w
    }

    fn instant(&mut self, name: &str, pid: u64, tid: u64, at_nanos: u64, args: &str) {
        let mut w = Self::base(name, "i", pid, tid, at_nanos);
        w.str("s", "t").raw("args", args);
        self.push(w.finish());
    }

    fn event(&mut self, event: &ObsEvent) {
        let site = self.render(event);
        let (Some(trace), Some((pid, tid))) = (event.trace, site) else { return };
        // Anchor one flow step at the first rendered event of each span
        // so the chain follows causal hops, not every intra-span event.
        if self.seen_spans.insert((trace.trace_id, trace.span_id)) {
            self.flows.entry(trace.trace_id).or_default().push(FlowSite {
                pid,
                tid,
                at_nanos: event.at_nanos,
            });
        }
    }

    /// Render one event and return the `(pid, tid)` track it landed on,
    /// or `None` when the kind has no track mapping.
    fn render(&mut self, event: &ObsEvent) -> Option<(u64, u64)> {
        let at = event.at_nanos;
        match &event.kind {
            EventKind::OpEnqueued { op_id, loop_name, phone, target, op, deadline_nanos } => {
                let tid = self.loop_tid(loop_name);
                let name = format!("{} #{op_id}", op.label());
                self.ops.insert(*op_id, (tid, name.clone()));
                let mut args = ObjectWriter::new();
                args.u64("op_id", *op_id)
                    .u64("phone", *phone)
                    .str("target", target)
                    .u64("deadline_ns", *deadline_nanos);
                let mut w = Self::base(&name, "b", PID_MIDDLEWARE, tid, at);
                w.str("cat", "op").u64("id", *op_id).raw("args", &args.finish());
                self.push(w.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::OpCompleted { op_id, outcome } => {
                let (tid, name) = match self.ops.get(op_id) {
                    Some((tid, name)) => (*tid, name.clone()),
                    None => {
                        self.orphan_used = true;
                        (TID_ORPHAN, format!("op #{op_id}"))
                    }
                };
                let mut args = ObjectWriter::new();
                args.str("outcome", outcome.label());
                let mut w = Self::base(&name, "e", PID_MIDDLEWARE, tid, at);
                w.str("cat", "op").u64("id", *op_id).raw("args", &args.finish());
                self.push(w.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::OpAttempt { op_id, started_nanos, duration_nanos, outcome } => {
                let tid = match self.ops.get(op_id) {
                    Some((tid, _)) => *tid,
                    None => {
                        self.orphan_used = true;
                        TID_ORPHAN
                    }
                };
                let mut args = ObjectWriter::new();
                args.u64("op_id", *op_id).str("outcome", outcome.label());
                let mut w = Self::base(
                    &format!("attempt ({})", outcome.label()),
                    "X",
                    PID_MIDDLEWARE,
                    tid,
                    *started_nanos,
                );
                w.raw("dur", &ts_micros(*duration_nanos)).raw("args", &args.finish());
                self.push(w.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::SpanClosed { name, phone, started_nanos, duration_nanos } => {
                let tid = self.mid_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.u64("phone", *phone);
                let mut w = Self::base(name, "X", PID_MIDDLEWARE, tid, *started_nanos);
                w.raw("dur", &ts_micros(*duration_nanos)).raw("args", &args.finish());
                self.push(w.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::TagDetected { phone, target, redetection } => {
                let tid = self.mid_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.str("target", target).bool("redetection", *redetection);
                self.instant("tag_detected", PID_MIDDLEWARE, tid, at, &args.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::EmptyTagDetected { phone, target } => {
                let tid = self.mid_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.str("target", target);
                self.instant("empty_tag_detected", PID_MIDDLEWARE, tid, at, &args.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::BeamReceived { phone, from, bytes }
            | EventKind::PeerReceived { phone, from, bytes } => {
                let tid = self.mid_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.u64("from", *from).u64("bytes", *bytes);
                self.instant(event.kind.type_label(), PID_MIDDLEWARE, tid, at, &args.finish());
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::Lease { phone, target, action, expires_nanos } => {
                let tid = self.mid_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.str("target", target).u64("expires_ns", *expires_nanos);
                self.instant(
                    &format!("lease:{}", action.label()),
                    PID_MIDDLEWARE,
                    tid,
                    at,
                    &args.finish(),
                );
                Some((PID_MIDDLEWARE, tid))
            }
            EventKind::PhysTagEntered { phone, target }
            | EventKind::PhysTagLeft { phone, target }
            | EventKind::PhysPeerEntered { phone, target }
            | EventKind::PhysPeerLeft { phone, target } => {
                let tid = self.sim_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.str("target", target);
                self.instant(event.kind.type_label(), PID_SIM, tid, at, &args.finish());
                Some((PID_SIM, tid))
            }
            EventKind::PhysExchange { phone, target, opcode, ok } => {
                let tid = self.sim_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.str("target", target).u64("opcode", *opcode).bool("ok", *ok);
                self.instant("phys_exchange", PID_SIM, tid, at, &args.finish());
                Some((PID_SIM, tid))
            }
            EventKind::PhysBeam { phone, bytes, delivered } => {
                let tid = self.sim_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.u64("bytes", *bytes).u64("delivered", *delivered);
                self.instant("phys_beam", PID_SIM, tid, at, &args.finish());
                Some((PID_SIM, tid))
            }
            EventKind::FaultInjected { phone, target, fault } => {
                let tid = self.sim_phone_tid(*phone);
                let mut args = ObjectWriter::new();
                args.str("target", target).str("fault", fault);
                self.instant(&format!("fault:{fault}"), PID_SIM, tid, at, &args.finish());
                Some((PID_SIM, tid))
            }
            // `EventKind` is non_exhaustive; future kinds simply don't
            // get a track until the exporter learns them.
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    fn metadata(&mut self, name: &str, pid: u64, tid: Option<u64>, value: &str) {
        let mut args = ObjectWriter::new();
        args.str("name", value);
        let mut w = ObjectWriter::new();
        w.str("name", name).str("ph", "M").u64("pid", pid);
        if let Some(tid) = tid {
            w.u64("tid", tid);
        }
        w.raw("args", &args.finish());
        self.push(w.finish());
    }

    /// `process_sort_index` / `thread_sort_index` metadata pinning the
    /// on-screen order of a track regardless of first-seen order.
    fn sort_index(&mut self, name: &str, pid: u64, tid: Option<u64>, index: u64) {
        let mut args = ObjectWriter::new();
        args.u64("sort_index", index);
        let mut w = ObjectWriter::new();
        w.str("name", name).str("ph", "M").u64("pid", pid);
        if let Some(tid) = tid {
            w.u64("tid", tid);
        }
        w.raw("args", &args.finish());
        self.push(w.finish());
    }

    /// Emit the `s` → `t`… → `f` flow chain of every trace that touched
    /// at least two spans, in trace-id order.
    fn flow_events(&mut self) {
        let mut flows: Vec<(u64, Vec<FlowSite>)> = self.flows.drain().collect();
        flows.sort_by_key(|(trace_id, _)| *trace_id);
        for (trace_id, sites) in flows {
            if sites.len() < 2 {
                continue;
            }
            let name = format!("trace-{trace_id}");
            let last = sites.len() - 1;
            for (i, site) in sites.iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let mut w = Self::base(&name, ph, site.pid, site.tid, site.at_nanos);
                w.str("cat", "trace").u64("id", trace_id);
                if ph == "f" {
                    // Bind the arrow head to the enclosing slice.
                    w.str("bp", "e");
                }
                self.push(w.finish());
            }
        }
    }

    fn finish(mut self) -> String {
        self.flow_events();
        self.metadata("process_name", PID_MIDDLEWARE, None, "morena middleware");
        self.sort_index("process_sort_index", PID_MIDDLEWARE, None, PID_MIDDLEWARE);
        // One thread_name per (pid, tid): a loop tid that grew into the
        // phone-track range (1000+ loops) must not rename those tracks.
        let mut named: HashSet<(u64, u64)> = HashSet::new();
        let mut loops: Vec<(String, u64)> = self.loop_tids.drain().collect();
        loops.sort_by_key(|(_, tid)| *tid);
        for (name, tid) in loops {
            if named.insert((PID_MIDDLEWARE, tid)) {
                self.metadata("thread_name", PID_MIDDLEWARE, Some(tid), &name);
            }
        }
        if self.orphan_used && named.insert((PID_MIDDLEWARE, TID_ORPHAN)) {
            self.metadata("thread_name", PID_MIDDLEWARE, Some(TID_ORPHAN), "(orphan ops)");
        }
        let mid_phones = std::mem::take(&mut self.mid_phones);
        for phone in mid_phones {
            if named.insert((PID_MIDDLEWARE, TID_PHONE_BASE + phone)) {
                self.metadata(
                    "thread_name",
                    PID_MIDDLEWARE,
                    Some(TID_PHONE_BASE + phone),
                    &format!("phone-{phone} events"),
                );
            }
        }
        let mut sim_phones = std::mem::take(&mut self.sim_phones);
        sim_phones.sort_unstable();
        if !sim_phones.is_empty() {
            self.metadata("process_name", PID_SIM, None, "nfc-sim");
            self.sort_index("process_sort_index", PID_SIM, None, PID_SIM);
            for phone in sim_phones {
                if named.insert((PID_SIM, phone + 1)) {
                    self.metadata(
                        "thread_name",
                        PID_SIM,
                        Some(phone + 1),
                        &format!("phone-{phone} radio"),
                    );
                }
                // Radio tracks sort by phone number, not first-seen order.
                self.sort_index("thread_sort_index", PID_SIM, Some(phone + 1), phone);
            }
        }
        self.out.push_str("],\"displayTimeUnit\":\"ms\"}");
        self.out
    }
}

/// Export `events` as one Chrome `trace_event` JSON object (see the
/// [module docs](self) for the track mapping). The result is a complete
/// document ready to be written to a `.json` file and opened in
/// Perfetto.
pub fn export_chrome_trace(events: &[ObsEvent]) -> String {
    let mut writer = TraceWriter::new();
    for event in events {
        writer.event(event);
    }
    writer.finish()
}

/// A buffering sink that accumulates events for Chrome-trace export.
///
/// Unlike [`RingSink`](crate::RingSink) it is unbounded — a trace with
/// holes is far less useful than a trace that cost some memory — so
/// prefer bounded workloads or [`ChromeTraceSink::take`] checkpoints
/// for long runs.
#[derive(Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl ChromeTraceSink {
    /// Create an empty buffering sink.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("chrome sink lock").len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Move the buffered events out, leaving the sink empty.
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut *self.events.lock().expect("chrome sink lock"))
    }

    /// Render the buffered events as a Chrome trace JSON document
    /// (without consuming them).
    pub fn export(&self) -> String {
        let events = self.events.lock().expect("chrome sink lock");
        export_chrome_trace(&events)
    }
}

impl ObsSink for ChromeTraceSink {
    fn record(&self, event: &ObsEvent) {
        self.events.lock().expect("chrome sink lock").push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcome, OpKind, OpOutcome};

    fn ev(seq: u64, at: u64, kind: EventKind) -> ObsEvent {
        ObsEvent { seq, at_nanos: at, trace: None, kind }
    }

    fn op_lifecycle() -> Vec<ObsEvent> {
        vec![
            ev(
                0,
                1_000,
                EventKind::OpEnqueued {
                    op_id: 0,
                    loop_name: "tag-1".into(),
                    phone: 0,
                    target: "tag-1".into(),
                    op: OpKind::Write,
                    deadline_nanos: 10_000_000,
                },
            ),
            ev(1, 1_500, EventKind::PhysTagEntered { phone: 0, target: "tag-1".into() }),
            ev(
                2,
                2_000,
                EventKind::OpAttempt {
                    op_id: 0,
                    started_nanos: 1_800,
                    duration_nanos: 200,
                    outcome: AttemptOutcome::Success,
                },
            ),
            ev(3, 2_100, EventKind::OpCompleted { op_id: 0, outcome: OpOutcome::Succeeded }),
        ]
    }

    #[test]
    fn ts_keeps_nanosecond_precision_in_microseconds() {
        assert_eq!(ts_micros(0), "0.000");
        assert_eq!(ts_micros(1), "0.001");
        assert_eq!(ts_micros(1_500), "1.500");
        assert_eq!(ts_micros(2_000_001), "2000.001");
    }

    #[test]
    fn lifecycle_renders_async_pair_and_attempt() {
        let json = export_chrome_trace(&op_lifecycle());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // Begin and end share category + id so Perfetto pairs them.
        assert_eq!(json.matches("\"cat\":\"op\"").count(), 2);
        // One loop thread, one sim radio thread, two process names.
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("{\"name\":\"tag-1\"}"));
        assert!(json.contains("{\"name\":\"phone-0 radio\"}"));
        assert!(json.contains("{\"name\":\"morena middleware\"}"));
        assert!(json.contains("{\"name\":\"nfc-sim\"}"));
    }

    #[test]
    fn completion_without_enqueue_lands_on_orphan_track() {
        let events =
            vec![ev(0, 10, EventKind::OpCompleted { op_id: 42, outcome: OpOutcome::Succeeded })];
        let json = export_chrome_trace(&events);
        assert!(json.contains(&format!("\"tid\":{TID_ORPHAN}")));
        assert!(json.contains("{\"name\":\"(orphan ops)\"}"));
    }

    #[test]
    fn loops_get_distinct_stable_tids() {
        let mk = |op_id: u64, name: &str| {
            ev(
                op_id,
                op_id * 10,
                EventKind::OpEnqueued {
                    op_id,
                    loop_name: name.into(),
                    phone: 0,
                    target: name.into(),
                    op: OpKind::Read,
                    deadline_nanos: 1_000,
                },
            )
        };
        let json = export_chrome_trace(&[mk(0, "tag-a"), mk(1, "tag-b"), mk(2, "tag-a")]);
        // tag-a seen first → tid 1 (twice), tag-b → tid 2.
        assert_eq!(json.matches("\"tid\":1,").count() + json.matches("\"tid\":1}").count(), 3);
    }

    #[test]
    fn traced_spans_link_into_one_flow_chain() {
        use crate::trace::TraceContext;
        let root = TraceContext::root(7, 1);
        let mut events = op_lifecycle();
        events[0].trace = Some(root); // op span on its loop track
        events[1].trace = Some(root.child(2)); // sim ground truth
        events[2].trace = Some(root); // same span: no extra anchor
        events[3].trace = Some(root.child(3)); // completion-side span
        let json = export_chrome_trace(&events);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"t\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert_eq!(json.matches("\"cat\":\"trace\"").count(), 3);
        assert_eq!(json.matches("\"name\":\"trace-7\"").count(), 3);
        // The arrow head binds to the enclosing slice.
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn single_span_traces_emit_no_flow_events() {
        use crate::trace::TraceContext;
        let mut events = op_lifecycle();
        events[0].trace = Some(TraceContext::root(9, 1));
        let json = export_chrome_trace(&events);
        assert!(!json.contains("\"cat\":\"trace\""));
        assert!(!json.contains("\"ph\":\"s\""));
    }

    #[test]
    fn exports_pin_track_order_with_sort_indices() {
        let json = export_chrome_trace(&op_lifecycle());
        assert_eq!(json.matches("\"name\":\"process_sort_index\"").count(), 2);
        assert!(json.contains("\"name\":\"thread_sort_index\""));
        assert!(json.contains("{\"sort_index\":0}")); // phone-0 radio
    }

    #[test]
    fn thread_names_are_emitted_once_per_track() {
        // 1001 loops push loop tids into the phone-track range; the
        // colliding track must keep its first (loop) name only.
        let mut events: Vec<ObsEvent> = (0..=1000u64)
            .map(|i| {
                ev(
                    i,
                    i * 10,
                    EventKind::OpEnqueued {
                        op_id: i,
                        loop_name: format!("loop-{i}"),
                        phone: 0,
                        target: "t".into(),
                        op: OpKind::Read,
                        deadline_nanos: 1_000,
                    },
                )
            })
            .collect();
        events.push(ev(
            1001,
            10_100,
            EventKind::TagDetected { phone: 0, target: "t".into(), redetection: false },
        ));
        let json = export_chrome_trace(&events);
        let renames = json
            .match_indices("\"tid\":1001")
            .filter(|(i, _)| json[..*i].ends_with("\"ph\":\"M\",\"pid\":1,"))
            .count();
        assert_eq!(renames, 1, "colliding tid 1001 must be named exactly once");
    }

    #[test]
    fn sink_buffers_and_exports() {
        let sink = ChromeTraceSink::new();
        assert!(sink.is_empty());
        for event in op_lifecycle() {
            sink.record(&event);
        }
        assert_eq!(sink.len(), 4);
        let json = sink.export();
        assert!(json.contains("\"ph\":\"b\""));
        assert_eq!(sink.take().len(), 4);
        assert!(sink.is_empty());
    }
}
