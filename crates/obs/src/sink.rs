//! Pluggable event sinks.
//!
//! A [`Recorder`](crate::Recorder) forwards every stamped event to one
//! [`ObsSink`]. Three implementations cover the common cases:
//!
//! * [`RingSink`] — bounded in-memory ring for tests and the
//!   correlation module; overwrites the oldest entries and counts drops.
//! * [`JsonlSink`] — streams one JSON object per line to any writer;
//!   the machine-readable trace format for bench runs.
//! * [`NullSink`] — swallows everything (useful to measure pure
//!   recording overhead).
//!
//! [`TeeSink`] fans out to several sinks at once (e.g. ring + JSONL).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::ObsEvent;
use crate::metrics::Counter;

/// Destination for recorded events.
///
/// Implementations must be cheap and non-blocking where possible: the
/// recorder calls [`ObsSink::record`] inline on middleware threads.
pub trait ObsSink: Send + Sync {
    /// Consume one event.
    fn record(&self, event: &ObsEvent);

    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

struct RingState {
    entries: VecDeque<ObsEvent>,
    dropped: u64,
    drop_counter: Option<Counter>,
}

/// Bounded in-memory ring buffer of events.
///
/// When full, the oldest event is overwritten and the drop counter is
/// incremented, so consumers can always tell whether the window is
/// complete — the same contract as the simulator's trace ring.
pub struct RingSink {
    state: Mutex<RingState>,
    capacity: usize,
}

impl RingSink {
    /// Create a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(RingState {
                entries: VecDeque::new(),
                dropped: 0,
                drop_counter: None,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Mirror the drop count into a metrics counter (conventionally
    /// `registry.counter("obs.sink.dropped")`), so sink overflow is
    /// visible in any [`MetricsSnapshot`](crate::MetricsSnapshot) — and
    /// to the watchdog's drop-rate rule — without holding the ring
    /// handle. Drops that happened before binding are carried over.
    pub fn bind_drop_counter(&self, counter: Counter) {
        let mut state = self.state.lock().expect("ring lock");
        counter.add(state.dropped);
        state.drop_counter = Some(counter);
    }

    /// Copy out the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        let state = self.state.lock().expect("ring lock");
        state.entries.iter().cloned().collect()
    }

    /// Move the current contents out, leaving the ring empty (drop
    /// counter is preserved).
    pub fn drain(&self) -> Vec<ObsEvent> {
        let mut state = self.state.lock().expect("ring lock");
        state.entries.drain(..).collect()
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped_entries(&self) -> u64 {
        self.state.lock().expect("ring lock").dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").entries.len()
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ObsSink for RingSink {
    fn record(&self, event: &ObsEvent) {
        let mut state = self.state.lock().expect("ring lock");
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
            state.dropped += 1;
            if let Some(counter) = &state.drop_counter {
                counter.inc();
            }
        }
        state.entries.push_back(event.clone());
    }
}

/// Streams events as JSON lines (one object per line) to any writer.
///
/// The schema is flat: every line carries `seq`, `at_ns`, and `type`,
/// plus the type-specific fields of [`EventKind`](crate::EventKind).
/// Write errors are counted, not propagated — observability must never
/// take down the middleware.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    lines: AtomicU64,
    write_errors: AtomicU64,
}

impl JsonlSink {
    /// Wrap any writer (a file, a `Vec<u8>`, a pipe).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self { out: Mutex::new(out), lines: AtomicU64::new(0), write_errors: AtomicU64::new(0) }
    }

    /// Number of lines successfully written.
    pub fn lines_written(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Number of write failures swallowed.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl ObsSink for JsonlSink {
    fn record(&self, event: &ObsEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl lock");
        if out.write_all(line.as_bytes()).is_ok() {
            self.lines.fetch_add(1, Ordering::Relaxed);
        } else {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl lock").flush();
    }
}

/// Swallows every event. Installing a `NullSink` enables the recording
/// path (event construction, sequencing) without retaining anything —
/// handy for measuring instrumentation overhead in benches.
#[derive(Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn record(&self, _event: &ObsEvent) {}
}

/// Fans every event out to several sinks in order.
pub struct TeeSink(Vec<std::sync::Arc<dyn ObsSink>>);

impl TeeSink {
    /// Build a tee over the given sinks.
    pub fn new(sinks: Vec<std::sync::Arc<dyn ObsSink>>) -> Self {
        Self(sinks)
    }
}

impl ObsSink for TeeSink {
    fn record(&self, event: &ObsEvent) {
        for sink in &self.0 {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ObsEvent};
    use std::sync::Arc;

    fn event(seq: u64) -> ObsEvent {
        ObsEvent {
            seq,
            at_nanos: seq * 10,
            trace: None,
            kind: EventKind::PhysTagEntered { phone: 0, target: "tag-1".into() },
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = RingSink::new(2);
        for seq in 0..5 {
            ring.record(&event(seq));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 3);
        assert_eq!(snap[1].seq, 4);
        assert_eq!(ring.dropped_entries(), 3);
    }

    #[test]
    fn ring_drops_mirror_into_a_bound_counter() {
        let registry = crate::MetricsRegistry::new();
        let ring = RingSink::new(2);
        ring.record(&event(0));
        ring.record(&event(1));
        ring.record(&event(2)); // one drop before binding
        ring.bind_drop_counter(registry.counter("obs.sink.dropped"));
        assert_eq!(registry.snapshot().counter("obs.sink.dropped"), 1);
        ring.record(&event(3));
        ring.record(&event(4));
        assert_eq!(ring.dropped_entries(), 3);
        assert_eq!(registry.snapshot().counter("obs.sink.dropped"), 3);
    }

    #[test]
    fn ring_drain_empties_but_keeps_drop_count() {
        let ring = RingSink::new(1);
        ring.record(&event(0));
        ring.record(&event(1));
        assert_eq!(ring.drain().len(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped_entries(), 1);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        use std::sync::Mutex as StdMutex;

        #[derive(Clone, Default)]
        struct Shared(Arc<StdMutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = JsonlSink::new(Box::new(shared.clone()));
        sink.record(&event(0));
        sink.record(&event(1));
        sink.flush();
        assert_eq!(sink.lines_written(), 2);
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains("\"type\":\"phys_tag_entered\""));
    }

    #[test]
    fn tee_fans_out() {
        let a = Arc::new(RingSink::new(8));
        let b = Arc::new(RingSink::new(8));
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.record(&event(7));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
