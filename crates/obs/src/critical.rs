//! Per-trace critical-path analysis over causal traces.
//!
//! [`crate::correlate`] attributes *one operation's* latency into
//! out-of-range wait, exchange time, and queue delay. A causal trace
//! ([`crate::trace`]) strings many such operations together — the
//! discovery sighting that minted a reference, the beam that carried a
//! payload to another phone, the handler write it triggered. This
//! module joins the two: for every trace id in an event stream it
//! collects the trace's spans, pairs each operation-bearing span with
//! its [`OpBreakdown`], and reports where the end-to-end time actually
//! went — **which hop** (operation) dominated, and **which component**
//! (out-of-range vs exchange vs queue) dominated within the whole
//! trace.
//!
//! The stream handed to [`analyze_traces`] should be the *full* event
//! stream, not just one trace's events: physical presence events
//! usually carry other (or no) trace contexts, and the per-op
//! attribution needs them.
//!
//! # Examples
//!
//! ```
//! use morena_obs::critical::analyze_traces;
//! use morena_obs::{EventKind, ObsEvent, OpKind, OpOutcome, TraceContext};
//!
//! let root = TraceContext::root(1, 1);
//! let events = [
//!     ObsEvent { seq: 0, at_nanos: 0, trace: Some(root), kind: EventKind::OpEnqueued {
//!         op_id: 0, loop_name: "tag-A".into(), phone: 0, target: "A".into(),
//!         op: OpKind::Write, deadline_nanos: 10_000 } },
//!     ObsEvent { seq: 1, at_nanos: 900, trace: Some(root), kind: EventKind::OpCompleted {
//!         op_id: 0, outcome: OpOutcome::Succeeded } },
//! ];
//! let analysis = analyze_traces(&events);
//! assert_eq!(analysis[0].trace_id, 1);
//! assert_eq!(analysis[0].total_nanos, 900);
//! ```

use std::collections::{BTreeMap, HashSet};

use crate::correlate::{correlate, OpBreakdown};
use crate::event::{EventKind, ObsEvent};
use crate::json::ObjectWriter;

/// The three exhaustive latency components of
/// [`crate::correlate::OpBreakdown`], as a named dominant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostComponent {
    /// The target was physically out of radio range.
    OutOfRange,
    /// Time inside physical attempts.
    Exchange,
    /// Queueing, retry backoff, and scheduling slack.
    Queue,
}

impl CostComponent {
    /// Stable lowercase label (matches the `*_ns` JSON field prefixes).
    pub fn label(self) -> &'static str {
        match self {
            CostComponent::OutOfRange => "out_of_range",
            CostComponent::Exchange => "exchange",
            CostComponent::Queue => "queue",
        }
    }
}

/// One operation-bearing hop of a trace: a span that enqueued an
/// operation, joined with that operation's latency attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHop {
    /// Span that issued the operation.
    pub span_id: u64,
    /// Its parent span (0 for the trace root).
    pub parent_span_id: u64,
    /// The operation's latency attribution from [`correlate`].
    pub breakdown: OpBreakdown,
}

/// Everything learned about one trace: its span graph, its
/// operation-bearing hops, and where the time went.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// The trace analyzed.
    pub trace_id: u64,
    /// Earliest event timestamp on the trace, clock nanoseconds.
    pub started_nanos: u64,
    /// Latest event timestamp on the trace.
    pub finished_nanos: u64,
    /// End-to-end wall time: `finished - started`.
    pub total_nanos: u64,
    /// Distinct spans observed on the trace.
    pub spans: u64,
    /// Distinct phones whose events joined the trace (cross-device
    /// reach: 2+ means the trace crossed an NFC link).
    pub phones: u64,
    /// `true` when the span graph is one tree: exactly one root and
    /// every other span's parent was observed.
    pub connected: bool,
    /// Operation-bearing hops in causal (enqueue) order.
    pub hops: Vec<TraceHop>,
    /// Out-of-range wait summed over all hops.
    pub out_of_range_nanos: u64,
    /// Exchange time summed over all hops.
    pub exchange_nanos: u64,
    /// Queue delay summed over all hops.
    pub queue_nanos: u64,
    /// Index into [`TraceAnalysis::hops`] of the hop with the largest
    /// total latency — the hop to optimize first. `None` when the trace
    /// carried no operations.
    pub dominant_hop: Option<usize>,
    /// The component with the largest summed cost, or `None` when all
    /// three are zero.
    pub dominant_component: Option<CostComponent>,
}

impl TraceAnalysis {
    /// Render as one JSON object (hops nested as [`OpBreakdown`]
    /// objects plus their span edges).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("trace_id", self.trace_id)
            .u64("started_ns", self.started_nanos)
            .u64("finished_ns", self.finished_nanos)
            .u64("total_ns", self.total_nanos)
            .u64("spans", self.spans)
            .u64("phones", self.phones)
            .bool("connected", self.connected)
            .u64("out_of_range_ns", self.out_of_range_nanos)
            .u64("exchange_ns", self.exchange_nanos)
            .u64("queue_ns", self.queue_nanos);
        match self.dominant_hop {
            Some(i) => w.u64("dominant_hop_op_id", self.hops[i].breakdown.op_id),
            None => w.raw("dominant_hop_op_id", "null"),
        };
        match self.dominant_component {
            Some(c) => w.str("dominant_component", c.label()),
            None => w.raw("dominant_component", "null"),
        };
        let mut hops = String::from("[");
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                hops.push(',');
            }
            let mut h = ObjectWriter::new();
            h.u64("span_id", hop.span_id)
                .u64("parent_span_id", hop.parent_span_id)
                .raw("op", &hop.breakdown.to_json());
            hops.push_str(&h.finish());
        }
        hops.push(']');
        w.raw("hops", &hops);
        w.finish()
    }
}

/// Per-trace working state while scanning the stream.
#[derive(Default)]
struct TraceAccum {
    started: u64,
    finished: u64,
    /// span_id → parent_span_id, first sighting wins.
    spans: BTreeMap<u64, u64>,
    phones: HashSet<u64>,
    /// (span_id, parent_span_id, op_id) for every traced enqueue.
    ops: Vec<(u64, u64, u64)>,
}

/// Phone attribution of an event, when its kind names one.
fn event_phone(kind: &EventKind) -> Option<u64> {
    match kind {
        EventKind::OpEnqueued { phone, .. }
        | EventKind::SpanClosed { phone, .. }
        | EventKind::TagDetected { phone, .. }
        | EventKind::EmptyTagDetected { phone, .. }
        | EventKind::BeamReceived { phone, .. }
        | EventKind::PeerReceived { phone, .. }
        | EventKind::Lease { phone, .. }
        | EventKind::PhysTagEntered { phone, .. }
        | EventKind::PhysTagLeft { phone, .. }
        | EventKind::PhysPeerEntered { phone, .. }
        | EventKind::PhysPeerLeft { phone, .. }
        | EventKind::PhysExchange { phone, .. }
        | EventKind::PhysBeam { phone, .. }
        | EventKind::FaultInjected { phone, .. } => Some(*phone),
        EventKind::OpAttempt { .. } | EventKind::OpCompleted { .. } => None,
    }
}

/// Analyze every trace present in `events`. Returns one
/// [`TraceAnalysis`] per trace id, sorted by trace id. Events without a
/// trace context still participate — they feed the per-op attribution —
/// but form no analysis of their own.
pub fn analyze_traces(events: &[ObsEvent]) -> Vec<TraceAnalysis> {
    let breakdowns: BTreeMap<u64, OpBreakdown> =
        correlate(events).into_iter().map(|b| (b.op_id, b)).collect();

    let mut ordered: Vec<&ObsEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.at_nanos, e.seq));

    let mut traces: BTreeMap<u64, TraceAccum> = BTreeMap::new();
    for event in ordered {
        let Some(ctx) = event.trace else { continue };
        let accum = traces
            .entry(ctx.trace_id)
            .or_insert_with(|| TraceAccum { started: event.at_nanos, ..TraceAccum::default() });
        accum.started = accum.started.min(event.at_nanos);
        accum.finished = accum.finished.max(event.at_nanos);
        accum.spans.entry(ctx.span_id).or_insert(ctx.parent_span_id);
        if let Some(phone) = event_phone(&event.kind) {
            accum.phones.insert(phone);
        }
        if let EventKind::OpEnqueued { op_id, .. } = &event.kind {
            accum.ops.push((ctx.span_id, ctx.parent_span_id, *op_id));
        }
    }

    traces
        .into_iter()
        .map(|(trace_id, accum)| {
            let roots = accum.spans.values().filter(|&&parent| parent == 0).count();
            let connected = roots == 1
                && accum
                    .spans
                    .values()
                    .all(|&parent| parent == 0 || accum.spans.contains_key(&parent));

            let mut hops: Vec<TraceHop> = accum
                .ops
                .iter()
                .filter_map(|&(span_id, parent_span_id, op_id)| {
                    let breakdown = breakdowns.get(&op_id)?.clone();
                    Some(TraceHop { span_id, parent_span_id, breakdown })
                })
                .collect();
            hops.sort_by_key(|h| (h.breakdown.enqueued_nanos, h.breakdown.op_id));

            let out_of_range: u64 = hops.iter().map(|h| h.breakdown.out_of_range_nanos).sum();
            let exchange: u64 = hops.iter().map(|h| h.breakdown.exchange_nanos).sum();
            let queue: u64 = hops.iter().map(|h| h.breakdown.queue_nanos).sum();

            let dominant_hop = hops
                .iter()
                .enumerate()
                .max_by_key(|(_, h)| h.breakdown.total_nanos)
                .map(|(i, _)| i);
            let dominant_component = [
                (CostComponent::OutOfRange, out_of_range),
                (CostComponent::Exchange, exchange),
                (CostComponent::Queue, queue),
            ]
            .into_iter()
            .filter(|&(_, cost)| cost > 0)
            .max_by_key(|&(_, cost)| cost)
            .map(|(component, _)| component);

            TraceAnalysis {
                trace_id,
                started_nanos: accum.started,
                finished_nanos: accum.finished,
                total_nanos: accum.finished.saturating_sub(accum.started),
                spans: accum.spans.len() as u64,
                phones: accum.phones.len() as u64,
                connected,
                hops,
                out_of_range_nanos: out_of_range,
                exchange_nanos: exchange,
                queue_nanos: queue,
                dominant_hop,
                dominant_component,
            }
        })
        .collect()
}

/// [`analyze_traces`] narrowed to one trace id.
pub fn analyze_trace(events: &[ObsEvent], trace_id: u64) -> Option<TraceAnalysis> {
    analyze_traces(events).into_iter().find(|a| a.trace_id == trace_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcome, OpKind, OpOutcome};
    use crate::trace::TraceContext;

    fn ev(seq: u64, at: u64, trace: Option<TraceContext>, kind: EventKind) -> ObsEvent {
        ObsEvent { seq, at_nanos: at, trace, kind }
    }

    fn enqueue(seq: u64, at: u64, trace: Option<TraceContext>, op_id: u64) -> ObsEvent {
        ev(
            seq,
            at,
            trace,
            EventKind::OpEnqueued {
                op_id,
                loop_name: "tag-A".into(),
                phone: op_id % 2,
                target: "A".into(),
                op: OpKind::Write,
                deadline_nanos: at + 1_000_000,
            },
        )
    }

    fn complete(seq: u64, at: u64, trace: Option<TraceContext>, op_id: u64) -> ObsEvent {
        ev(seq, at, trace, EventKind::OpCompleted { op_id, outcome: OpOutcome::Succeeded })
    }

    /// A two-hop trace: op 0 on phone 0 (root span), op 1 on phone 1
    /// (child span), with the tag out of range before op 1's attempt.
    fn two_hop_trace() -> Vec<ObsEvent> {
        let root = TraceContext::root(3, 1);
        let child = root.child(2);
        vec![
            enqueue(0, 0, Some(root), 0),
            complete(1, 100, Some(root), 0),
            enqueue(2, 100, Some(child), 1),
            ev(3, 600, None, EventKind::PhysTagEntered { phone: 1, target: "A".into() }),
            ev(
                4,
                700,
                Some(child),
                EventKind::OpAttempt {
                    op_id: 1,
                    started_nanos: 600,
                    duration_nanos: 100,
                    outcome: AttemptOutcome::Success,
                },
            ),
            complete(5, 700, Some(child), 1),
        ]
    }

    #[test]
    fn joins_hops_with_breakdowns_and_finds_the_dominant() {
        let analysis = analyze_traces(&two_hop_trace());
        assert_eq!(analysis.len(), 1);
        let a = &analysis[0];
        assert_eq!(a.trace_id, 3);
        assert_eq!((a.started_nanos, a.finished_nanos, a.total_nanos), (0, 700, 700));
        assert_eq!(a.spans, 2);
        assert_eq!(a.phones, 2);
        assert!(a.connected);
        assert_eq!(a.hops.len(), 2);
        // Hop 1 (op 1): 600ns total, 500ns out of range, 100ns exchange.
        assert_eq!(a.dominant_hop, Some(1));
        assert_eq!(a.dominant_component, Some(CostComponent::OutOfRange));
        assert_eq!(a.out_of_range_nanos, 500);
        assert_eq!(a.exchange_nanos, 100);
        // Per-hop sums still satisfy each hop's invariant.
        for hop in &a.hops {
            let b = &hop.breakdown;
            assert_eq!(b.out_of_range_nanos + b.exchange_nanos + b.queue_nanos, b.total_nanos);
        }
    }

    #[test]
    fn disconnected_and_multi_root_graphs_are_flagged() {
        // A child span whose parent was never observed.
        let orphan = TraceContext::root(1, 5).child(6);
        let events = [enqueue(0, 0, Some(orphan), 0), complete(1, 10, Some(orphan), 0)];
        assert!(!analyze_traces(&events)[0].connected);

        // Two roots sharing one trace id.
        let events = [
            enqueue(0, 0, Some(TraceContext::root(1, 1)), 0),
            enqueue(1, 5, Some(TraceContext::root(1, 2)), 1),
        ];
        assert!(!analyze_traces(&events)[0].connected);
    }

    #[test]
    fn untraced_events_feed_attribution_but_form_no_trace() {
        let events = two_hop_trace();
        let analysis = analyze_traces(&events);
        // PhysTagEntered carried no trace, yet op 1's out-of-range
        // attribution saw it; and no analysis exists besides trace 3.
        assert_eq!(analysis.len(), 1);
        assert_eq!(analysis[0].out_of_range_nanos, 500);
        assert!(analyze_trace(&events, 3).is_some());
        assert!(analyze_trace(&events, 99).is_none());
    }

    #[test]
    fn empty_trace_without_ops_has_no_dominant_hop() {
        let root = TraceContext::root(2, 1);
        let events = [ev(
            0,
            50,
            Some(root),
            EventKind::TagDetected { phone: 0, target: "A".into(), redetection: false },
        )];
        let a = &analyze_traces(&events)[0];
        assert!(a.hops.is_empty());
        assert_eq!(a.dominant_hop, None);
        assert_eq!(a.dominant_component, None);
        assert_eq!(a.total_nanos, 0);
        assert!(a.connected);
    }

    #[test]
    fn analysis_serializes_to_json() {
        let json = analyze_traces(&two_hop_trace())[0].to_json();
        assert!(json.contains("\"trace_id\":3"));
        assert!(json.contains("\"connected\":true"));
        assert!(json.contains("\"dominant_component\":\"out_of_range\""));
        assert!(json.contains("\"dominant_hop_op_id\":1"));
        assert!(json.contains("\"hops\":[{\"span_id\":1,"));
        assert!(json.contains("\"parent_span_id\":0"));
    }
}
