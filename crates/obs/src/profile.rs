//! Allocation profiling and memory-footprint accounting.
//!
//! Two independent facilities live here:
//!
//! * [`MemFootprint`] — a "deep bytes, best-effort" sizing trait that
//!   hot middleware structures implement so live snapshots can carry a
//!   `mem_bytes` figure (and benches can report bytes per reference).
//!   Always available; costs nothing unless called.
//! * [`AllocScope`] / the tracking allocator — a counting wrapper
//!   around the system allocator, compiled in only under the
//!   `alloc-profile` feature. With the feature on, every allocation
//!   bumps a process-global and a thread-local counter pair, and an
//!   `AllocScope` measures the delta over a region so benches and
//!   tests can assert allocations-per-operation. With the feature off
//!   the same API exists but every reading is zero, the process keeps
//!   the stock allocator, and the crate keeps `forbid(unsafe_code)` —
//!   zero overhead, verifiably (see the crate tests).
//!
//! # Scope semantics
//!
//! A scope is a *baseline*: it captures the counters at construction
//! and reports `current - baseline`. That makes nesting **inclusive**
//! — an inner scope's allocations are also visible to any enclosing
//! scope — which is what per-phase bench accounting wants. Thread
//! scopes ([`AllocScope::thread`]) read thread-local counters, so
//! allocations made by *other* threads never leak into them; global
//! scopes ([`AllocScope::global`]) read the process-wide totals, which
//! is the right tool when the measured work runs on a worker pool.
//!
//! # Examples
//!
//! ```
//! use morena_obs::profile::AllocScope;
//!
//! let scope = AllocScope::thread();
//! let v = std::hint::black_box(vec![0u8; 4096]);
//! let stats = scope.stats();
//! # let _ = v;
//! // With `alloc-profile` on, stats.allocs >= 1 and stats.bytes >= 4096;
//! // without it, both are 0.
//! if morena_obs::profile::ENABLED {
//!     assert!(stats.allocs >= 1);
//!     assert!(stats.bytes >= 4096);
//! } else {
//!     assert_eq!(stats.allocs, 0);
//! }
//! ```

/// Whether the tracking allocator is compiled into this build.
///
/// `false` means [`AllocScope`] readings are always zero and the
/// process runs on the stock system allocator.
pub const ENABLED: bool = cfg!(feature = "alloc-profile");

/// Best-effort deep size of a value in bytes: the value itself plus
/// the heap blocks it uniquely owns.
///
/// "Best-effort" is load-bearing: implementations estimate
/// (`capacity × element size` for containers, shallow size for opaque
/// trait objects and shared `Arc`s) rather than walk the true
/// allocation graph, and shared ownership is attributed to exactly one
/// owner to avoid double counting. The figure is for capacity planning
/// ("bytes per live reference"), not for exact accounting.
///
/// Implementations must be **cheap and non-blocking** when reached
/// from a [`SnapshotProvider`](crate::inspect::SnapshotProvider): a
/// few atomic loads and short mutex acquisitions at most, because
/// snapshots are polled live while the system is under load.
pub trait MemFootprint {
    /// Deep size in bytes, best-effort (see the trait docs).
    fn mem_bytes(&self) -> u64;
}

impl MemFootprint for String {
    fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<String>() + self.capacity()) as u64
    }
}

impl MemFootprint for Vec<u8> {
    fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<Vec<u8>>() + self.capacity()) as u64
    }
}

/// Allocation counters over some window: number of allocator calls and
/// total bytes requested. Deallocations are deliberately not tracked —
/// this measures allocation *pressure* (work handed to the allocator),
/// not live heap size; live size is [`MemFootprint`]'s job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocator calls (`alloc`, `alloc_zeroed`, and `realloc` each
    /// count once).
    pub allocs: u64,
    /// Bytes requested across those calls (`realloc` counts its new
    /// size).
    pub bytes: u64,
}

impl AllocStats {
    /// Counter-wise saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Totals allocated by the current thread since it started. All zeros
/// unless the `alloc-profile` feature is on.
pub fn thread_totals() -> AllocStats {
    imp::thread_totals()
}

/// Totals allocated by the whole process since start. All zeros unless
/// the `alloc-profile` feature is on.
pub fn global_totals() -> AllocStats {
    imp::global_totals()
}

/// Which counter pair an [`AllocScope`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Thread,
    Global,
}

/// A measurement region: captures the allocation counters at
/// construction, reports the delta on [`stats`](AllocScope::stats).
///
/// See the [module docs](self) for nesting and cross-thread semantics.
/// Without the `alloc-profile` feature every reading is zero.
#[derive(Debug)]
pub struct AllocScope {
    base: AllocStats,
    kind: ScopeKind,
}

impl AllocScope {
    /// Scope over the **current thread's** allocations only. Other
    /// threads' allocations never show up in this scope's stats.
    pub fn thread() -> AllocScope {
        AllocScope { base: thread_totals(), kind: ScopeKind::Thread }
    }

    /// Scope over **process-wide** allocations. Use this when the
    /// measured work executes on worker threads (e.g. the sharded
    /// scheduler); keep the process otherwise quiescent for the
    /// reading to be attributable.
    pub fn global() -> AllocScope {
        AllocScope { base: global_totals(), kind: ScopeKind::Global }
    }

    /// Allocations since this scope was created.
    pub fn stats(&self) -> AllocStats {
        let now = match self.kind {
            ScopeKind::Thread => thread_totals(),
            ScopeKind::Global => global_totals(),
        };
        now.since(&self.base)
    }
}

#[cfg(feature = "alloc-profile")]
mod imp {
    //! The counting allocator. The only unsafe code in the crate lives
    //! here, and only when the `alloc-profile` feature is on.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::AllocStats;

    static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // Const-initialized: the first access from inside the allocator
        // must not itself allocate (a lazy initializer could recurse).
        static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
        static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    fn record(bytes: usize) {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        // `try_with` instead of `with`: allocations can happen during
        // TLS teardown, when the slots are already gone. Those land in
        // the globals only.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
    }

    pub(super) fn thread_totals() -> AllocStats {
        AllocStats {
            allocs: THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0),
            bytes: THREAD_BYTES.try_with(Cell::get).unwrap_or(0),
        }
    }

    pub(super) fn global_totals() -> AllocStats {
        AllocStats {
            allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed),
            bytes: GLOBAL_BYTES.load(Ordering::Relaxed),
        }
    }

    /// A pass-through to [`System`] that counts calls and bytes.
    pub struct TrackingAllocator;

    // SAFETY: every method defers to `System`, which upholds the
    // `GlobalAlloc` contract; the counting side effects never allocate
    // (const-init thread locals, relaxed atomics) and never touch the
    // returned pointers.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for TrackingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: TrackingAllocator = TrackingAllocator;
}

#[cfg(not(feature = "alloc-profile"))]
mod imp {
    //! Feature off: no allocator swap, no counters, no unsafe. Every
    //! reading is zero.
    use super::AllocStats;

    pub(super) fn thread_totals() -> AllocStats {
        AllocStats::default()
    }

    pub(super) fn global_totals() -> AllocStats {
        AllocStats::default()
    }
}

#[cfg(feature = "alloc-profile")]
pub use imp::TrackingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_footprint_counts_capacity_not_len() {
        let mut s = String::with_capacity(256);
        s.push('x');
        assert_eq!(s.mem_bytes(), (std::mem::size_of::<String>() + 256) as u64);
        let v: Vec<u8> = Vec::with_capacity(64);
        assert_eq!(v.mem_bytes(), (std::mem::size_of::<Vec<u8>>() + 64) as u64);
    }

    #[test]
    fn alloc_stats_since_saturates() {
        let a = AllocStats { allocs: 3, bytes: 100 };
        let b = AllocStats { allocs: 5, bytes: 50 };
        assert_eq!(a.since(&b), AllocStats { allocs: 0, bytes: 50 });
    }

    #[cfg(feature = "alloc-profile")]
    mod enabled {
        use super::super::*;

        #[test]
        fn scope_sees_own_thread_allocations() {
            let scope = AllocScope::thread();
            let v = std::hint::black_box(vec![0u8; 8192]);
            let stats = scope.stats();
            assert!(stats.allocs >= 1, "no allocations recorded: {stats:?}");
            assert!(stats.bytes >= 8192, "bytes under-counted: {stats:?}");
            drop(v);
        }

        #[test]
        fn nested_scopes_attribute_inclusively() {
            let outer = AllocScope::thread();
            let a = std::hint::black_box(vec![0u8; 4096]);
            let inner = AllocScope::thread();
            let b = std::hint::black_box(vec![0u8; 1024]);
            let inner_stats = inner.stats();
            let outer_stats = outer.stats();
            // The inner scope sees only what happened after it opened.
            assert!(inner_stats.bytes >= 1024);
            assert!(inner_stats.bytes < 4096, "inner scope absorbed the outer allocation");
            // The outer scope sees both regions (inclusive nesting).
            assert!(outer_stats.bytes >= 4096 + 1024);
            assert!(outer_stats.allocs >= inner_stats.allocs + 1);
            drop((a, b));
        }

        #[test]
        fn cross_thread_allocations_stay_out_of_thread_scopes() {
            let scope = AllocScope::thread();
            let quiet = scope.stats();
            std::thread::spawn(|| {
                std::hint::black_box(vec![0u8; 1 << 20]);
            })
            .join()
            .unwrap();
            let after = scope.stats();
            // The other thread's megabyte must not appear here. The
            // join machinery may allocate a little on this thread, so
            // allow slack well below the foreign allocation's size.
            assert!(
                after.bytes.saturating_sub(quiet.bytes) < 1 << 19,
                "foreign allocation leaked into a thread scope: {after:?} vs {quiet:?}"
            );
        }

        #[test]
        fn global_scope_sees_other_threads() {
            let scope = AllocScope::global();
            std::thread::spawn(|| {
                std::hint::black_box(vec![0u8; 1 << 20]);
            })
            .join()
            .unwrap();
            let stats = scope.stats();
            assert!(stats.bytes >= 1 << 20, "global scope missed a worker allocation: {stats:?}");
        }
    }

    #[cfg(not(feature = "alloc-profile"))]
    mod disabled {
        use super::super::*;

        /// The zero-overhead contract: with the feature off, no
        /// counter exists — allocate as much as you like, every scope
        /// and total reads zero, and `ENABLED` is `false` so callers
        /// can detect the stub at compile time.
        #[test]
        fn disabled_profile_reads_zero_despite_allocations() {
            assert!(!ENABLED);
            let scope = AllocScope::thread();
            let global = AllocScope::global();
            let v = std::hint::black_box(vec![0u8; 1 << 20]);
            assert_eq!(scope.stats(), AllocStats::default());
            assert_eq!(global.stats(), AllocStats::default());
            assert_eq!(thread_totals(), AllocStats::default());
            assert_eq!(global_totals(), AllocStats::default());
            drop(v);
        }
    }
}
