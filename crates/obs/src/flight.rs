//! The always-on flight recorder: bounded per-component event history
//! with JSON dump-to-disk on stall, panic, or demand.
//!
//! A snapshot ([`crate::inspect`]) tells you a loop is stuck *now*; a
//! metrics series ([`crate::timeseries`]) tells you *when* throughput
//! cliffed; neither tells you the last thing the stuck component
//! actually did. The [`FlightRecorder`] is an [`ObsSink`] that keeps,
//! per component, a small ring of the most recent [`ObsEvent`]s —
//! cheap enough to leave installed for a process's whole life (the
//! black-box recorder, not the full trace).
//!
//! **Component attribution.** Events carry no component field, so the
//! recorder derives one: `OpEnqueued` names its event loop and
//! registers the op id; later `OpAttempt`/`OpCompleted` events for the
//! same id land in the same ring (the id mapping is bounded and
//! evicted FIFO, so an id that outlives the map falls back to the
//! `unattributed` ring). Physical tag traffic keys as `tag-<uid>` —
//! deliberately the same shape as the middleware's loop names — so a
//! loop's retries and its tag's radio ground truth interleave in one
//! ring. Beam/peer traffic keys as `phone-<n>`.
//!
//! **Dumps.** [`FlightRecorder::dump_json`] renders everything held —
//! per-component rings, the health-transition history fed by
//! [`FlightRecorder::note_health`], and optionally the triggering
//! [`HealthReport`] — as one JSON document. Three triggers write it to
//! disk: the sampler on a `Healthy/Degraded → Stalled` transition
//! (wired in [`crate::timeseries`]), a process panic (via
//! [`install_panic_hook`]), and on demand ([`FlightRecorder::dump_to_dir`]).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, ObsEvent};
use crate::inspect::{Health, HealthReport};
use crate::json::write_str;
use crate::sink::ObsSink;

/// Ring key for events that cannot be attributed to a component (an
/// `OpAttempt` whose enqueue was evicted from the id map, for example).
pub const UNATTRIBUTED: &str = "unattributed";

/// Ring key absorbing events for new components once
/// [`FlightConfig::max_components`] distinct rings exist.
pub const OVERFLOW: &str = "overflow";

/// Sizing knobs for a [`FlightRecorder`]. Everything is bounded; the
/// recorder's footprint is `O(max_components × events_per_component)`
/// regardless of run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Events retained per component ring. Default 64.
    pub events_per_component: usize,
    /// Distinct component rings before new components fall into the
    /// [`OVERFLOW`] ring. Default 512.
    pub max_components: usize,
    /// Health transitions retained. Default 256.
    pub health_history: usize,
    /// Live `op_id → component` mappings retained for attribution.
    /// Default 4096.
    pub op_index_capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            events_per_component: 64,
            max_components: 512,
            health_history: 256,
            op_index_capacity: 4096,
        }
    }
}

struct ComponentRing {
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

struct FlightState {
    components: BTreeMap<String, ComponentRing>,
    op_owners: HashMap<u64, String>,
    op_order: VecDeque<u64>,
    health: VecDeque<(u64, Health)>,
    last_health: Option<Health>,
    last_at_nanos: u64,
}

/// The always-on bounded event history. See the [module docs](self).
pub struct FlightRecorder {
    config: FlightConfig,
    state: Mutex<FlightState>,
    dump_seq: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given bounds.
    pub fn new(config: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            config: FlightConfig {
                events_per_component: config.events_per_component.max(1),
                max_components: config.max_components.max(1),
                health_history: config.health_history.max(1),
                op_index_capacity: config.op_index_capacity.max(1),
            },
            state: Mutex::new(FlightState {
                components: BTreeMap::new(),
                op_owners: HashMap::new(),
                op_order: VecDeque::new(),
                health: VecDeque::new(),
                last_health: None,
                last_at_nanos: 0,
            }),
            dump_seq: AtomicU64::new(0),
        }
    }

    /// Record a health verdict. Only *transitions* are stored (the
    /// sampler calls this every tick; a steady state is one entry), so
    /// the history reads as "when did degradation begin".
    pub fn note_health(&self, at_nanos: u64, health: Health) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.last_at_nanos = state.last_at_nanos.max(at_nanos);
        if state.last_health == Some(health) {
            return;
        }
        state.last_health = Some(health);
        if state.health.len() == self.config.health_history {
            state.health.pop_front();
        }
        state.health.push_back((at_nanos, health));
    }

    /// Component names currently holding events, sorted.
    pub fn component_names(&self) -> Vec<String> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.components.keys().cloned().collect()
    }

    /// A copy of one component's retained events, oldest first.
    pub fn component_events(&self, name: &str) -> Vec<ObsEvent> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.components.get(name).map(|r| r.events.iter().cloned().collect()).unwrap_or_default()
    }

    /// The health-transition history, oldest first.
    pub fn health_history(&self) -> Vec<(u64, Health)> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.health.iter().copied().collect()
    }

    /// Total events currently retained across all rings.
    pub fn total_events(&self) -> usize {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.components.values().map(|r| r.events.len()).sum()
    }

    /// Every retained event stamped with `trace_id`, across all
    /// component rings, in causal order (`at_nanos`, then `seq`).
    ///
    /// The rings are bounded, so this is the *recent* tail of a trace,
    /// not a guaranteed-complete record — old spans of a long trace may
    /// already have been evicted. Rings are keyed by component, so one
    /// trace's events typically come back from several rings (the
    /// sender's loop, the radio, the receiver's phone ring).
    pub fn events_for_trace(&self, trace_id: u64) -> Vec<ObsEvent> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut events: Vec<ObsEvent> = state
            .components
            .values()
            .flat_map(|ring| ring.events.iter())
            .filter(|event| event.trace.is_some_and(|t| t.trace_id == trace_id))
            .cloned()
            .collect();
        events.sort_by_key(|event| (event.at_nanos, event.seq));
        events
    }

    /// Render one trace's retained events as a JSON document:
    /// `{"trace_id":…,"events":[…]}`, events in causal order. Empty
    /// `events` means the trace was never sampled or already evicted.
    pub fn dump_trace_json(&self, trace_id: u64) -> String {
        let events = self.events_for_trace(trace_id);
        let mut out = String::with_capacity(256);
        out.push_str("{\"trace_id\":");
        out.push_str(&trace_id.to_string());
        out.push_str(",\"events\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Render everything held as one JSON document:
    /// `{"at_ns":…,"reason":…,"health_history":[…],"report":…|null,
    /// "components":{"<name>":{"dropped":…,"events":[…]},…}}`.
    ///
    /// `at_nanos` of 0 falls back to the newest timestamp the recorder
    /// has seen (the panic hook has no clock to ask).
    pub fn dump_json(&self, reason: &str, at_nanos: u64, report: Option<&HealthReport>) -> String {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let at = if at_nanos == 0 { state.last_at_nanos } else { at_nanos };
        let mut out = String::with_capacity(4096);
        out.push_str("{\"at_ns\":");
        out.push_str(&at.to_string());
        out.push_str(",\"reason\":");
        write_str(&mut out, reason);
        out.push_str(",\"health_history\":[");
        for (i, (t, h)) in state.health.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_ns\":{},\"health\":\"{}\"}}", t, h.label()));
        }
        out.push_str("],\"report\":");
        match report {
            Some(report) => out.push_str(&report.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"components\":{");
        for (i, (name, ring)) in state.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push_str(&format!(":{{\"dropped\":{},\"events\":[", ring.dropped));
            for (j, event) in ring.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&event.to_json());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Write [`FlightRecorder::dump_json`] to `path`.
    pub fn dump_to_file(
        &self,
        path: &Path,
        reason: &str,
        at_nanos: u64,
        report: Option<&HealthReport>,
    ) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.dump_json(reason, at_nanos, report).as_bytes())?;
        file.flush()
    }

    /// Write a dump into `dir` (created if absent) as
    /// `flight-<reason>-<n>.json`, `n` increasing per recorder so
    /// repeated triggers never clobber earlier evidence. Returns the
    /// path written.
    pub fn dump_to_dir(
        &self,
        dir: &Path,
        reason: &str,
        at_nanos: u64,
        report: Option<&HealthReport>,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let n = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flight-{reason}-{n}.json"));
        self.dump_to_file(&path, reason, at_nanos, report)?;
        Ok(path)
    }

    fn component_key(&self, state: &mut FlightState, kind: &EventKind) -> String {
        match kind {
            EventKind::OpEnqueued { op_id, loop_name, .. } => {
                if state.op_owners.len() == self.config.op_index_capacity {
                    if let Some(evicted) = state.op_order.pop_front() {
                        state.op_owners.remove(&evicted);
                    }
                }
                if state.op_owners.insert(*op_id, loop_name.clone()).is_none() {
                    state.op_order.push_back(*op_id);
                }
                loop_name.clone()
            }
            EventKind::OpAttempt { op_id, .. } => {
                state.op_owners.get(op_id).cloned().unwrap_or_else(|| UNATTRIBUTED.to_string())
            }
            EventKind::OpCompleted { op_id, .. } => {
                // The terminal event still lands in the owner's ring;
                // the mapping itself is no longer needed (the op_order
                // entry becomes a cheap stale eviction later).
                state.op_owners.remove(op_id).unwrap_or_else(|| UNATTRIBUTED.to_string())
            }
            EventKind::TagDetected { target, .. }
            | EventKind::EmptyTagDetected { target, .. }
            | EventKind::Lease { target, .. }
            | EventKind::PhysTagEntered { target, .. }
            | EventKind::PhysTagLeft { target, .. }
            | EventKind::PhysExchange { target, .. }
            | EventKind::FaultInjected { target, .. } => format!("tag-{target}"),
            EventKind::BeamReceived { phone, .. }
            | EventKind::PeerReceived { phone, .. }
            | EventKind::SpanClosed { phone, .. }
            | EventKind::PhysBeam { phone, .. }
            | EventKind::PhysPeerEntered { phone, .. }
            | EventKind::PhysPeerLeft { phone, .. } => format!("phone-{phone}"),
        }
    }
}

impl ObsSink for FlightRecorder {
    fn record(&self, event: &ObsEvent) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.last_at_nanos = state.last_at_nanos.max(event.at_nanos);
        let mut key = self.component_key(&mut state, &event.kind);
        if !state.components.contains_key(&key)
            && state.components.len() >= self.config.max_components
        {
            key = OVERFLOW.to_string();
        }
        let ring = state.components.entry(key).or_insert_with(|| ComponentRing {
            events: VecDeque::with_capacity(self.config.events_per_component.min(64)),
            dropped: 0,
        });
        if ring.events.len() == self.config.events_per_component {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// Install a process-wide panic hook that dumps `flight` into `dir`
/// before delegating to the previous hook. Idempotent in effect but
/// each call chains another hook, so call once per process; the hook
/// holds only a weak reference, so a dropped recorder makes the hook a
/// no-op rather than pinning its buffers forever.
pub fn install_panic_hook(flight: &Arc<FlightRecorder>, dir: PathBuf) {
    let weak = Arc::downgrade(flight);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(flight) = weak.upgrade() {
            let _ = flight.dump_to_dir(&dir, "panic", 0, None);
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcome, OpKind, OpOutcome};

    fn enqueue(seq: u64, op_id: u64, loop_name: &str) -> ObsEvent {
        ObsEvent {
            seq,
            at_nanos: seq * 100,
            trace: None,
            kind: EventKind::OpEnqueued {
                op_id,
                loop_name: loop_name.into(),
                phone: 0,
                target: loop_name.trim_start_matches("tag-").into(),
                op: OpKind::Write,
                deadline_nanos: 1_000_000,
            },
        }
    }

    fn attempt(seq: u64, op_id: u64) -> ObsEvent {
        ObsEvent {
            seq,
            at_nanos: seq * 100,
            trace: None,
            kind: EventKind::OpAttempt {
                op_id,
                started_nanos: 0,
                duration_nanos: 50,
                outcome: AttemptOutcome::Transient,
            },
        }
    }

    #[test]
    fn op_events_attribute_to_their_loop() {
        let flight = FlightRecorder::default();
        flight.record(&enqueue(0, 7, "tag-A"));
        flight.record(&attempt(1, 7));
        flight.record(&ObsEvent {
            seq: 2,
            at_nanos: 200,
            trace: None,
            kind: EventKind::OpCompleted { op_id: 7, outcome: OpOutcome::Succeeded },
        });
        // Unknown op id after completion removed the mapping.
        flight.record(&attempt(3, 7));
        assert_eq!(flight.component_events("tag-A").len(), 3);
        assert_eq!(flight.component_events(UNATTRIBUTED).len(), 1);
    }

    #[test]
    fn phys_events_share_the_loops_ring_key() {
        let flight = FlightRecorder::default();
        flight.record(&enqueue(0, 1, "tag-A"));
        flight.record(&ObsEvent {
            seq: 1,
            at_nanos: 100,
            trace: None,
            kind: EventKind::PhysTagLeft { phone: 0, target: "A".into() },
        });
        flight.record(&ObsEvent {
            seq: 2,
            at_nanos: 200,
            trace: None,
            kind: EventKind::PhysBeam { phone: 3, bytes: 10, delivered: 1 },
        });
        assert_eq!(flight.component_events("tag-A").len(), 2);
        assert_eq!(flight.component_events("phone-3").len(), 1);
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let flight = FlightRecorder::new(FlightConfig {
            events_per_component: 2,
            ..FlightConfig::default()
        });
        for seq in 0..5 {
            flight.record(&enqueue(seq, seq, "tag-A"));
        }
        let events = flight.component_events("tag-A");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert!(flight.dump_json("test", 0, None).contains("\"dropped\":3"));
    }

    #[test]
    fn component_count_is_bounded_by_overflow_ring() {
        let flight =
            FlightRecorder::new(FlightConfig { max_components: 2, ..FlightConfig::default() });
        flight.record(&enqueue(0, 0, "tag-A"));
        flight.record(&enqueue(1, 1, "tag-B"));
        flight.record(&enqueue(2, 2, "tag-C"));
        // The third component gets no ring of its own; its events land
        // in the shared OVERFLOW ring (the bound is on *named* rings).
        let names = flight.component_names();
        assert!(!names.iter().any(|n| n == "tag-C"), "got {names:?}");
        assert_eq!(names, vec![OVERFLOW.to_string(), "tag-A".to_string(), "tag-B".to_string()]);
        assert_eq!(flight.component_events(OVERFLOW).len(), 1);
    }

    #[test]
    fn trace_lookup_spans_rings_in_causal_order() {
        use crate::trace::TraceContext;
        let flight = FlightRecorder::default();
        let root = TraceContext::root(5, 1);
        let mut sender = enqueue(0, 1, "tag-A");
        sender.trace = Some(root);
        let mut radio = ObsEvent {
            seq: 1,
            at_nanos: 150,
            trace: Some(root.child(2)),
            kind: EventKind::PhysBeam { phone: 0, bytes: 10, delivered: 1 },
        };
        let mut receiver = ObsEvent {
            seq: 2,
            at_nanos: 120,
            trace: Some(root.child(3)),
            kind: EventKind::BeamReceived { phone: 1, from: 0, bytes: 10 },
        };
        // A different trace and an untraced event must not leak in.
        flight.record(&sender);
        flight.record(&radio);
        flight.record(&receiver);
        radio.trace = Some(TraceContext::root(6, 9));
        radio.seq = 3;
        flight.record(&radio);
        receiver.trace = None;
        receiver.seq = 4;
        flight.record(&receiver);

        let events = flight.events_for_trace(5);
        assert_eq!(events.len(), 3);
        // Sorted by (at_nanos, seq), not ring or arrival order.
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 2, 1]);
        let json = flight.dump_trace_json(5);
        assert!(json.starts_with("{\"trace_id\":5,\"events\":["));
        assert_eq!(json.matches("\"trace_id\":5").count(), 4); // header + 3 events
        assert!(flight.dump_trace_json(99).ends_with("\"events\":[]}"));
    }

    #[test]
    fn health_history_stores_transitions_only() {
        let flight = FlightRecorder::default();
        flight.note_health(10, Health::Healthy);
        flight.note_health(20, Health::Healthy);
        flight.note_health(30, Health::Degraded);
        flight.note_health(40, Health::Degraded);
        flight.note_health(50, Health::Stalled);
        assert_eq!(
            flight.health_history(),
            vec![(10, Health::Healthy), (30, Health::Degraded), (50, Health::Stalled)]
        );
    }

    #[test]
    fn dump_names_components_and_reason() {
        let flight = FlightRecorder::default();
        flight.record(&enqueue(0, 9, "tag-stuck"));
        flight.record(&attempt(1, 9));
        flight.note_health(500, Health::Stalled);
        let json = flight.dump_json("stalled", 999, None);
        assert!(json.starts_with("{\"at_ns\":999,\"reason\":\"stalled\""));
        assert!(json.contains("\"tag-stuck\""));
        assert!(json.contains("\"type\":\"op_attempt\""));
        assert!(json.contains("{\"at_ns\":500,\"health\":\"stalled\"}"));
        assert!(json.contains("\"report\":null"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn dump_at_zero_falls_back_to_last_seen_timestamp() {
        let flight = FlightRecorder::default();
        flight.record(&enqueue(3, 1, "tag-A")); // at_nanos = 300
        let json = flight.dump_json("panic", 0, None);
        assert!(json.starts_with("{\"at_ns\":300,"), "got {json}");
    }

    #[test]
    fn dump_to_dir_writes_unique_files() {
        let dir = std::env::temp_dir().join(format!("morena-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flight = FlightRecorder::default();
        flight.record(&enqueue(0, 0, "tag-A"));
        let a = flight.dump_to_dir(&dir, "stalled", 100, None).unwrap();
        let b = flight.dump_to_dir(&dir, "stalled", 200, None).unwrap();
        assert_ne!(a, b);
        let text = std::fs::read_to_string(&a).unwrap();
        assert!(text.contains("\"tag-A\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
