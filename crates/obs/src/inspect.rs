//! Live introspection: snapshot providers, the [`Inspector`] registry,
//! and the stall [`Watchdog`].
//!
//! `correlate` answers *what happened* after a run; this module answers
//! *what is happening now*. The middleware's characteristic failure mode
//! is not a crash but a silent stall — an op stuck at the head of a far
//! reference's FIFO, a scheduler shard that stopped polling, a retry
//! storm against a stuck tag — and none of those show up in an event
//! stream that simply stops flowing. So every live component registers a
//! cheap [`SnapshotProvider`] with the recorder's [`Inspector`]:
//!
//! * event loops report queue depth, the head (in-flight) op, its
//!   attempt count, and its age against its deadline;
//! * scheduler shards report poll liveness, run-queue length, and the
//!   number of loops they own;
//! * discovery reports live vs closed references in its identity map;
//! * lease managers report held leases and their expiries;
//! * the simulated `World` reports per-phone radio ground truth (tags
//!   and peers in range) plus the installed fault plan.
//!
//! Registration is by [`Weak`] pointer: a component that drops simply
//! disappears from the next snapshot; no deregistration calls, no
//! lifecycle coupling. Taking a snapshot is cheap enough to run from a
//! ~10 Hz poller thread while a swarm drains.
//!
//! The [`Watchdog`] turns one [`InspectorSnapshot`] into a
//! [`HealthReport`]: a ranked list of [`Finding`]s, each with the rule
//! that fired and the evidence behind it, rolled up into an overall
//! [`Health`]. [`HealthReport::render_top`] renders the same data as a
//! "morena-top" text table for terminals.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use morena_obs::inspect::{
//!     ComponentSnapshot, Health, Inspector, LoopSnapshot, SnapshotProvider, Watchdog,
//! };
//!
//! struct FakeLoop;
//! impl SnapshotProvider for FakeLoop {
//!     fn snapshot(&self, _now_nanos: u64) -> ComponentSnapshot {
//!         ComponentSnapshot::Loop(LoopSnapshot {
//!             name: "tag-1".into(),
//!             kind: "tag",
//!             phone: 0,
//!             target: "tag-1".into(),
//!             queue_depth: 0,
//!             connected: true,
//!             head: None,
//!             mem_bytes: 256,
//!             policy: Default::default(),
//!         })
//!     }
//! }
//!
//! let inspector = Inspector::new();
//! let fake = Arc::new(FakeLoop);
//! inspector.register("tag-1", Arc::downgrade(&fake) as _);
//!
//! let snapshot = inspector.snapshot(1_000_000);
//! assert_eq!(snapshot.components.len(), 1);
//! let report = Watchdog::default().evaluate(&snapshot);
//! assert_eq!(report.health, Health::Healthy);
//!
//! drop(fake); // dropped components vanish from the next snapshot
//! assert!(inspector.snapshot(2_000_000).components.is_empty());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, Weak};

use crate::json::ObjectWriter;
use crate::metrics::MetricsSnapshot;
use crate::metrics::{fmt_bytes, fmt_nanos};
use crate::timeseries::SeriesStore;

/// A live component that can describe itself cheaply.
///
/// Implementations must be **non-blocking and cheap**: a provider may be
/// polled at ~10 Hz from a watchdog thread while the component is under
/// full load, so a snapshot should cost at most a few short mutex
/// acquisitions and atomic loads — never an I/O call, never a lock that
/// an in-flight operation holds across an exchange.
pub trait SnapshotProvider: Send + Sync {
    /// Describe the component's current state. `now_nanos` is the
    /// inspector's clock reading, on the same clock the component uses
    /// for its own timestamps.
    fn snapshot(&self, now_nanos: u64) -> ComponentSnapshot;
}

/// The head-of-queue (in-flight) operation of an event loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadOp {
    /// Correlation id of the op (same id as its obs events).
    pub op_id: u64,
    /// Stable label of the op kind (`read`, `write`, …).
    pub op: &'static str,
    /// Nanoseconds since the op was enqueued.
    pub age_nanos: u64,
    /// Total time budget: deadline minus enqueue time.
    pub budget_nanos: u64,
    /// Attempts made at this op so far.
    pub attempts: u64,
}

/// The effective distribution policy of an event loop, as surfaced in
/// inspector snapshots: enough to tell *which* retry curve, deadline
/// budget, and coalescing mode a live loop is actually running under
/// (the core's `Policy` object is the source of truth; this is its
/// observable projection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyInfo {
    /// Human label of the retry curve (e.g. `exp-jitter(10ms..320ms)`).
    pub backoff: String,
    /// Default deadline budget, in nanoseconds.
    pub timeout_nanos: u64,
    /// Whether queued same-region writes coalesce into one exchange.
    pub coalesce_writes: bool,
}

impl Default for PolicyInfo {
    fn default() -> PolicyInfo {
        PolicyInfo { backoff: "-".into(), timeout_nanos: 0, coalesce_writes: false }
    }
}

/// One event loop's live state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSnapshot {
    /// Loop name (`tag-3`, `beamer`, `peer-phone-1`).
    pub name: String,
    /// Loop family: `tag`, `beam`, or `peer` (`test` in harnesses).
    pub kind: &'static str,
    /// Phone the loop belongs to.
    pub phone: u64,
    /// Target identity the loop operates against.
    pub target: String,
    /// Ops queued, including the head.
    pub queue_depth: usize,
    /// Whether the executor currently believes its target is reachable.
    pub connected: bool,
    /// The in-flight op, if any.
    pub head: Option<HeadOp>,
    /// Best-effort deep bytes held by the loop (struct, queue,
    /// payloads). See [`MemFootprint`](crate::profile::MemFootprint).
    pub mem_bytes: u64,
    /// The distribution policy the loop is running under.
    pub policy: PolicyInfo,
}

/// One scheduler shard's live state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index within its scheduler.
    pub index: usize,
    /// Event loops assigned to this shard over its lifetime.
    pub loops_owned: u64,
    /// Loops currently in the shard's ready queue.
    pub run_queue: usize,
    /// Nanoseconds since the shard's worker last completed a poll pass
    /// (`None` before the first pass).
    pub since_poll_nanos: Option<u64>,
    /// Completion cores parked in the shard's freelist, ready for reuse
    /// by the next submits.
    pub pool_free: usize,
    /// Best-effort deep bytes held by the shard's own structures (the
    /// ready queue and core freelist) — not the loops it polls, which
    /// report themselves.
    pub mem_bytes: u64,
}

/// A discoverer's identity-map state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoverySnapshot {
    /// Phone the discoverer watches.
    pub phone: u64,
    /// MIME type the discoverer converts payloads as.
    pub mime: String,
    /// References in the map whose event loop is still running.
    pub live_refs: usize,
    /// Closed references awaiting their sweep.
    pub closed_refs: usize,
    /// Best-effort deep bytes held by the identity map itself (the
    /// references' loops report their own bytes).
    pub mem_bytes: u64,
}

/// A lease manager's held leases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseSnapshot {
    /// Device name the manager leases as.
    pub device: String,
    /// Held leases as `(tag uid, expiry nanos)`.
    pub held: Vec<(String, u64)>,
    /// Best-effort deep bytes held by the ledger.
    pub mem_bytes: u64,
}

/// One phone's radio ground truth, as the simulator sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhonePresence {
    /// The phone's id.
    pub phone: u64,
    /// The phone's name.
    pub name: String,
    /// Tag uids in radio range.
    pub tags_in_range: Vec<String>,
    /// Peer phones in P2P range.
    pub peers_in_range: Vec<u64>,
}

/// The simulated world's ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldSnapshot {
    /// Every phone's presence view.
    pub phones: Vec<PhonePresence>,
    /// Installed fault plan as `(class label, rate)` pairs, empty when
    /// no plan is installed.
    pub fault_rates: Vec<(&'static str, f64)>,
    /// Faults injected so far (0 without a plan).
    pub faults_injected: u64,
}

/// What one [`SnapshotProvider`] reported.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ComponentSnapshot {
    /// An event loop.
    Loop(LoopSnapshot),
    /// A scheduler shard.
    Shard(ShardSnapshot),
    /// A discoverer identity map.
    Discovery(DiscoverySnapshot),
    /// A lease manager.
    Leases(LeaseSnapshot),
    /// The simulated world.
    World(WorldSnapshot),
}

/// One registered component's contribution to a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEntry {
    /// The id the component registered under.
    pub id: String,
    /// Its reported state.
    pub state: ComponentSnapshot,
}

/// A point-in-time view of every live registered component.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectorSnapshot {
    /// When the snapshot was taken, in clock nanoseconds.
    pub at_nanos: u64,
    /// One entry per live component, in registration order.
    pub components: Vec<ComponentEntry>,
}

impl InspectorSnapshot {
    /// All event-loop snapshots, in registration order.
    pub fn loops(&self) -> impl Iterator<Item = &LoopSnapshot> {
        self.components.iter().filter_map(|c| match &c.state {
            ComponentSnapshot::Loop(l) => Some(l),
            _ => None,
        })
    }

    /// All shard snapshots, in registration order.
    pub fn shards(&self) -> impl Iterator<Item = &ShardSnapshot> {
        self.components.iter().filter_map(|c| match &c.state {
            ComponentSnapshot::Shard(s) => Some(s),
            _ => None,
        })
    }

    /// Sum of every component's reported `mem_bytes` — the live
    /// best-effort footprint of the middleware structures (the
    /// simulated world's ground truth carries no byte figure).
    pub fn total_mem_bytes(&self) -> u64 {
        self.components
            .iter()
            .map(|c| match &c.state {
                ComponentSnapshot::Loop(l) => l.mem_bytes,
                ComponentSnapshot::Shard(s) => s.mem_bytes,
                ComponentSnapshot::Discovery(d) => d.mem_bytes,
                ComponentSnapshot::Leases(l) => l.mem_bytes,
                ComponentSnapshot::World(_) => 0,
            })
            .sum()
    }
}

/// Registry of live components, held by the recorder.
///
/// Components register a [`Weak`] provider under a human-readable id;
/// dead weaks are pruned on every snapshot, so dropping a component is
/// all the deregistration there is.
#[derive(Default)]
pub struct Inspector {
    providers: Mutex<Vec<(String, Weak<dyn SnapshotProvider>)>>,
}

impl fmt::Debug for Inspector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = self.providers.lock().map(|p| p.len()).unwrap_or(0);
        f.debug_struct("Inspector").field("registered", &count).finish()
    }
}

impl Inspector {
    /// Creates an empty registry.
    pub fn new() -> Inspector {
        Inspector::default()
    }

    /// Registers a component under `id`. The registry keeps only a weak
    /// pointer; the component vanishes from snapshots when dropped.
    pub fn register(&self, id: impl Into<String>, provider: Weak<dyn SnapshotProvider>) {
        let mut providers = self.providers.lock().unwrap_or_else(|e| e.into_inner());
        providers.push((id.into(), provider));
    }

    /// Number of currently live registered components.
    pub fn registered(&self) -> usize {
        let mut providers = self.providers.lock().unwrap_or_else(|e| e.into_inner());
        providers.retain(|(_, weak)| weak.strong_count() > 0);
        providers.len()
    }

    /// Snapshots every live component, pruning dropped ones.
    ///
    /// Providers are polled outside the registry lock so a slow provider
    /// cannot block concurrent registrations.
    pub fn snapshot(&self, now_nanos: u64) -> InspectorSnapshot {
        let live: Vec<(String, std::sync::Arc<dyn SnapshotProvider>)> = {
            let mut providers = self.providers.lock().unwrap_or_else(|e| e.into_inner());
            providers.retain(|(_, weak)| weak.strong_count() > 0);
            providers
                .iter()
                .filter_map(|(id, weak)| weak.upgrade().map(|p| (id.clone(), p)))
                .collect()
        };
        let components = live
            .into_iter()
            .map(|(id, provider)| ComponentEntry { id, state: provider.snapshot(now_nanos) })
            .collect();
        InspectorSnapshot { at_nanos: now_nanos, components }
    }
}

/// Overall (or per-finding) health classification, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// No rule fired.
    Healthy,
    /// Something needs attention but progress is still plausible.
    Degraded,
    /// A liveness rule fired: something has stopped making progress.
    Stalled,
}

impl Health {
    /// Stable lower-case label (`healthy` / `degraded` / `stalled`).
    pub fn label(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Stalled => "stalled",
        }
    }
}

/// One watchdog rule firing, with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity this finding contributes to the report.
    pub health: Health,
    /// Stable rule name (`head_op_stall`, `shard_starvation`,
    /// `retry_storm`, `sink_drops`).
    pub rule: &'static str,
    /// Id of the component the rule fired on.
    pub component: String,
    /// Human-readable evidence.
    pub evidence: String,
}

/// Thresholds for the watchdog's stall rules.
///
/// The defaults are calibrated to the event loop's own timeout
/// machinery: a healthy loop times an op out *at* its deadline, so an op
/// older than `stall_factor`× its budget means the timeout path itself
/// is broken — that is [`Health::Stalled`], not merely slow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Head-op age beyond this multiple of its budget ⇒ `Stalled`.
    pub stall_factor: f64,
    /// Head-op age beyond this fraction of its budget ⇒ `Degraded`.
    pub degrade_fraction: f64,
    /// Head-op attempts at or beyond this ⇒ `Degraded` (retry storm).
    pub retry_storm_attempts: u64,
    /// A shard with runnable work but no poll pass within this window ⇒
    /// `Stalled`.
    pub shard_stall_nanos: u64,
    /// `obs.sink.dropped` beyond this ⇒ `Degraded`.
    pub sink_drop_threshold: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            stall_factor: 2.0,
            degrade_fraction: 0.75,
            retry_storm_attempts: 8,
            shard_stall_nanos: 1_000_000_000, // 1 s
            sink_drop_threshold: 0,
        }
    }
}

/// One observed change of overall health, with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// When the transition was observed (the snapshot's timestamp).
    pub at_nanos: u64,
    /// Health before.
    pub from: Health,
    /// Health after.
    pub to: Health,
}

/// Health verdicts retained per watchdog (transitions only, so a
/// steady state costs one entry).
const HEALTH_HISTORY_CAP: usize = 256;

#[derive(Debug, Clone, Default)]
struct WatchdogState {
    last_health: Option<Health>,
    degraded_since_nanos: Option<u64>,
    last_transition: Option<HealthTransition>,
    history: VecDeque<(u64, Health)>,
}

/// Evaluates snapshots against the stall rules.
///
/// The watchdog is stateful across evaluations: it remembers the last
/// verdict, keeps a bounded history of health *transitions*, and tracks
/// when the current spell of degradation began
/// ([`HealthReport::degraded_since_nanos`]) — an instantaneous verdict
/// says a loop is stuck, the transition timestamp says since when.
#[derive(Debug, Default)]
pub struct Watchdog {
    config: WatchdogConfig,
    state: Mutex<WatchdogState>,
}

impl Clone for Watchdog {
    /// Clones thresholds *and* the accumulated health history.
    fn clone(&self) -> Watchdog {
        Watchdog {
            config: self.config,
            state: Mutex::new(self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()),
        }
    }
}

impl Watchdog {
    /// A watchdog with explicit thresholds.
    pub fn with_config(config: WatchdogConfig) -> Watchdog {
        Watchdog { config, state: Mutex::new(WatchdogState::default()) }
    }

    /// The active thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Health transitions observed so far, oldest first (bounded; the
    /// first entry is the initial verdict).
    pub fn health_history(&self) -> Vec<(u64, Health)> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).history.iter().copied().collect()
    }

    /// The most recent change of overall health, if any happened yet.
    pub fn last_transition(&self) -> Option<HealthTransition> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).last_transition
    }

    /// Evaluates one snapshot (no metrics — the sink-drop rule is
    /// skipped).
    pub fn evaluate(&self, snapshot: &InspectorSnapshot) -> HealthReport {
        self.evaluate_inner(snapshot, None)
    }

    /// Evaluates one snapshot plus a metrics snapshot, enabling the
    /// sink-drop rule against the `obs.sink.dropped` counter.
    pub fn evaluate_with_metrics(
        &self,
        snapshot: &InspectorSnapshot,
        metrics: &MetricsSnapshot,
    ) -> HealthReport {
        self.evaluate_inner(snapshot, Some(metrics))
    }

    fn evaluate_inner(
        &self,
        snapshot: &InspectorSnapshot,
        metrics: Option<&MetricsSnapshot>,
    ) -> HealthReport {
        let cfg = &self.config;
        let mut findings = Vec::new();

        for entry in &snapshot.components {
            match &entry.state {
                ComponentSnapshot::Loop(l) => {
                    if let Some(head) = &l.head {
                        // Rule 1: head-op stall. A healthy loop times the
                        // head op out at its deadline; outliving the
                        // budget by `stall_factor` means the loop itself
                        // stopped turning.
                        let budget = head.budget_nanos.max(1) as f64;
                        let age = head.age_nanos as f64;
                        if age > cfg.stall_factor * budget {
                            findings.push(Finding {
                                health: Health::Stalled,
                                rule: "head_op_stall",
                                component: entry.id.clone(),
                                evidence: format!(
                                    "op #{} ({}) age {} exceeds {:.1}x its {} budget \
                                     ({} attempts, queue {})",
                                    head.op_id,
                                    head.op,
                                    fmt_nanos(head.age_nanos),
                                    cfg.stall_factor,
                                    fmt_nanos(head.budget_nanos),
                                    head.attempts,
                                    l.queue_depth,
                                ),
                            });
                        } else if age > cfg.degrade_fraction * budget {
                            findings.push(Finding {
                                health: Health::Degraded,
                                rule: "head_op_stall",
                                component: entry.id.clone(),
                                evidence: format!(
                                    "op #{} ({}) has burned {} of its {} budget \
                                     ({} attempts, connected: {})",
                                    head.op_id,
                                    head.op,
                                    fmt_nanos(head.age_nanos),
                                    fmt_nanos(head.budget_nanos),
                                    head.attempts,
                                    l.connected,
                                ),
                            });
                        }
                        // Rule 3: retry storm. Many attempts with the
                        // target nominally reachable means the exchanges
                        // themselves keep failing (e.g. a stuck tag).
                        if head.attempts >= cfg.retry_storm_attempts {
                            findings.push(Finding {
                                health: Health::Degraded,
                                rule: "retry_storm",
                                component: entry.id.clone(),
                                evidence: format!(
                                    "op #{} ({}) on {} attempts (threshold {}), \
                                     target connected: {}",
                                    head.op_id,
                                    head.op,
                                    head.attempts,
                                    cfg.retry_storm_attempts,
                                    l.connected,
                                ),
                            });
                        }
                    }
                }
                ComponentSnapshot::Shard(s) => {
                    // Rule 2: shard poll starvation. The worker only
                    // parks with an empty ready queue, so runnable work
                    // plus a stale poll stamp means the worker is gone
                    // or wedged.
                    if let (1.., Some(since)) = (s.run_queue, s.since_poll_nanos) {
                        if since > cfg.shard_stall_nanos {
                            findings.push(Finding {
                                health: Health::Stalled,
                                rule: "shard_starvation",
                                component: entry.id.clone(),
                                evidence: format!(
                                    "{} runnable loop(s) but no poll pass for {} \
                                     (threshold {})",
                                    s.run_queue,
                                    fmt_nanos(since),
                                    fmt_nanos(cfg.shard_stall_nanos),
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }

        // Rule 4: sink drops. Overflowing the ring means the analysis
        // surface itself is losing data.
        if let Some(metrics) = metrics {
            let dropped = metrics.counter("obs.sink.dropped");
            if dropped > cfg.sink_drop_threshold {
                findings.push(Finding {
                    health: Health::Degraded,
                    rule: "sink_drops",
                    component: "obs.sink".to_string(),
                    evidence: format!(
                        "{dropped} event(s) dropped by a full sink (threshold {})",
                        cfg.sink_drop_threshold
                    ),
                });
            }
        }

        findings.sort_by_key(|f| std::cmp::Reverse(f.health));
        let health = findings.iter().map(|f| f.health).max().unwrap_or(Health::Healthy);
        let degraded_since_nanos = self.note_verdict(snapshot.at_nanos, health);
        HealthReport {
            at_nanos: snapshot.at_nanos,
            health,
            findings,
            total_mem_bytes: snapshot.total_mem_bytes(),
            degraded_since_nanos,
        }
    }

    /// Fold one verdict into the transition history; returns when the
    /// current degradation spell began (`None` while healthy). Entering
    /// `Degraded`/`Stalled` from `Healthy` starts the spell; moving
    /// between the two non-healthy states keeps the original start, so
    /// the report answers "how long has this been wrong", not "how long
    /// at this exact severity".
    fn note_verdict(&self, at_nanos: u64, health: Health) -> Option<u64> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.last_health != Some(health) {
            if let Some(from) = state.last_health {
                state.last_transition = Some(HealthTransition { at_nanos, from, to: health });
            }
            if state.history.len() == HEALTH_HISTORY_CAP {
                state.history.pop_front();
            }
            state.history.push_back((at_nanos, health));
            match health {
                Health::Healthy => state.degraded_since_nanos = None,
                Health::Degraded | Health::Stalled => {
                    if state.degraded_since_nanos.is_none() {
                        state.degraded_since_nanos = Some(at_nanos);
                    }
                }
            }
            state.last_health = Some(health);
        }
        state.degraded_since_nanos
    }
}

/// The watchdog's verdict on one snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// When the underlying snapshot was taken.
    pub at_nanos: u64,
    /// Worst severity across findings (`Healthy` when none fired).
    pub health: Health,
    /// Every rule firing, most severe first.
    pub findings: Vec<Finding>,
    /// Total best-effort middleware footprint at snapshot time (see
    /// [`InspectorSnapshot::total_mem_bytes`]).
    pub total_mem_bytes: u64,
    /// When the current spell of non-`Healthy` verdicts began, from the
    /// evaluating watchdog's transition history. `None` while healthy
    /// (or when the report was built by a fresh watchdog that has only
    /// ever seen this snapshot — then it equals `at_nanos`).
    pub degraded_since_nanos: Option<u64>,
}

impl HealthReport {
    /// Render as a flat JSON object (for artifacts and dashboards).
    /// `degraded_since_ns` is present only while non-healthy.
    pub fn to_json(&self) -> String {
        let mut findings = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                findings.push(',');
            }
            let mut w = ObjectWriter::new();
            w.str("health", f.health.label())
                .str("rule", f.rule)
                .str("component", &f.component)
                .str("evidence", &f.evidence);
            findings.push_str(&w.finish());
        }
        findings.push(']');
        let mut w = ObjectWriter::new();
        w.u64("at_ns", self.at_nanos)
            .str("health", self.health.label())
            .u64("finding_count", self.findings.len() as u64)
            .u64("mem_bytes", self.total_mem_bytes);
        if let Some(since) = self.degraded_since_nanos {
            w.u64("degraded_since_ns", since);
        }
        w.raw("findings", &findings);
        w.finish()
    }
}

fn pad(out: &mut String, text: &str, width: usize) {
    out.push_str(text);
    for _ in text.chars().count()..width {
        out.push(' ');
    }
    out.push_str("  ");
}

/// Width of the sparkline columns rendered by
/// [`render_top_with_series`].
const SPARK_WIDTH: usize = 12;

/// Render a snapshot plus its health report as a "morena-top" text
/// table: one header line, one line per event loop (the busiest
/// components), shard/world summaries, and the findings.
pub fn render_top(snapshot: &InspectorSnapshot, report: &HealthReport) -> String {
    render_top_inner(snapshot, report, None)
}

/// [`render_top`] with history from a sampler's
/// [`SeriesStore`](crate::timeseries::SeriesStore): the loop table
/// gains a `TREND` sparkline column (each loop's recent queue depth),
/// and the non-loop series are listed with sparklines and latest
/// values below the component summaries.
pub fn render_top_with_series(
    snapshot: &InspectorSnapshot,
    report: &HealthReport,
    series: &SeriesStore,
) -> String {
    render_top_inner(snapshot, report, Some(series))
}

fn render_top_inner(
    snapshot: &InspectorSnapshot,
    report: &HealthReport,
    series: Option<&SeriesStore>,
) -> String {
    let mut out = String::new();
    let since = match (report.health, report.degraded_since_nanos) {
        (Health::Healthy, _) | (_, None) => String::new(),
        (_, Some(since)) => {
            format!(" (degraded for {})", fmt_nanos(snapshot.at_nanos.saturating_sub(since)))
        }
    };
    out.push_str(&format!(
        "morena-top @ {}  health: {}{}  mem: {}\n",
        fmt_nanos(snapshot.at_nanos),
        report.health.label().to_uppercase(),
        since,
        fmt_bytes(snapshot.total_mem_bytes()),
    ));

    let loops: Vec<&LoopSnapshot> = snapshot.loops().collect();
    if !loops.is_empty() {
        let mut header = vec![
            "LOOP",
            "KIND",
            "CONN",
            "QUEUE",
            "MEM",
            "HEAD OP",
            "AGE/BUDGET",
            "TRIES",
            "POLICY",
        ];
        if series.is_some() {
            header.push("TREND");
        }
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(loops.len());
        for l in &loops {
            let (head_op, age, tries) = match &l.head {
                Some(h) => (
                    format!("#{} {}", h.op_id, h.op),
                    format!("{}/{}", fmt_nanos(h.age_nanos), fmt_nanos(h.budget_nanos)),
                    h.attempts.to_string(),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            let mut row = vec![
                l.name.clone(),
                l.kind.to_string(),
                if l.connected { "yes".into() } else { "no".into() },
                l.queue_depth.to_string(),
                fmt_bytes(l.mem_bytes),
                head_op,
                age,
                tries,
                if l.policy.coalesce_writes {
                    format!("{} +coalesce", l.policy.backoff)
                } else {
                    l.policy.backoff.clone()
                },
            ];
            if let Some(series) = series {
                row.push(series.sparkline(&format!("loop.{}.queue", l.name), SPARK_WIDTH));
            }
            rows.push(row);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        for (i, h) in header.iter().enumerate() {
            pad(&mut out, h, widths[i]);
        }
        out.push('\n');
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                pad(&mut out, cell, widths[i]);
            }
            out.push('\n');
        }
    }

    for entry in &snapshot.components {
        match &entry.state {
            ComponentSnapshot::Shard(s) => {
                let since = match s.since_poll_nanos {
                    Some(n) => fmt_nanos(n),
                    None => "never".into(),
                };
                out.push_str(&format!(
                    "shard {}: owned {}, runnable {}, last poll {} ago, pool {}, mem {}\n",
                    s.index,
                    s.loops_owned,
                    s.run_queue,
                    since,
                    s.pool_free,
                    fmt_bytes(s.mem_bytes)
                ));
            }
            ComponentSnapshot::Discovery(d) => {
                out.push_str(&format!(
                    "discovery phone-{} ({}): {} live, {} closed, mem {}\n",
                    d.phone,
                    d.mime,
                    d.live_refs,
                    d.closed_refs,
                    fmt_bytes(d.mem_bytes)
                ));
            }
            ComponentSnapshot::Leases(l) => {
                out.push_str(&format!("leases {}: {} held\n", l.device, l.held.len()));
            }
            ComponentSnapshot::World(w) => {
                let faults = if w.fault_rates.is_empty() {
                    "no fault plan".to_string()
                } else {
                    let rates: Vec<String> = w
                        .fault_rates
                        .iter()
                        .map(|(label, rate)| format!("{label}={rate:.2}"))
                        .collect();
                    format!("faults [{}] injected {}", rates.join(" "), w.faults_injected)
                };
                let presence: Vec<String> = w
                    .phones
                    .iter()
                    .map(|p| {
                        format!(
                            "{}: {} tag(s), {} peer(s)",
                            p.name,
                            p.tags_in_range.len(),
                            p.peers_in_range.len()
                        )
                    })
                    .collect();
                out.push_str(&format!("world: {} | {}\n", presence.join("; "), faults));
            }
            ComponentSnapshot::Loop(_) => {}
        }
    }

    if let Some(series) = series {
        for name in series.names() {
            // Per-loop queue history already rendered as the TREND
            // column; everything else (counter rates, gauges,
            // aggregates) gets a line here.
            if name.starts_with("loop.") {
                continue;
            }
            let spark = series.sparkline(&name, SPARK_WIDTH * 2);
            let latest = series.latest(&name).unwrap_or(0.0);
            out.push_str(&format!("series {name:<32} {spark:<24} latest {latest:.1}\n"));
        }
    }

    if report.findings.is_empty() {
        out.push_str("no findings\n");
    } else {
        for f in &report.findings {
            out.push_str(&format!(
                "[{}] {} on {}: {}\n",
                f.health.label().to_uppercase(),
                f.rule,
                f.component,
                f.evidence
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::metrics::MetricsRegistry;

    struct FixedLoop(LoopSnapshot);
    impl SnapshotProvider for FixedLoop {
        fn snapshot(&self, _now: u64) -> ComponentSnapshot {
            ComponentSnapshot::Loop(self.0.clone())
        }
    }

    fn idle_loop(name: &str) -> LoopSnapshot {
        LoopSnapshot {
            name: name.into(),
            kind: "tag",
            phone: 0,
            target: name.into(),
            queue_depth: 0,
            connected: true,
            head: None,
            mem_bytes: 512,
            policy: PolicyInfo {
                backoff: "exp-jitter(10ms..320ms)".into(),
                timeout_nanos: 10_000_000_000,
                coalesce_writes: false,
            },
        }
    }

    fn busy_loop(name: &str, age: u64, budget: u64, attempts: u64) -> LoopSnapshot {
        LoopSnapshot {
            head: Some(HeadOp {
                op_id: 7,
                op: "write",
                age_nanos: age,
                budget_nanos: budget,
                attempts,
            }),
            queue_depth: 3,
            ..idle_loop(name)
        }
    }

    #[test]
    fn dead_providers_are_pruned() {
        let inspector = Inspector::new();
        let live = Arc::new(FixedLoop(idle_loop("tag-1")));
        let doomed = Arc::new(FixedLoop(idle_loop("tag-2")));
        inspector.register("tag-1", Arc::downgrade(&live) as _);
        inspector.register("tag-2", Arc::downgrade(&doomed) as _);
        assert_eq!(inspector.registered(), 2);
        drop(doomed);
        let snapshot = inspector.snapshot(5);
        assert_eq!(snapshot.at_nanos, 5);
        assert_eq!(snapshot.components.len(), 1);
        assert_eq!(snapshot.components[0].id, "tag-1");
        assert_eq!(inspector.registered(), 1);
    }

    #[test]
    fn healthy_snapshot_reports_healthy() {
        let inspector = Inspector::new();
        let l = Arc::new(FixedLoop(idle_loop("tag-1")));
        inspector.register("tag-1", Arc::downgrade(&l) as _);
        let report = Watchdog::default().evaluate(&inspector.snapshot(0));
        assert_eq!(report.health, Health::Healthy);
        assert!(report.findings.is_empty());
        assert!(render_top(&inspector.snapshot(0), &report).contains("no findings"));
    }

    #[test]
    fn head_op_past_budget_degrades_then_stalls() {
        let watchdog = Watchdog::default();
        // 80% of budget burned: degraded.
        let snap = InspectorSnapshot {
            at_nanos: 0,
            components: vec![ComponentEntry {
                id: "tag-1".into(),
                state: ComponentSnapshot::Loop(busy_loop("tag-1", 800, 1_000, 2)),
            }],
        };
        let report = watchdog.evaluate(&snap);
        assert_eq!(report.health, Health::Degraded);
        assert_eq!(report.findings[0].rule, "head_op_stall");
        assert_eq!(report.findings[0].component, "tag-1");

        // 3x budget: the timeout machinery itself is broken — stalled.
        let snap = InspectorSnapshot {
            at_nanos: 0,
            components: vec![ComponentEntry {
                id: "tag-1".into(),
                state: ComponentSnapshot::Loop(busy_loop("tag-1", 3_000, 1_000, 2)),
            }],
        };
        let report = watchdog.evaluate(&snap);
        assert_eq!(report.health, Health::Stalled);
        assert!(report.findings[0].evidence.contains("op #7"));
    }

    #[test]
    fn retry_storm_fires_on_attempt_count() {
        let snap = InspectorSnapshot {
            at_nanos: 0,
            components: vec![ComponentEntry {
                id: "tag-9".into(),
                state: ComponentSnapshot::Loop(busy_loop("tag-9", 100, 1_000_000, 9)),
            }],
        };
        let report = Watchdog::default().evaluate(&snap);
        assert_eq!(report.health, Health::Degraded);
        assert_eq!(report.findings[0].rule, "retry_storm");
    }

    #[test]
    fn shard_with_runnable_work_and_stale_poll_is_stalled() {
        let fine = ShardSnapshot {
            index: 0,
            loops_owned: 4,
            run_queue: 2,
            since_poll_nanos: Some(10_000),
            pool_free: 0,
            mem_bytes: 0,
        };
        let wedged = ShardSnapshot {
            index: 1,
            loops_owned: 4,
            run_queue: 1,
            since_poll_nanos: Some(5_000_000_000),
            pool_free: 0,
            mem_bytes: 0,
        };
        let idle = ShardSnapshot {
            index: 2,
            loops_owned: 0,
            run_queue: 0,
            since_poll_nanos: None,
            pool_free: 0,
            mem_bytes: 0,
        };
        let snap = InspectorSnapshot {
            at_nanos: 0,
            components: [fine, wedged, idle]
                .into_iter()
                .map(|s| ComponentEntry {
                    id: format!("shard-{}", s.index),
                    state: ComponentSnapshot::Shard(s),
                })
                .collect(),
        };
        let report = Watchdog::default().evaluate(&snap);
        assert_eq!(report.health, Health::Stalled);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].component, "shard-1");
        assert_eq!(report.findings[0].rule, "shard_starvation");
    }

    #[test]
    fn sink_drop_rule_reads_the_metrics_counter() {
        let registry = MetricsRegistry::new();
        registry.counter("obs.sink.dropped").add(12);
        let snap = InspectorSnapshot { at_nanos: 0, components: Vec::new() };
        let watchdog = Watchdog::default();
        let report = watchdog.evaluate_with_metrics(&snap, &registry.snapshot());
        assert_eq!(report.health, Health::Degraded);
        assert_eq!(report.findings[0].rule, "sink_drops");
        // Without metrics the rule is skipped.
        assert_eq!(watchdog.evaluate(&snap).health, Health::Healthy);
    }

    #[test]
    fn findings_sort_most_severe_first_and_roll_up() {
        let snap = InspectorSnapshot {
            at_nanos: 0,
            components: vec![
                ComponentEntry {
                    id: "tag-storm".into(),
                    state: ComponentSnapshot::Loop(busy_loop("tag-storm", 100, 1_000_000, 20)),
                },
                ComponentEntry {
                    id: "tag-dead".into(),
                    state: ComponentSnapshot::Loop(busy_loop("tag-dead", 9_000, 1_000, 1)),
                },
            ],
        };
        let report = Watchdog::default().evaluate(&snap);
        assert_eq!(report.health, Health::Stalled);
        assert_eq!(report.findings[0].health, Health::Stalled);
        assert_eq!(report.findings[0].component, "tag-dead");
        assert!(report.findings.iter().any(|f| f.component == "tag-storm"));
    }

    #[test]
    fn report_json_is_flat_and_labelled() {
        let snap = InspectorSnapshot {
            at_nanos: 42,
            components: vec![ComponentEntry {
                id: "tag-1".into(),
                state: ComponentSnapshot::Loop(busy_loop("tag-1", 9_000, 1_000, 1)),
            }],
        };
        let json = Watchdog::default().evaluate(&snap).to_json();
        assert!(json.starts_with("{\"at_ns\":42,\"health\":\"stalled\""));
        assert!(json.contains("\"rule\":\"head_op_stall\""));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn total_mem_rolls_up_across_component_kinds() {
        let snap = InspectorSnapshot {
            at_nanos: 0,
            components: vec![
                ComponentEntry {
                    id: "tag-1".into(),
                    state: ComponentSnapshot::Loop(idle_loop("tag-1")), // 512
                },
                ComponentEntry {
                    id: "shard-0".into(),
                    state: ComponentSnapshot::Shard(ShardSnapshot {
                        index: 0,
                        loops_owned: 1,
                        run_queue: 0,
                        since_poll_nanos: None,
                        pool_free: 0,
                        mem_bytes: 128,
                    }),
                },
                ComponentEntry {
                    id: "disco".into(),
                    state: ComponentSnapshot::Discovery(DiscoverySnapshot {
                        phone: 0,
                        mime: "text/plain".into(),
                        live_refs: 1,
                        closed_refs: 0,
                        mem_bytes: 64,
                    }),
                },
            ],
        };
        assert_eq!(snap.total_mem_bytes(), 512 + 128 + 64);
        let report = Watchdog::default().evaluate(&snap);
        assert_eq!(report.total_mem_bytes, 704);
        assert!(report.to_json().contains("\"mem_bytes\":704"));
        assert!(render_top(&snap, &report).contains("mem:"));
    }

    fn snap_at(at_nanos: u64, l: LoopSnapshot) -> InspectorSnapshot {
        InspectorSnapshot {
            at_nanos,
            components: vec![ComponentEntry {
                id: l.name.clone(),
                state: ComponentSnapshot::Loop(l),
            }],
        }
    }

    #[test]
    fn watchdog_tracks_degradation_onset_across_evaluations() {
        let watchdog = Watchdog::default();

        let report = watchdog.evaluate(&snap_at(10, idle_loop("tag-1")));
        assert_eq!(report.degraded_since_nanos, None);

        // Healthy → Degraded at t=20: the spell starts here...
        let report = watchdog.evaluate(&snap_at(20, busy_loop("tag-1", 800, 1_000, 2)));
        assert_eq!(report.health, Health::Degraded);
        assert_eq!(report.degraded_since_nanos, Some(20));

        // ...and escalating to Stalled keeps the original onset.
        let report = watchdog.evaluate(&snap_at(30, busy_loop("tag-1", 9_000, 1_000, 2)));
        assert_eq!(report.health, Health::Stalled);
        assert_eq!(report.degraded_since_nanos, Some(20));
        assert!(report.to_json().contains("\"degraded_since_ns\":20"));
        let transition = watchdog.last_transition().unwrap();
        assert_eq!(
            (transition.at_nanos, transition.from, transition.to),
            (30, Health::Degraded, Health::Stalled)
        );

        // Recovery clears the spell; the JSON drops the field.
        let report = watchdog.evaluate(&snap_at(40, idle_loop("tag-1")));
        assert_eq!(report.degraded_since_nanos, None);
        assert!(!report.to_json().contains("degraded_since_ns"));

        assert_eq!(
            watchdog.health_history(),
            vec![
                (10, Health::Healthy),
                (20, Health::Degraded),
                (30, Health::Stalled),
                (40, Health::Healthy)
            ]
        );
    }

    #[test]
    fn render_top_shows_degradation_duration() {
        let watchdog = Watchdog::default();
        watchdog.evaluate(&snap_at(1_000_000_000, busy_loop("tag-1", 800, 1_000, 2)));
        let snap = snap_at(3_000_000_000, busy_loop("tag-1", 900, 1_000, 2));
        let report = watchdog.evaluate(&snap);
        let top = render_top(&snap, &report);
        assert!(top.contains("(degraded for 2.00s)"), "got: {top}");
    }

    #[test]
    fn render_top_with_series_adds_trend_column_and_series_lines() {
        let store = SeriesStore::new(16);
        for t in 0..8u64 {
            store.record("loop.tag-1.queue", t * 1_000, t as f64);
            store.record("ops.test", t * 1_000, 5.0 + t as f64);
        }
        let snap = snap_at(8_000, idle_loop("tag-1"));
        let report = Watchdog::default().evaluate(&snap);
        let top = render_top_with_series(&snap, &report, &store);
        assert!(top.contains("TREND"), "got: {top}");
        assert!(top.contains('█'), "queue sparkline missing: {top}");
        assert!(top.contains("series ops.test"), "got: {top}");
        assert!(top.contains("latest 12.0"), "got: {top}");
        // Per-loop series render only in the TREND column, not as lines.
        assert!(!top.contains("series loop.tag-1.queue"), "got: {top}");
        // The plain renderer is unchanged by history existing.
        assert!(!render_top(&snap, &report).contains("TREND"));
    }

    #[test]
    fn render_top_tabulates_loops() {
        let snap = InspectorSnapshot {
            at_nanos: 1_000_000,
            components: vec![
                ComponentEntry {
                    id: "tag-1".into(),
                    state: ComponentSnapshot::Loop(busy_loop("tag-1", 500, 1_000_000, 3)),
                },
                ComponentEntry {
                    id: "world".into(),
                    state: ComponentSnapshot::World(WorldSnapshot {
                        phones: vec![PhonePresence {
                            phone: 0,
                            name: "phone-0".into(),
                            tags_in_range: vec!["tag-1".into()],
                            peers_in_range: Vec::new(),
                        }],
                        fault_rates: vec![("stuck_tag", 0.25)],
                        faults_injected: 4,
                    }),
                },
            ],
        };
        let report = Watchdog::default().evaluate(&snap);
        let top = render_top(&snap, &report);
        assert!(top.contains("HEAD OP"));
        assert!(top.contains("tag-1"));
        assert!(top.contains("stuck_tag=0.25"));
        assert!(top.contains("health: HEALTHY"));
    }
}
