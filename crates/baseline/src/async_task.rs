//! The `AsyncTask` analog: Android's pre-coroutine recipe for "do the
//! blocking work off the main thread, post the result back".
//!
//! This is the concurrency-management machinery the Android NFC
//! documentation *"strongly recommends"* for tag I/O, and whose manual
//! use MORENA eliminates. The handcrafted evaluation application pays
//! for every call site of this module in its concurrency-management
//! line count.

use morena_android_sim::looper::Handler;

/// Runs `background` on a fresh worker thread, then posts
/// `on_post_execute(result)` to `handler` (the main thread) — the shape
/// of `AsyncTask.doInBackground` / `onPostExecute`.
///
/// # Examples
///
/// ```
/// use morena_android_sim::looper::MainThread;
/// use morena_baseline::async_task::execute;
///
/// let main = MainThread::spawn();
/// let (tx, rx) = crossbeam::channel::unbounded();
/// execute(main.handler(), || 6 * 7, move |answer| {
///     tx.send(answer).unwrap();
/// });
/// assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(), 42);
/// ```
pub fn execute<T, B, P>(handler: Handler, background: B, on_post_execute: P)
where
    T: Send + 'static,
    B: FnOnce() -> T + Send + 'static,
    P: FnOnce(T) + Send + 'static,
{
    std::thread::Builder::new()
        .name("async-task".into())
        .spawn(move || {
            let result = background();
            handler.post(move || on_post_execute(result));
        })
        .expect("spawn async task");
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_android_sim::looper::MainThread;
    use std::time::Duration;

    #[test]
    fn background_runs_off_main_and_posts_back_on_main() {
        let main = MainThread::spawn();
        let main_id = main.thread_id();
        let (tx, rx) = crossbeam::channel::unbounded();
        execute(
            main.handler(),
            move || std::thread::current().id(),
            move |bg_thread| {
                tx.send((bg_thread, std::thread::current().id())).unwrap();
            },
        );
        let (bg, post) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_ne!(bg, main_id, "background must not run on the main thread");
        assert_eq!(post, main_id, "onPostExecute must run on the main thread");
    }

    #[test]
    fn tasks_can_overlap() {
        let main = MainThread::spawn();
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..8 {
            let tx = tx.clone();
            execute(main.handler(), move || i, move |v| tx.send(v).unwrap());
        }
        let mut seen: Vec<i32> =
            (0..8).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }
}
