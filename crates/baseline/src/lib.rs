//! # morena-baseline
//!
//! The **handcrafted** programming model of the MORENA evaluation (§4):
//! a faithful analog of the raw Android NFC SDK surface that the paper's
//! baseline application is written against.
//!
//! It deliberately preserves every drawback the paper lists — blocking
//! tag I/O that throws per call ([`ndef_tech::Ndef`]), manual
//! concurrency management ([`async_task::execute`]), and no help at all
//! with data conversion or retrying. Applications built on this crate
//! (see `morena-apps`' handcrafted WiFi app) bear those costs in their
//! own line counts, which is exactly what Figure 2 of the paper
//! measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_task;
pub mod ndef_tech;

pub use ndef_tech::{Ndef, TagIoError};
