//! A faithful analog of Android's `android.nfc.tech.Ndef`: the
//! *synchronous, blocking, per-call-fallible* tag I/O class that raw
//! applications program against.
//!
//! Everything the MORENA paper criticizes is intentionally preserved
//! here: `connect`/`ndef_message`/`write_ndef_message` block the calling
//! thread for the full link latency, throw on every transient fault, and
//! leave retrying, threading, and data conversion entirely to the
//! application.

use morena_ndef::NdefMessage;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::error::{LinkError, NfcOpError};
use morena_nfc_sim::proto::NdefTagInfo;
use morena_nfc_sim::tag::TagUid;

/// Errors thrown by the blocking [`Ndef`] operations — the analog of
/// Android's `IOException` / `TagLostException` / `FormatException`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TagIoError {
    /// The tag left the field before or during the operation
    /// (`TagLostException`).
    TagLost,
    /// The exchange failed at the radio level (`IOException`).
    Io,
    /// The tag is not NDEF formatted (`FormatException`).
    NotNdef,
    /// The message does not fit on the tag.
    TooLarge {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        capacity: usize,
    },
    /// The tag rejects writes.
    ReadOnly,
    /// The tag misbehaved at the protocol level.
    Protocol(&'static str),
    /// The payload on the tag is not a parseable NDEF message.
    Malformed,
}

impl std::fmt::Display for TagIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagIoError::TagLost => write!(f, "tag was lost"),
            TagIoError::Io => write!(f, "tag I/O error"),
            TagIoError::NotNdef => write!(f, "tag is not NDEF formatted"),
            TagIoError::TooLarge { needed, capacity } => {
                write!(f, "message of {needed} bytes exceeds capacity {capacity}")
            }
            TagIoError::ReadOnly => write!(f, "tag is read-only"),
            TagIoError::Protocol(d) => write!(f, "protocol violation: {d}"),
            TagIoError::Malformed => write!(f, "tag payload is not valid NDEF"),
        }
    }
}

impl std::error::Error for TagIoError {}

impl TagIoError {
    /// Whether the application could plausibly retry (the decision the
    /// raw API forces every caller to make by hand).
    pub fn is_retryable(&self) -> bool {
        matches!(self, TagIoError::TagLost | TagIoError::Io)
    }
}

fn map_err(e: NfcOpError) -> TagIoError {
    match e {
        NfcOpError::Link(LinkError::OutOfRange | LinkError::FieldLost) => TagIoError::TagLost,
        NfcOpError::Link(_) => TagIoError::Io,
        NfcOpError::NotNdef => TagIoError::NotNdef,
        NfcOpError::CapacityExceeded { needed, capacity } => {
            TagIoError::TooLarge { needed, capacity }
        }
        NfcOpError::ReadOnly => TagIoError::ReadOnly,
        NfcOpError::Protocol(d) => TagIoError::Protocol(d),
        _ => TagIoError::Io,
    }
}

/// The blocking NDEF technology handle for one tag, in the image of
/// `android.nfc.tech.Ndef`.
///
/// # Examples
///
/// ```
/// use morena_baseline::ndef_tech::Ndef;
/// use morena_ndef::{NdefMessage, NdefRecord};
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::controller::NfcHandle;
/// use morena_nfc_sim::link::LinkModel;
/// use morena_nfc_sim::tag::{TagUid, Type2Tag};
/// use morena_nfc_sim::world::World;
///
/// # fn main() -> Result<(), morena_baseline::ndef_tech::TagIoError> {
/// let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
/// let phone = world.add_phone("alice");
/// let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
/// world.tap_tag(uid, phone);
///
/// let mut ndef = Ndef::get(NfcHandle::new(world, phone), uid);
/// ndef.connect()?; // blocks; throws if the tag is away
/// let msg = NdefMessage::single(NdefRecord::mime("text/plain", b"hi".to_vec()).unwrap());
/// ndef.write_ndef_message(&msg)?; // blocks for the full write
/// assert_eq!(ndef.ndef_message()?, Some(msg));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ndef {
    nfc: NfcHandle,
    uid: TagUid,
    info: Option<NdefTagInfo>,
}

impl Ndef {
    /// Obtains the NDEF technology handle for a discovered tag (the
    /// analog of `Ndef.get(tag)`).
    pub fn get(nfc: NfcHandle, uid: TagUid) -> Ndef {
        Ndef { nfc, uid, info: None }
    }

    /// The tag this handle is for.
    pub fn uid(&self) -> TagUid {
        self.uid
    }

    /// Connects: runs NDEF detection, blocking for its exchanges.
    ///
    /// # Errors
    ///
    /// [`TagIoError::TagLost`] / [`TagIoError::Io`] on connectivity
    /// faults, [`TagIoError::NotNdef`] for unformatted tags.
    pub fn connect(&mut self) -> Result<(), TagIoError> {
        let info = self.nfc.ndef_detect(self.uid).map_err(map_err)?;
        self.info = Some(info);
        Ok(())
    }

    /// Whether `connect` succeeded and the tag is still in range.
    pub fn is_connected(&self) -> bool {
        self.info.is_some() && self.nfc.tag_in_range(self.uid)
    }

    /// The usable capacity in bytes (requires `connect`).
    pub fn max_size(&self) -> Option<usize> {
        self.info.map(|i| i.capacity)
    }

    /// Whether the tag accepts writes (requires `connect`).
    pub fn is_writable(&self) -> Option<bool> {
        self.info.map(|i| i.writable)
    }

    /// Reads the tag's NDEF message, blocking. `Ok(None)` means the tag
    /// is formatted but blank.
    ///
    /// # Errors
    ///
    /// Any [`TagIoError`]; transient ones must be retried by the caller.
    pub fn ndef_message(&self) -> Result<Option<NdefMessage>, TagIoError> {
        let bytes = self.nfc.ndef_read(self.uid).map_err(map_err)?;
        if bytes.is_empty() {
            return Ok(None);
        }
        match NdefMessage::parse(&bytes) {
            Ok(message) if message.is_blank() => Ok(None),
            Ok(message) => Ok(Some(message)),
            Err(_) => Err(TagIoError::Malformed),
        }
    }

    /// Permanently write-protects the tag (`Ndef.makeReadOnly()`),
    /// blocking. Irreversible.
    ///
    /// # Errors
    ///
    /// Any [`TagIoError`]; [`TagIoError::ReadOnly`] when already locked.
    pub fn make_read_only(&self) -> Result<(), TagIoError> {
        self.nfc.ndef_make_read_only(self.uid).map_err(map_err)
    }

    /// Writes `message` to the tag, blocking for the full multi-command
    /// procedure. A mid-operation field loss leaves a torn tag — exactly
    /// like the real API.
    ///
    /// # Errors
    ///
    /// Any [`TagIoError`]; transient ones must be retried by the caller.
    pub fn write_ndef_message(&self, message: &NdefMessage) -> Result<(), TagIoError> {
        self.nfc.ndef_write(self.uid, &message.to_bytes()).map_err(map_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_ndef::NdefRecord;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;

    fn setup() -> (World, NfcHandle, TagUid) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 17);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let nfc = NfcHandle::new(world.clone(), phone);
        (world, nfc, uid)
    }

    fn msg(text: &str) -> NdefMessage {
        NdefMessage::single(NdefRecord::mime("text/plain", text.as_bytes().to_vec()).unwrap())
    }

    #[test]
    fn connect_read_write_round_trip() {
        let (world, nfc, uid) = setup();
        world.tap_tag(uid, nfc.phone());
        let mut ndef = Ndef::get(nfc, uid);
        ndef.connect().unwrap();
        assert!(ndef.is_connected());
        assert_eq!(ndef.max_size(), Some(499)); // 504 - long TLV overhead
        assert_eq!(ndef.is_writable(), Some(true));
        assert_eq!(ndef.ndef_message().unwrap(), None); // blank tag
        ndef.write_ndef_message(&msg("raw api")).unwrap();
        assert_eq!(ndef.ndef_message().unwrap(), Some(msg("raw api")));
    }

    #[test]
    fn operations_throw_when_tag_is_away() {
        let (_world, nfc, uid) = setup();
        let mut ndef = Ndef::get(nfc, uid);
        assert_eq!(ndef.connect().unwrap_err(), TagIoError::TagLost);
        assert!(!ndef.is_connected());
        assert_eq!(ndef.ndef_message().unwrap_err(), TagIoError::TagLost);
        assert_eq!(ndef.write_ndef_message(&msg("x")).unwrap_err(), TagIoError::TagLost);
    }

    #[test]
    fn error_mapping_matches_android_semantics() {
        assert_eq!(map_err(NfcOpError::Link(LinkError::OutOfRange)), TagIoError::TagLost);
        assert_eq!(map_err(NfcOpError::Link(LinkError::FieldLost)), TagIoError::TagLost);
        assert_eq!(map_err(NfcOpError::Link(LinkError::TransmissionError)), TagIoError::Io);
        assert_eq!(map_err(NfcOpError::NotNdef), TagIoError::NotNdef);
        assert_eq!(map_err(NfcOpError::ReadOnly), TagIoError::ReadOnly);
        assert_eq!(
            map_err(NfcOpError::CapacityExceeded { needed: 9, capacity: 4 }),
            TagIoError::TooLarge { needed: 9, capacity: 4 }
        );
        assert!(TagIoError::TagLost.is_retryable());
        assert!(TagIoError::Io.is_retryable());
        assert!(!TagIoError::ReadOnly.is_retryable());
        assert!(!TagIoError::NotNdef.is_retryable());
    }

    #[test]
    fn make_read_only_locks_the_tag_permanently() {
        let (world, nfc, uid) = setup();
        world.tap_tag(uid, nfc.phone());
        let mut ndef = Ndef::get(nfc, uid);
        ndef.connect().unwrap();
        ndef.write_ndef_message(&msg("keep me")).unwrap();
        ndef.make_read_only().unwrap();
        assert_eq!(ndef.write_ndef_message(&msg("x")).unwrap_err(), TagIoError::ReadOnly);
        assert_eq!(ndef.ndef_message().unwrap(), Some(msg("keep me")));
        // Reconnecting reports the protection.
        ndef.connect().unwrap();
        assert_eq!(ndef.is_writable(), Some(false));
        assert_eq!(ndef.make_read_only().unwrap_err(), TagIoError::ReadOnly);
    }

    #[test]
    fn unformatted_tag_reports_not_ndef() {
        let (world, nfc, _uid) = setup();
        let mut raw = Type2Tag::ntag213(TagUid::from_seed(2));
        raw.unformat();
        let uid2 = raw.uid();
        world.add_tag(Box::new(raw));
        world.tap_tag(uid2, nfc.phone());
        let mut ndef = Ndef::get(nfc, uid2);
        assert_eq!(ndef.connect().unwrap_err(), TagIoError::NotNdef);
    }

    #[test]
    fn display_nonempty() {
        for e in [
            TagIoError::TagLost,
            TagIoError::Io,
            TagIoError::NotNdef,
            TagIoError::TooLarge { needed: 1, capacity: 0 },
            TagIoError::ReadOnly,
            TagIoError::Protocol("x"),
            TagIoError::Malformed,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
