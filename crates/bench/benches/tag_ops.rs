//! µ-bench: tag-emulator command processing and complete reader-side
//! NDEF procedures (Type 2 vs Type 4) over a direct, loss-free link.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morena_nfc_sim::proto::{self, DirectLink};
use morena_nfc_sim::tag::{TagEmulator, TagTech, TagUid, Type2Tag, Type4Tag};
use std::hint::black_box;

fn bench_raw_commands(c: &mut Criterion) {
    c.bench_function("type2_read_command", |b| {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(1));
        b.iter(|| black_box(tag.transceive(&[0x30, 4]).expect("read")));
    });
    c.bench_function("type2_write_command", |b| {
        let mut tag = Type2Tag::ntag215(TagUid::from_seed(1));
        b.iter(|| black_box(tag.transceive(&[0xA2, 5, 1, 2, 3, 4]).expect("write")));
    });
    c.bench_function("type4_select_app_apdu", |b| {
        let mut tag = Type4Tag::new(TagUid::from_seed(2), 1024);
        let apdu = proto::t4_select_app_apdu();
        b.iter(|| black_box(tag.transceive(&apdu).expect("select")));
    });
}

fn bench_ndef_procedures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndef_write_procedure");
    for size in [32usize, 256, 800] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("type2", size), &size, |b, &size| {
            let mut tag = Type2Tag::ntag216(TagUid::from_seed(3));
            let payload = vec![0x42; size];
            b.iter(|| {
                proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &payload)
                    .expect("write");
            });
        });
        group.bench_with_input(BenchmarkId::new("type4", size), &size, |b, &size| {
            let mut tag = Type4Tag::new(TagUid::from_seed(4), 2048);
            let payload = vec![0x42; size];
            b.iter(|| {
                proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4, &payload)
                    .expect("write");
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ndef_read_procedure");
    for size in [32usize, 256, 800] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("type2", size), &size, |b, &size| {
            let mut tag = Type2Tag::ntag216(TagUid::from_seed(5));
            proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2, &vec![7; size])
                .expect("preload");
            b.iter(|| {
                black_box(
                    proto::read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type2).expect("read"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("type4", size), &size, |b, &size| {
            let mut tag = Type4Tag::new(TagUid::from_seed(6), 2048);
            proto::write_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4, &vec![7; size])
                .expect("preload");
            b.iter(|| {
                black_box(
                    proto::read_ndef(&mut DirectLink::new(&mut tag), TagTech::Type4).expect("read"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_commands, bench_ndef_procedures);
criterion_main!(benches);
