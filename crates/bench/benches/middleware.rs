//! µ-bench: MORENA middleware overhead — end-to-end latency of an
//! asynchronous operation through the event loop (submit → attempt →
//! main-thread listener) on an instant, loss-free link, thing-layer JSON
//! conversion, and world proximity-event dispatch.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use crossbeam::channel::unbounded;
use morena_core::context::MorenaContext;
use morena_core::convert::{JsonConverter, StringConverter, TagDataConverter};
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use serde::{Deserialize, Serialize};
use std::hint::black_box;

fn bench_async_ops(c: &mut Criterion) {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 0);
    let phone = world.add_phone("bench");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new().with_backoff(Backoff::constant(Duration::from_micros(100))),
    );

    c.bench_function("tagref_async_write_round_trip", |b| {
        b.iter(|| {
            let (tx, rx) = unbounded();
            reference.write(
                "bench-payload".to_string(),
                move |_| {
                    let _ = tx.send(());
                },
                |_, f| panic!("{f}"),
            );
            rx.recv_timeout(Duration::from_secs(10)).expect("completion");
        });
    });

    c.bench_function("tagref_async_read_round_trip", |b| {
        b.iter(|| {
            let (tx, rx) = unbounded();
            reference.read(
                move |r| {
                    let _ = tx.send(r.cached());
                },
                |_, f| panic!("{f}"),
            );
            black_box(rx.recv_timeout(Duration::from_secs(10)).expect("completion"));
        });
    });
    reference.close();
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchThing {
    name: String,
    counters: Vec<u32>,
    flag: bool,
}

fn bench_thing_conversion(c: &mut Criterion) {
    let converter: JsonConverter<BenchThing> = JsonConverter::new("application/vnd.bench+json");
    let value = BenchThing { name: "bench".into(), counters: (0..32).collect(), flag: true };
    c.bench_function("thing_json_to_message", |b| {
        b.iter(|| black_box(converter.to_message(&value).expect("convert")));
    });
    let message = converter.to_message(&value).expect("convert");
    c.bench_function("thing_json_from_message", |b| {
        b.iter(|| black_box(converter.from_message(&message).expect("convert")));
    });
}

fn bench_world_events(c: &mut Criterion) {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 0);
    let phone = world.add_phone("bench");
    let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(9))));
    let events = world.subscribe(phone);
    c.bench_function("world_tap_event_dispatch", |b| {
        b.iter(|| {
            world.tap_tag(uid, phone);
            world.remove_tag_from_field(uid);
            // Drain the two proximity events produced above.
            black_box(events.recv().expect("enter"));
            black_box(events.recv().expect("leave"));
        });
    });
}

fn bench_keyed_converter(c: &mut Criterion) {
    use morena_core::keyed::{KeyedConverter, MemoryStore};
    let store = Arc::new(MemoryStore::<String>::new());
    let converter = KeyedConverter::new("application/vnd.bench.key", store);
    let object = "backend object ".repeat(64);
    c.bench_function("keyed_converter_round_trip", |b| {
        b.iter(|| {
            let message = converter.to_message(&object).expect("store");
            black_box(converter.from_message(&message).expect("resolve"))
        });
    });
}

fn bench_peer_delivery(c: &mut Criterion) {
    use morena_core::peer::{PeerInbox, PeerListener, PeerReference};
    use morena_nfc_sim::world::PhoneId;

    struct Ack {
        tx: crossbeam::channel::Sender<()>,
    }
    impl PeerListener<StringConverter> for Ack {
        fn on_message(&self, _from: PhoneId, _value: String) {
            let _ = self.tx.send(());
        }
    }

    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 0);
    let alice = world.add_phone("alice");
    let bob = world.add_phone("bob");
    let alice_ctx = MorenaContext::headless(&world, alice);
    let bob_ctx = MorenaContext::headless(&world, bob);
    let (tx, rx) = unbounded();
    let _inbox =
        PeerInbox::new(&bob_ctx, Arc::new(StringConverter::plain_text()), Arc::new(Ack { tx }));
    world.bring_phones_together(alice, bob);
    let reference = PeerReference::with_policy(
        &alice_ctx,
        bob,
        Arc::new(StringConverter::plain_text()),
        Policy::new().with_backoff(Backoff::constant(Duration::from_micros(100))),
    );
    c.bench_function("peer_send_end_to_end", |b| {
        b.iter(|| {
            reference.send_ok("benchmark message".into());
            rx.recv_timeout(Duration::from_secs(10)).expect("delivered");
        });
    });
    reference.close();
}

criterion_group!(
    benches,
    bench_async_ops,
    bench_thing_conversion,
    bench_world_events,
    bench_keyed_converter,
    bench_peer_delivery
);
criterion_main!(benches);
