//! µ-bench: NDEF wire-format encode/decode throughput across message
//! sizes and shapes, plus chunked-encoding reassembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use morena_ndef::rtd::{
    CarrierPowerState, HandoverSelect, SmartPoster, TextRecord, UriRecord, WifiCredential,
};
use morena_ndef::{NdefMessage, NdefRecord};
use std::hint::black_box;

fn payload_message(size: usize) -> NdefMessage {
    NdefMessage::single(
        NdefRecord::mime("application/octet-stream", vec![0xA5; size]).expect("record"),
    )
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndef_encode");
    for size in [16usize, 128, 1024, 8192] {
        let message = payload_message(size);
        group.throughput(Throughput::Bytes(message.encoded_len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &message, |b, m| {
            b.iter(|| black_box(m.to_bytes()));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndef_decode");
    for size in [16usize, 128, 1024, 8192] {
        let bytes = payload_message(size).to_bytes();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &bytes, |b, bytes| {
            b.iter(|| black_box(NdefMessage::parse(bytes).expect("valid")));
        });
    }
    group.finish();
}

fn bench_chunked_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndef_chunked_round_trip");
    let message = payload_message(4096);
    for chunk in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let bytes = message.to_bytes_chunked(chunk);
                black_box(NdefMessage::parse(&bytes).expect("valid"))
            });
        });
    }
    group.finish();
}

fn bench_rtd(c: &mut Criterion) {
    c.bench_function("rtd_text_round_trip", |b| {
        let text = TextRecord::new("en", "the quick brown fox jumps over the lazy dog");
        b.iter(|| {
            let record = text.to_record();
            black_box(TextRecord::from_record(&record).expect("valid"))
        });
    });
    c.bench_function("rtd_uri_round_trip", |b| {
        let uri = UriRecord::new("https://www.example.com/menu/of/the/day");
        b.iter(|| {
            let record = uri.to_record();
            black_box(UriRecord::from_record(&record).expect("valid"))
        });
    });
    c.bench_function("rtd_smart_poster_round_trip", |b| {
        let poster = SmartPoster::new("https://example.com")
            .with_title("en", "Title")
            .with_title("nl", "Titel");
        b.iter(|| {
            let record = poster.to_record();
            black_box(SmartPoster::from_record(&record).expect("valid"))
        });
    });
}

fn bench_handover(c: &mut Criterion) {
    c.bench_function("handover_select_round_trip", |b| {
        let wifi = WifiCredential::new("venue-guest", "w1f1-pass");
        b.iter(|| {
            let message = HandoverSelect::new()
                .with_carrier(
                    CarrierPowerState::Active,
                    b"w0",
                    wifi.to_record(b"w0").expect("record"),
                )
                .to_message()
                .expect("message");
            let parsed = morena_ndef::NdefMessage::parse(&message.to_bytes()).expect("wire");
            let select = HandoverSelect::from_message(&parsed).expect("select");
            black_box(select.wifi_credential(&parsed).expect("credential"))
        });
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_chunked_round_trip,
    bench_rtd,
    bench_handover
);
criterion_main!(benches);
