//! µ-bench: lease acquire/release cost over the air (instant link) and
//! the pure lock-record codec.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use morena_core::context::MorenaContext;
use morena_core::lease::{DeviceId, LeaseManager, LeaseRecord};
use morena_nfc_sim::clock::{SimInstant, SystemClock};
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use std::hint::black_box;

fn bench_lease_cycle(c: &mut Criterion) {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 0);
    let phone = world.add_phone("bench");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let manager = LeaseManager::new(&ctx);

    c.bench_function("lease_acquire_release_cycle", |b| {
        b.iter(|| {
            let lease = manager.acquire(uid, Duration::from_secs(5)).expect("acquire");
            manager.release(&lease).expect("release");
        });
    });

    c.bench_function("lease_inspect", |b| {
        b.iter(|| black_box(manager.inspect(uid).expect("inspect")));
    });
}

fn bench_lease_codec(c: &mut Criterion) {
    let lease =
        LeaseRecord { holder: DeviceId(42), expires_at: SimInstant::from_nanos(123_456_789_000) };
    c.bench_function("lease_record_encode_decode", |b| {
        b.iter(|| {
            let record = lease.to_record();
            black_box(LeaseRecord::from_record(&record).expect("decode"))
        });
    });
}

criterion_group!(benches, bench_lease_cycle, bench_lease_codec);
criterion_main!(benches);
