//! **EXT-INSPECT** — measures the cost of live introspection and emits
//! the health-report / Chrome-trace artifacts CI archives.
//!
//! Two phases:
//!
//! 1. **Overhead** — a tight loop of synchronous writes against an
//!    in-range tag over an instant link, once with the inspector hooks
//!    merely registered (they always are) and once with a ~10 Hz
//!    watchdog poller snapshotting every component concurrently. The
//!    delta is the enabled-idle cost of introspection per operation;
//!    the budget is < 1% (see `EXPERIMENTS.md`).
//! 2. **Artifacts** — a deliberately broken run (a `stuck_tag` fault
//!    plan at rate 1.0, so every exchange dwells and fails) that the
//!    watchdog must flag. The final [`HealthReport`] is written as JSON
//!    (first CLI argument, default `ext_inspect_health.json`) and the
//!    full event stream is exported as Chrome `trace_event` JSON for
//!    Perfetto (second argument, default `ext_inspect_trace.json`).
//!
//! `MORENA_QUICK=1` shrinks the op counts for smoke runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use morena_bench::{cell, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::faults::{FaultKind, FaultPlan, FaultRates};
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use morena_obs::{ChromeTraceSink, Health, NullSink, Watchdog};

/// One measurement run: `ops` synchronous writes against an in-range
/// tag; optionally a concurrent watchdog poller at ~`poll_hz`.
/// Returns the mean wall-clock nanoseconds per op.
fn per_op_nanos(ops: usize, poll_hz: Option<u64>) -> f64 {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 11);
    // Enabled-idle: the recorder is on, but events go nowhere.
    world.obs().install(Arc::new(NullSink));
    let phone = world.add_phone("bench");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new().with_timeout(Duration::from_secs(20)),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let poller = poll_hz.map(|hz| {
        let world = world.clone();
        let stop = Arc::clone(&stop);
        let period = Duration::from_nanos(1_000_000_000 / hz.max(1));
        std::thread::spawn(move || {
            let watchdog = Watchdog::default();
            let mut reports = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
                let report =
                    watchdog.evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
                reports += u64::from(report.health == Health::Healthy);
                std::thread::sleep(period);
            }
            reports
        })
    });

    let started = std::time::Instant::now();
    for i in 0..ops {
        reference
            .write_sync(format!("p{i}"), Duration::from_secs(20))
            .expect("write over instant link");
    }
    let elapsed = started.elapsed().as_nanos() as f64;

    stop.store(true, Ordering::Release);
    if let Some(handle) = poller {
        handle.join().expect("poller thread");
    }
    reference.close();
    elapsed / ops as f64
}

/// A run the watchdog must flag: every exchange hits a stuck tag, so
/// the head op piles up retries while the trace records the carnage.
fn broken_run(quick: bool) -> (String, String, usize) {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 23);
    let sink = Arc::new(ChromeTraceSink::new());
    world.obs().install(sink.clone());
    world.install_fault_plan(
        FaultPlan::new(5, FaultRates::only(FaultKind::StuckTag, 1.0))
            .with_delays(Duration::from_millis(2), Duration::from_millis(2)),
    );
    let phone = world.add_phone("victim");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(9))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(Duration::from_secs(60))
            .with_backoff(Backoff::constant(Duration::from_micros(500))),
    );
    reference.write("doomed".to_string(), |_| {}, |_, _| {});

    // Let the retry storm build past the watchdog's threshold.
    let dwell = Duration::from_millis(if quick { 60 } else { 150 });
    std::thread::sleep(dwell);

    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let watchdog = Watchdog::default();
    let report = watchdog.evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    println!("{}", morena_obs::render_top(&snapshot, &report));
    assert!(
        report.health != Health::Healthy,
        "a run where every exchange sticks must not report Healthy"
    );

    reference.close();
    world.obs().flush();
    let events = sink.len();
    (report.to_json(), sink.export(), events)
}

fn main() {
    let quick = quick_mode();
    let health_path =
        std::env::args().nth(1).unwrap_or_else(|| "ext_inspect_health.json".to_string());
    let trace_path =
        std::env::args().nth(2).unwrap_or_else(|| "ext_inspect_trace.json".to_string());

    // --- phase 1: enabled-idle overhead ----------------------------------
    let ops = if quick { 1_000 } else { 8_000 };
    // Warm-up run eats one-time costs (thread spawns, allocator).
    let _ = per_op_nanos(ops / 4, None);
    let idle = per_op_nanos(ops, None);
    let polled = per_op_nanos(ops, Some(10));
    let delta_pct = (polled - idle) / idle * 100.0;
    print_table(
        "EXT-INSPECT: per-op cost, inspector registered vs polled at 10 Hz",
        &["config", "ns/op", "delta"],
        &[
            vec![cell("registered, idle"), cell(format!("{idle:.0}")), cell("-")],
            vec![
                cell("watchdog @ 10 Hz"),
                cell(format!("{polled:.0}")),
                cell(format!("{delta_pct:+.2}%")),
            ],
        ],
    );
    println!("overhead-json: {{\"idle_ns\":{idle:.0},\"polled_ns\":{polled:.0},\"delta_pct\":{delta_pct:.3}}}");

    // --- phase 2: artifacts from a broken run -----------------------------
    let (health_json, trace_json, events) = broken_run(quick);
    std::fs::write(&health_path, &health_json).expect("write health report");
    std::fs::write(&trace_path, &trace_json).expect("write chrome trace");
    println!("\nhealth report -> {health_path}");
    println!("health-json: {health_json}");
    println!("chrome trace -> {trace_path} ({events} events captured)");

    let mut report = morena_bench::BenchReport::new("ext_inspect");
    report.config("ops", ops);
    report.metric("idle_ns_per_op", idle);
    report.metric("polled_ns_per_op", polled);
    report.metric("watchdog_overhead_pct", delta_pct);
    report.metric("trace_events", events as f64);
    report.write().expect("write BENCH_ext_inspect.json");
}
