//! **EXT-OBS** — exercises the `morena-obs` observability layer on a
//! scripted run and shows where a far-reference operation's latency
//! actually goes.
//!
//! Workload: a burst of writes (plus one read) is queued on a tag
//! reference *before the tag is anywhere near the phone*; the tag then
//! oscillates in and out of range over a noisy link while the event
//! loop drains the queue. Every middleware event and every physical
//! ground-truth event flows through one `Recorder` into a `TeeSink`:
//!
//! * a `RingSink` kept in memory for post-hoc correlation, and
//! * a `JsonlSink` writing the full trace to `ext_obs_trace.jsonl`
//!   (override with the first CLI argument).
//!
//! After the run the binary prints the metrics snapshot (counters and
//! latency histograms with p50/p95/p99), then joins middleware events
//! with physical presence via [`morena_obs::correlate`] and prints, per
//! op, the split into **out-of-range wait** / **exchange time** /
//! **queue delay** — the three components that sum exactly to the
//! observed latency. The same breakdowns are echoed as JSON lines so
//! the output is machine-readable end to end.

use std::fs::File;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena_bench::{cell, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::scenario::Scenario;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use morena_obs::timeseries::SamplerConfig;
use morena_obs::{
    correlate, AttemptOutcome, EventKind, FlightRecorder, JsonlSink, ObsEvent, ObsSink, OpKind,
    RingSink, TeeSink,
};

const PERIOD: Duration = Duration::from_millis(120);

fn link() -> LinkModel {
    LinkModel {
        setup_latency: Duration::from_millis(1),
        per_byte_latency: Duration::from_micros(10),
        base_failure_prob: 0.15,
        edge_failure_prob: 0.15,
        ..LinkModel::realistic()
    }
}

fn ms(nanos: u64) -> String {
    format!("{:.2}ms", nanos as f64 / 1e6)
}

fn main() -> std::process::ExitCode {
    let quick = quick_mode();
    let cycles = if quick { 6 } else { 10 };
    let writes = if quick { 3 } else { 5 };
    let mut report = morena_bench::BenchReport::new("ext_obs");
    report.config("cycles", cycles);
    report.config("writes", writes);
    let trace_path = std::env::args().nth(1).unwrap_or_else(|| "ext_obs_trace.jsonl".to_string());

    let world = World::with_link(Arc::new(SystemClock::new()), link(), 7);

    // Wire the full trace into memory (for correlation), onto disk (for
    // offline tooling), and into the always-on flight recorder — the
    // telemetry plane runs for the whole workload so its cost shows up
    // in the overhead accounting below.
    let ring = Arc::new(RingSink::new(65_536));
    let file = File::create(&trace_path).expect("create trace file");
    let jsonl = Arc::new(JsonlSink::new(Box::new(file)));
    let flight = Arc::new(FlightRecorder::default());
    world.obs().install(Arc::new(TeeSink::new(vec![
        ring.clone() as Arc<dyn ObsSink>,
        jsonl.clone() as Arc<dyn ObsSink>,
        flight.clone() as Arc<dyn ObsSink>,
    ])));

    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let ctx = MorenaContext::headless(&world, phone);
    let mut sampler = ctx.start_sampler(SamplerConfig {
        interval: Duration::from_millis(100),
        flight: Some(flight.clone()),
        ..SamplerConfig::default()
    });
    let workload_started = std::time::Instant::now();
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(PERIOD * (cycles as u32 + 2))
            .with_backoff(Backoff::constant(Duration::from_millis(2))),
    );

    // Queue a burst while the tag is still out of range: every op after
    // the first will show head-of-line queue delay on top of the shared
    // out-of-range wait.
    let (tx, rx) = unbounded();
    for i in 0..writes {
        let done = tx.clone();
        let fail = tx.clone();
        reference.write(
            format!("payload-{i}"),
            move |_| {
                let _ = done.send(true);
            },
            move |_, _| {
                let _ = fail.send(false);
            },
        );
    }
    let done = tx.clone();
    let fail = tx;
    reference.read(
        move |_| {
            let _ = done.send(true);
        },
        move |_, _| {
            let _ = fail.send(false);
        },
    );

    // A fumbling user: the tag flickers in and out of the field.
    let driver = Scenario::new().presence_duty_cycle(uid, phone, PERIOD, 0.5, cycles).spawn(&world);
    let mut completed = 0usize;
    for _ in 0..=writes {
        if rx.recv_timeout(PERIOD * (cycles as u32 + 4)).unwrap_or(false) {
            completed += 1;
        }
    }
    driver.join().expect("scenario driver");
    reference.close();
    let wall_nanos = workload_started.elapsed().as_nanos().max(1) as u64;
    sampler.stop();
    world.obs().flush();

    // --- metrics snapshot -------------------------------------------------
    let snapshot = world.obs().metrics().snapshot();
    println!("EXT-OBS: metrics snapshot after {completed}/{} ops\n", writes + 1);
    println!("{snapshot}");
    println!("metrics-json: {}", snapshot.to_json());

    // --- latency attribution ---------------------------------------------
    let events = ring.snapshot();
    let breakdowns = correlate(&events);
    let rows: Vec<Vec<String>> = breakdowns
        .iter()
        .map(|b| {
            vec![
                cell(b.op_id),
                cell(b.op.label()),
                cell(b.outcome.label()),
                cell(ms(b.total_nanos)),
                cell(ms(b.out_of_range_nanos)),
                cell(ms(b.exchange_nanos)),
                cell(ms(b.queue_nanos)),
                cell(b.attempts),
                cell(b.retries),
            ]
        })
        .collect();
    print_table(
        "EXT-OBS: per-op latency attribution (wait + exchange + queue = total)",
        &["op", "kind", "outcome", "total", "oor-wait", "exchange", "queue", "tries", "retries"],
        &rows,
    );
    for b in &breakdowns {
        println!("breakdown-json: {}", b.to_json());
    }

    println!(
        "\ntrace: {} events captured ({} dropped by the ring), {} JSONL lines -> {}",
        events.len(),
        ring.dropped_entries(),
        jsonl.lines_written(),
        trace_path,
    );
    println!(
        "oor-wait = target physically out of range (physics; §3.2); exchange = time\n\
         inside NFC attempts; queue = head-of-line blocking + retry backoff — the\n\
         only slice middleware engineering can shrink."
    );

    // --- telemetry-plane overhead ----------------------------------------
    // The sampler metered its own ticks during the run; the flight
    // recorder's per-event cost is measured directly on its hot path
    // (an attributed op ring, the common case). Composed, the two give
    // the fraction of one core the always-on plane consumed — the
    // number the baseline gates as the <1% overhead claim.
    let ticks = snapshot.counter("obs.sampler.ticks");
    let sampler_busy_nanos = snapshot.histogram("obs.sampler.tick_ns").map_or(0, |h| h.sum_nanos);
    let sampler_duty_pct = sampler_busy_nanos as f64 / wall_nanos as f64 * 100.0;

    let probe = FlightRecorder::default();
    probe.record(&ObsEvent {
        seq: 0,
        at_nanos: 0,
        trace: None,
        kind: EventKind::OpEnqueued {
            op_id: 1,
            loop_name: "tag-probe".to_string(),
            phone: 0,
            target: "probe".to_string(),
            op: OpKind::Write,
            deadline_nanos: 0,
        },
    });
    let probe_events = if quick { 100_000u64 } else { 500_000 };
    let attempt = ObsEvent {
        seq: 1,
        at_nanos: 0,
        trace: None,
        kind: EventKind::OpAttempt {
            op_id: 1,
            started_nanos: 0,
            duration_nanos: 5,
            outcome: AttemptOutcome::Transient,
        },
    };
    let probe_started = std::time::Instant::now();
    for _ in 0..probe_events {
        probe.record(&attempt);
    }
    let flight_ns_per_event = probe_started.elapsed().as_nanos() as f64 / probe_events as f64;
    let events_per_sec = events.len() as f64 / (wall_nanos as f64 / 1e9);
    let flight_share_pct = flight_ns_per_event * events_per_sec / 1e9 * 100.0;
    let telemetry_overhead_pct = sampler_duty_pct + flight_share_pct;

    println!(
        "\ntelemetry plane: {ticks} sampler ticks ({sampler_duty_pct:.4}% of one core), \
         flight recorder {flight_ns_per_event:.0}ns/event x {events_per_sec:.0} events/s \
         ({flight_share_pct:.4}%) => {telemetry_overhead_pct:.4}% total overhead"
    );

    report.metric("completed_ops", completed as f64);
    report.metric("expected_ops", (writes + 1) as f64);
    report.metric("trace_events", events.len() as f64);
    report.metric("ring_dropped", ring.dropped_entries() as f64);
    report.metric("sampler_ticks", ticks as f64);
    report.metric("sampler_duty_pct", sampler_duty_pct);
    report.metric("flight_ns_per_event", flight_ns_per_event);
    report.metric("telemetry_overhead_pct", telemetry_overhead_pct);
    let failed = completed != writes + 1;
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_obs.json");
    if failed {
        eprintln!(
            "ext_obs: FAIL: only {completed}/{} ops completed — the scripted run \
             must drain fully for the attribution to mean anything",
            writes + 1
        );
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
