//! **EXT-RETRY** — quantifies §4's qualitative claim: *"operations that
//! fail due to tag disconnections are automatically retried, which is
//! not incorporated in the handcrafted version, in which the user must
//! manually reattempt the operation."*
//!
//! Workload: one write must reach a tag that is only intermittently in
//! range (a square-wave presence pattern — a user fumbling a tag near
//! the reader) over a noisy link.
//!
//! * **MORENA** — the write is submitted once; the middleware's event
//!   loop retries across noise and across presence windows.
//! * **handcrafted (1 try/tap)** — each tap triggers exactly one write
//!   attempt, as a naive raw-API app does; the user must keep tapping.
//! * **handcrafted (4 tries/tap)** — the more careful raw-API app with a
//!   bounded in-tap retry loop (what `morena-apps`' handcrafted version
//!   implements); still gives up between taps.
//!
//! Expected shape: MORENA succeeds on the first tap nearly always (its
//! attempts counter shows the hidden automatic retries); the baselines
//! need more taps as noise grows or windows shrink, because attempts do
//! not carry over between taps.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use morena_baseline::ndef_tech::Ndef;
use morena_bench::{cell, median, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_ndef::{NdefMessage, NdefRecord};
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::scenario::Scenario;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::{NfcEvent, World};

const PERIOD: Duration = Duration::from_millis(200);

fn link(noise: f64) -> LinkModel {
    LinkModel {
        setup_latency: Duration::from_millis(1),
        per_byte_latency: Duration::from_micros(10),
        base_failure_prob: noise,
        edge_failure_prob: noise,
        ..LinkModel::realistic()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Outcome {
    success: bool,
    taps: usize,
    millis: f64,
    attempts: u64,
}

/// One MORENA trial: submit the write once, run the presence pattern,
/// and wait for the middleware to get it through.
fn morena_trial(duty: f64, noise: f64, cycles: usize, seed: u64) -> Outcome {
    let world = World::with_link(Arc::new(SystemClock::new()), link(noise), seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(PERIOD * (cycles as u32 + 1))
            .with_backoff(Backoff::constant(Duration::from_millis(2))),
    );
    let (tx, rx) = unbounded();
    let err_tx = tx.clone();
    let start = Instant::now();
    reference.write(
        "w".to_string(),
        move |_| {
            let _ = tx.send(true);
        },
        move |_, _| {
            let _ = err_tx.send(false);
        },
    );
    let driver =
        Scenario::new().presence_duty_cycle(uid, phone, PERIOD, duty, cycles).spawn(&world);
    let success = rx.recv_timeout(PERIOD * (cycles as u32 + 2)).unwrap_or(false);
    let elapsed = start.elapsed();
    driver.join().expect("scenario driver");
    let stats = reference.stats().snapshot();
    reference.close();
    Outcome {
        success,
        taps: (elapsed.as_millis() as usize / PERIOD.as_millis() as usize) + 1,
        millis: elapsed.as_secs_f64() * 1e3,
        attempts: stats.attempts,
    }
}

/// One handcrafted trial: each tap triggers `tries_per_tap` blocking
/// write attempts; nothing carries over between taps.
fn handcrafted_trial(
    duty: f64,
    noise: f64,
    cycles: usize,
    tries_per_tap: usize,
    seed: u64,
) -> Outcome {
    let world = World::with_link(Arc::new(SystemClock::new()), link(noise), seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let nfc = morena_nfc_sim::controller::NfcHandle::new(world.clone(), phone);
    let events = nfc.events();
    let message =
        NdefMessage::single(NdefRecord::mime("text/plain", b"w".to_vec()).expect("record"));

    let start = Instant::now();
    let driver =
        Scenario::new().presence_duty_cycle(uid, phone, PERIOD, duty, cycles).spawn(&world);

    let mut taps = 0usize;
    let mut attempts = 0u64;
    let mut success = false;
    let deadline = Instant::now() + PERIOD * (cycles as u32 + 2);
    while !success && Instant::now() < deadline {
        match events.recv_timeout(Duration::from_millis(20)) {
            Ok(NfcEvent::TagEntered { .. }) => {
                taps += 1;
                let mut ndef = Ndef::get(nfc.clone(), uid);
                for _ in 0..tries_per_tap {
                    attempts += 1;
                    let ok =
                        ndef.connect().and_then(|()| ndef.write_ndef_message(&message)).is_ok();
                    if ok {
                        success = true;
                        break;
                    }
                    if !nfc.tag_in_range(uid) {
                        break; // the tap is over; wait for the user
                    }
                }
            }
            _ => {
                if taps >= cycles {
                    break; // the user gave up
                }
            }
        }
    }
    let elapsed = start.elapsed();
    driver.join().expect("scenario driver");
    Outcome { success, taps, millis: elapsed.as_secs_f64() * 1e3, attempts }
}

struct Aggregate {
    success_pct: f64,
    taps_median: f64,
    attempts_median: f64,
    millis_median: f64,
}

fn aggregate(outcomes: &[Outcome]) -> Aggregate {
    let successes: Vec<&Outcome> = outcomes.iter().filter(|o| o.success).collect();
    let mut taps: Vec<f64> = successes.iter().map(|o| o.taps as f64).collect();
    let mut attempts: Vec<f64> = successes.iter().map(|o| o.attempts as f64).collect();
    let mut millis: Vec<f64> = successes.iter().map(|o| o.millis).collect();
    Aggregate {
        success_pct: 100.0 * successes.len() as f64 / outcomes.len() as f64,
        taps_median: median(&mut taps),
        attempts_median: median(&mut attempts),
        millis_median: median(&mut millis),
    }
}

fn run_row(duty: f64, noise: f64, cycles: usize, trials: usize) -> (Aggregate, Vec<String>) {
    // Distinct RNG seeds per configuration so rows do not share luck.
    let base = (duty * 1000.0) as u64 * 100_000 + (noise * 1000.0) as u64 * 100;
    let morena: Vec<Outcome> =
        (0..trials).map(|t| morena_trial(duty, noise, cycles, base + t as u64)).collect();
    let naive: Vec<Outcome> = (0..trials)
        .map(|t| handcrafted_trial(duty, noise, cycles, 1, base + 41 + t as u64))
        .collect();
    let careful: Vec<Outcome> = (0..trials)
        .map(|t| handcrafted_trial(duty, noise, cycles, 4, base + 83 + t as u64))
        .collect();
    let (m, n, c) = (aggregate(&morena), aggregate(&naive), aggregate(&careful));
    let row = vec![
        cell(format!("{duty:.1}")),
        cell(format!("{noise:.2}")),
        cell(format!("{:.0}%", m.success_pct)),
        cell(format!("{:.0}", m.taps_median)),
        cell(format!("{:.0}", m.attempts_median)),
        cell(format!("{:.0}ms", m.millis_median)),
        cell(format!("{:.0}%", n.success_pct)),
        cell(format!("{:.0}", n.taps_median)),
        cell(format!("{:.0}%", c.success_pct)),
        cell(format!("{:.0}", c.taps_median)),
    ];
    (m, row)
}

fn main() -> std::process::ExitCode {
    let quick = quick_mode();
    let trials = if quick { 3 } else { 8 };
    let cycles = if quick { 8 } else { 12 };
    let header = [
        "duty", "noise", "M ok", "M taps", "M tries", "M time", "B1 ok", "B1 taps", "B4 ok",
        "B4 taps",
    ];

    let mut report = morena_bench::BenchReport::new("ext_retry");
    report.config("trials", trials);
    report.config("cycles", cycles);
    let mut morena_aggregates = Vec::new();

    // Sweep 1: presence duty cycle at a fixed noisy link.
    let mut rows = Vec::new();
    for duty in [0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let (m, row) = run_row(duty, 0.20, cycles, trials);
        report.metric(&format!("morena_success_pct@duty{duty:.1}"), m.success_pct);
        morena_aggregates.push(m);
        rows.push(row);
    }
    print_table(
        "EXT-RETRY: write under intermittent presence (noise 20% per exchange)",
        &header,
        &rows,
    );

    // Sweep 2: link noise at a fixed half-open presence window.
    let mut rows = Vec::new();
    for noise in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let (m, row) = run_row(0.5, noise, cycles, trials);
        report.metric(&format!("morena_success_pct@noise{noise:.2}"), m.success_pct);
        morena_aggregates.push(m);
        rows.push(row);
    }
    print_table("EXT-RETRY: write under link noise (duty 0.5)", &header, &rows);

    println!(
        "\nM = MORENA (one submission, automatic retry; 'tries' = physical attempts the\n\
         middleware made invisibly). B1/B4 = handcrafted with 1 / 4 attempts per tap;\n\
         the user must re-tap until success. Expected shape: MORENA ~100% success on\n\
         the first tap throughout; baseline taps grow with noise and shrink with duty."
    );

    let mean_success = morena_aggregates.iter().map(|a| a.success_pct).sum::<f64>()
        / morena_aggregates.len() as f64;
    report.metric("morena_mean_success_pct", mean_success);
    // Threshold far below the expected ~100%: this gate catches a broken
    // retry path, not statistical noise in a 3-trial quick run.
    let failed = mean_success < 60.0;
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_retry.json");
    if failed {
        eprintln!(
            "ext_retry: FAIL: MORENA mean success {mean_success:.0}% below the 60% floor — \
             automatic retry is not doing its job"
        );
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
