//! **EXT-SWARM** — memory and throughput telemetry at swarm scale.
//!
//! Drives 1k/10k/100k live tag references (100/1k under
//! `MORENA_QUICK=1`, plus 1M when `MORENA_SWARM_MAX=1m`) across several
//! phones on the sharded worker pool and reports, per swarm size:
//!
//! * **bytes/ref** and **refs/GB** — the inspector's live
//!   `mem_bytes` roll-up divided across the reference population;
//! * **sustained ops/sec** over the full submit→drain window;
//! * **allocs/op** — allocation pressure on the submit→attempt→complete
//!   path, from the `alloc-profile` counting allocator;
//! * **op latency p50/p99** from the `op.completion_ns` histogram,
//!   windowed with `MetricsSnapshot::delta` so only this run counts.
//!
//! Every run must end with the watchdog reporting `Healthy`; any other
//! verdict (or a lost completion) makes the binary exit non-zero. The
//! run always finishes by writing `BENCH_ext_swarm.json`.
//!
//! Flags: `--sizes 1000,10000` overrides the size ladder.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use morena_bench::{cell, print_table, quick_mode, BenchReport};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::sched::ExecutionPolicy;
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use morena_obs::metrics::fmt_bytes;
use morena_obs::{profile, Health, Watchdog};

const PHONES: usize = 4;
const OPS_PER_REF: usize = 2;

struct RunResult {
    size: usize,
    ops: u64,
    elapsed: Duration,
    mem_bytes: u64,
    allocs: u64,
    alloc_bytes: u64,
    p50_nanos: u64,
    p99_nanos: u64,
}

impl RunResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn bytes_per_ref(&self) -> f64 {
        self.mem_bytes as f64 / self.size as f64
    }

    fn refs_per_gb(&self) -> f64 {
        (1u64 << 30) as f64 / self.bytes_per_ref().max(1.0)
    }

    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / (self.ops as f64).max(1.0)
    }
}

fn run(size: usize, seed: u64) -> Result<RunResult, String> {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), seed);
    // The whole backlog is queued up front, so the tail op's latency is
    // the full drain time — the timeout must scale with swarm size or
    // large ladders time out behind the head-of-line queue.
    let op_timeout = Duration::from_secs(300 + size as u64 / 50);
    let config = Policy::new()
        .with_timeout(op_timeout)
        .with_backoff(Backoff::constant(Duration::from_micros(100)));

    // Several phones, each with its own context and worker pool, tags
    // split evenly — the multi-device shape of the swarm_stress suite.
    let contexts: Vec<_> = (0..PHONES)
        .map(|p| {
            let phone = world.add_phone(&format!("swarm-{p}"));
            (phone, MorenaContext::headless_with(&world, phone, ExecutionPolicy::default()))
        })
        .collect();
    let references: Vec<_> = (0..size)
        .map(|i| {
            let (phone, ctx) = &contexts[i % PHONES];
            let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(i as u32))));
            world.tap_tag(uid, *phone);
            TagReference::with_policy(
                ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
                config.clone(),
            )
        })
        .collect();

    // Window start: everything below is attributed to this run only.
    // Ops execute on the sharded worker pool, so the allocation scope
    // must be the process-global one — a thread scope would miss them.
    let before = world.obs().metrics().snapshot();
    let scope = profile::AllocScope::global();
    let started = Instant::now();

    let (done_tx, done_rx) = unbounded();
    for (i, reference) in references.iter().enumerate() {
        for op in 0..OPS_PER_REF {
            let done_tx = done_tx.clone();
            let fail_tx = done_tx.clone();
            reference.write(
                format!("r{i}-op{op}"),
                move |_| {
                    let _ = done_tx.send(Ok(()));
                },
                move |_, f| {
                    let _ = fail_tx.send(Err(f.to_string()));
                },
            );
        }
    }
    let ops = (size * OPS_PER_REF) as u64;
    for n in 0..ops {
        match done_rx.recv_timeout(op_timeout + Duration::from_secs(300)) {
            Ok(Ok(())) => {}
            Ok(Err(fault)) => {
                return Err(format!("size {size}: op failed permanently: {fault}"));
            }
            Err(_) => return Err(format!("size {size}: completion {n}/{ops} never arrived")),
        }
    }
    let elapsed = started.elapsed();
    let alloc = scope.stats();
    let window = world.obs().metrics().snapshot().delta(&before);

    // Steady state: every queue drained but all references still live —
    // the inspector's mem roll-up is the cost of *keeping* the swarm.
    let inspector = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let mem_bytes = inspector.total_mem_bytes();

    let report =
        Watchdog::default().evaluate_with_metrics(&inspector, &world.obs().metrics().snapshot());
    if report.health != Health::Healthy {
        return Err(format!(
            "size {size}: watchdog reported {:?} after drain: {:?}",
            report.health, report.findings
        ));
    }

    let completed = window.counter("ops.succeeded");
    if completed < ops {
        return Err(format!("size {size}: {completed}/{ops} ops succeeded in the window"));
    }
    for reference in references {
        reference.close();
    }

    let completion = window.histogram("op.completion_ns");
    Ok(RunResult {
        size,
        ops,
        elapsed,
        mem_bytes,
        allocs: alloc.allocs,
        alloc_bytes: alloc.bytes,
        p50_nanos: completion.and_then(|h| h.p50()).unwrap_or(0),
        p99_nanos: completion.and_then(|h| h.p99()).unwrap_or(0),
    })
}

fn parse_sizes() -> Vec<usize> {
    let mut sizes = if quick_mode() { vec![100, 1000] } else { vec![1000, 10_000, 100_000] };
    if std::env::var("MORENA_SWARM_MAX").map(|v| v.eq_ignore_ascii_case("1m")).unwrap_or(false) {
        sizes.push(1_000_000);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => {
                let list = args.next().expect("--sizes needs a comma-separated list");
                sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes entries must be integers"))
                    .collect();
            }
            other => panic!("unknown flag {other:?} (expected --sizes)"),
        }
    }
    sizes
}

fn main() -> ExitCode {
    let sizes = parse_sizes();
    let mut report = BenchReport::new("ext_swarm");
    report.config("sizes", sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","));
    report.config("phones", PHONES);
    report.config("ops_per_ref", OPS_PER_REF);
    report.config("policy", "sharded");
    report.config("alloc_profile", profile::ENABLED);

    let mut results = Vec::new();
    let mut failure = None;
    for (i, &size) in sizes.iter().enumerate() {
        match run(size, 9000 + i as u64) {
            Ok(result) => {
                println!(
                    "size {size}: {} ops in {:.1}ms, mem {}, watchdog Healthy",
                    result.ops,
                    result.elapsed.as_secs_f64() * 1e3,
                    fmt_bytes(result.mem_bytes),
                );
                results.push(result);
            }
            Err(err) => {
                eprintln!("ext_swarm: FAIL: {err}");
                failure = Some(err);
                break;
            }
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                cell(r.size),
                cell(fmt_bytes(r.mem_bytes)),
                cell(format!("{:.0}", r.bytes_per_ref())),
                cell(format!("{:.0}", r.refs_per_gb())),
                cell(format!("{:.0}", r.ops_per_sec())),
                cell(format!("{:.1}", r.allocs_per_op())),
                cell(format!("{}us", r.p50_nanos / 1_000)),
                cell(format!("{}us", r.p99_nanos / 1_000)),
            ]
        })
        .collect();
    print_table(
        "EXT-SWARM: live-reference footprint and sustained throughput",
        &["refs", "mem", "bytes/ref", "refs/GB", "ops/s", "allocs/op", "p50", "p99"],
        &rows,
    );
    if !profile::ENABLED {
        println!("\nallocs/op reads 0: built without the alloc-profile feature");
    }

    for r in &results {
        let at = format!("@{}", r.size);
        report.metric(&format!("ops_per_sec{at}"), r.ops_per_sec());
        report.metric(&format!("bytes_per_ref{at}"), r.bytes_per_ref());
        report.metric(&format!("refs_per_gb{at}"), r.refs_per_gb());
        report.metric(&format!("allocs_per_op{at}"), r.allocs_per_op());
        report.metric(&format!("alloc_bytes_per_op{at}"), {
            r.alloc_bytes as f64 / (r.ops as f64).max(1.0)
        });
        report.metric(&format!("op_p50_ns{at}"), r.p50_nanos as f64);
        report.metric(&format!("op_p99_ns{at}"), r.p99_nanos as f64);
    }
    report.metric("failed", if failure.is_some() { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_swarm.json");

    match failure {
        None => ExitCode::SUCCESS,
        Some(_) => ExitCode::FAILURE,
    }
}
