//! **EXT-LEASE** — evaluates the leasing mechanism the paper sketches as
//! future work (§6) and this reproduction implements
//! (`morena_core::lease`): exclusive, time-bounded access to a tag via a
//! lock record (device id + expiry timestamp) written to tag memory,
//! hardened with a write-then-verify round.
//!
//! Workload: M devices take physical turns at one tag (overlapping
//! reader fields cannot both work), each trying to acquire a lease,
//! holding it briefly *while away from the tag*, then returning to
//! release it. Exclusion across taps — with the holder absent — is
//! exactly what §6's lock-record design buys over physical possession.
//!
//! Reported per configuration: grants, `Held` rejections (a valid
//! foreign lease was observed), `LostRace` detections (the verify read
//! caught a concurrent overwrite), I/O failures, and — the safety
//! metric — **overlap anomalies**: pairs of grant intervals from
//! different devices that overlapped in time. The mechanism is safe when
//! this column is 0.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morena_bench::{cell, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::lease::{LeaseError, LeaseManager};
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::geometry::Point;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use parking_lot::Mutex;

fn link() -> LinkModel {
    LinkModel {
        setup_latency: Duration::from_micros(300),
        per_byte_latency: Duration::from_micros(5),
        base_failure_prob: 0.01,
        edge_failure_prob: 0.01,
        ..LinkModel::realistic()
    }
}

#[derive(Debug, Default)]
struct Tally {
    grants: u64,
    held: u64,
    lost_race: u64,
    expired_before_release: u64,
    io_failures: u64,
}

#[derive(Debug, Clone, Copy)]
struct GrantInterval {
    device: u64,
    from: Instant,
    until: Instant,
}

fn contention_trial(devices: usize, ttl: Duration, runtime: Duration, seed: u64) -> (Tally, usize) {
    let world = World::with_link(Arc::new(SystemClock::new()), link(), seed);
    let uid = world.add_tag(Box::new(Type2Tag::ntag216(TagUid::from_seed(1))));
    world.set_tag_position(uid, Point::new(0.0, 0.0));

    let intervals: Arc<Mutex<Vec<GrantInterval>>> = Arc::new(Mutex::new(Vec::new()));
    let tallies: Arc<Mutex<Tally>> = Arc::new(Mutex::new(Tally::default()));
    // Physical turn-taking: only one phone can be at the tag at a time
    // (two overlapping reader fields cannot both work). The lease's job
    // is exclusion *across* taps, while holders are away from the tag.
    let kiosk: Arc<Mutex<()>> = Arc::new(Mutex::new(()));
    let stop_at = Instant::now() + runtime;

    let handles: Vec<_> = (0..devices)
        .map(|d| {
            let phone = world.add_phone(&format!("device-{d}"));
            let away = Point::new(10.0 + d as f64, 10.0);
            world.set_phone_position(phone, away);
            let ctx = MorenaContext::headless(&world, phone);
            let manager = LeaseManager::new(&ctx);
            let world = world.clone();
            let intervals = Arc::clone(&intervals);
            let tallies = Arc::clone(&tallies);
            let kiosk = Arc::clone(&kiosk);
            std::thread::spawn(move || {
                while Instant::now() < stop_at {
                    // Step up to the tag and try to take the lease.
                    let acquired = {
                        let _turn = kiosk.lock();
                        world.set_phone_position(phone, Point::new(0.0, 0.0));
                        let result = manager.acquire(uid, ttl);
                        world.set_phone_position(phone, away);
                        result
                    };
                    match acquired {
                        Ok(lease) => {
                            // Hold the lease while *away from the tag* —
                            // the exclusion the paper's §6 is about.
                            let from = Instant::now();
                            std::thread::sleep(ttl / 4);
                            let released = {
                                let _turn = kiosk.lock();
                                world.set_phone_position(phone, Point::new(0.0, 0.0));
                                let result = manager.release(&lease);
                                world.set_phone_position(phone, away);
                                result
                            };
                            let until = Instant::now();
                            tallies.lock().grants += 1;
                            match released {
                                Ok(()) => intervals.lock().push(GrantInterval {
                                    device: manager.device().0,
                                    from,
                                    until,
                                }),
                                // The lease lapsed while we waited for our
                                // turn at the tag: the tag freed itself, as
                                // designed. Not an error.
                                Err(LeaseError::NotHolder) => {
                                    tallies.lock().expired_before_release += 1;
                                }
                                Err(_) => {
                                    tallies.lock().io_failures += 1;
                                }
                            }
                        }
                        Err(LeaseError::Held { .. }) => {
                            tallies.lock().held += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(LeaseError::LostRace { .. }) => {
                            tallies.lock().lost_race += 1;
                        }
                        Err(_) => {
                            tallies.lock().io_failures += 1;
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("contender thread");
    }

    // Safety check: grant intervals from different devices must not overlap.
    let intervals = intervals.lock();
    let mut anomalies = 0usize;
    for (i, a) in intervals.iter().enumerate() {
        for b in intervals.iter().skip(i + 1) {
            if a.device != b.device && a.from < b.until && b.from < a.until {
                anomalies += 1;
            }
        }
    }
    let tally = std::mem::take(&mut *tallies.lock());
    (tally, anomalies)
}

fn main() -> std::process::ExitCode {
    let runtime = if quick_mode() { Duration::from_millis(500) } else { Duration::from_secs(2) };
    let mut report = morena_bench::BenchReport::new("ext_lease");
    report.config("runtime_ms", runtime.as_millis());
    let mut total_grants = 0u64;
    let mut total_anomalies = 0usize;
    let mut rows = Vec::new();
    for devices in [2usize, 4, 8] {
        for ttl_ms in [50u64, 200] {
            let (tally, anomalies) =
                contention_trial(devices, Duration::from_millis(ttl_ms), runtime, devices as u64);
            report.metric(&format!("grants@{devices}x{ttl_ms}ms"), tally.grants as f64);
            report.metric(&format!("anomalies@{devices}x{ttl_ms}ms"), anomalies as f64);
            total_grants += tally.grants;
            total_anomalies += anomalies;
            rows.push(vec![
                cell(devices),
                cell(format!("{ttl_ms}ms")),
                cell(tally.grants),
                cell(tally.held),
                cell(tally.lost_race),
                cell(tally.expired_before_release),
                cell(tally.io_failures),
                cell(anomalies),
            ]);
        }
    }
    print_table(
        "EXT-LEASE: lease contention around one tag",
        &[
            "devices",
            "ttl",
            "grants",
            "held",
            "lost races",
            "expired",
            "io fail",
            "overlap anomalies",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: rejected attempts show up as 'held' (a valid foreign lease\n\
         was observed), short ttls also expire before their holder gets back to the\n\
         tag ('expired' — the tag freeing itself, as designed), and the safety\n\
         metric 'overlap anomalies' — two devices believing they hold the same tag\n\
         at once — is 0."
    );
    // The safety property is absolute; a run that never granted a lease
    // measured nothing at all. Either way, fail loudly.
    let mut failed = false;
    if total_anomalies > 0 {
        eprintln!(
            "ext_lease: FAIL: {total_anomalies} overlapping grant interval(s) — mutual \
                   exclusion is broken"
        );
        failed = true;
    }
    if total_grants == 0 {
        eprintln!("ext_lease: FAIL: no lease was ever granted — the experiment measured nothing");
        failed = true;
    }
    report.metric("total_grants", total_grants as f64);
    report.metric("total_anomalies", total_anomalies as f64);
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_lease.json");
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
