//! **EXT-EDGE** — behaviour at the edge of the field.
//!
//! The paper motivates decoupling in time with tags that are *"positioned
//! differently with respect to the smartphone"*: reliability is not
//! binary but degrades toward the edge of the ~4 cm field. This
//! experiment holds a tag at a fixed fraction of the field radius and
//! measures a write's fate: per-exchange failure probability (the link
//! model's ground truth), MORENA's success/attempts/time under automatic
//! retry, and the single-attempt success rate a naive raw-API app gets.
//!
//! Expected shape: the naive attempt decays to ~0 near the edge while
//! MORENA stays at 100% success by spending (visibly counted) extra
//! attempts — until the very edge, where even retries cannot buy
//! certainty within the timeout.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use morena_baseline::ndef_tech::Ndef;
use morena_bench::{cell, median, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_ndef::{NdefMessage, NdefRecord};
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;

fn link() -> LinkModel {
    LinkModel {
        setup_latency: Duration::from_micros(500),
        per_byte_latency: Duration::from_micros(5),
        base_failure_prob: 0.01,
        edge_failure_prob: 0.95,
        ..LinkModel::realistic()
    }
}

fn world_at(fraction: f64, seed: u64) -> (World, morena_nfc_sim::world::PhoneId, TagUid) {
    let model = link();
    let world = World::with_link(Arc::new(SystemClock::new()), model.clone(), seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    world.place_tag_near(uid, phone, model.nfc_range_m * fraction);
    (world, phone, uid)
}

struct MorenaOutcome {
    ok: bool,
    attempts: u64,
    millis: f64,
}

fn morena_trial(fraction: f64, seed: u64) -> MorenaOutcome {
    let (world, phone, uid) = world_at(fraction, seed);
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(Duration::from_millis(800))
            .with_backoff(Backoff::constant(Duration::from_micros(500))),
    );
    let (tx, rx) = unbounded();
    let err_tx = tx.clone();
    let start = Instant::now();
    reference.write(
        "edge".to_string(),
        move |_| {
            let _ = tx.send(true);
        },
        move |_, _| {
            let _ = err_tx.send(false);
        },
    );
    let ok = rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let attempts = reference.stats().snapshot().attempts;
    reference.close();
    MorenaOutcome { ok, attempts, millis }
}

fn naive_trial(fraction: f64, seed: u64) -> bool {
    let (world, phone, uid) = world_at(fraction, seed);
    let nfc = morena_nfc_sim::controller::NfcHandle::new(world, phone);
    let message =
        NdefMessage::single(NdefRecord::mime("text/plain", b"edge".to_vec()).expect("record"));
    let mut ndef = Ndef::get(nfc, uid);
    ndef.connect().and_then(|()| ndef.write_ndef_message(&message)).is_ok()
}

fn main() -> std::process::ExitCode {
    let trials = if quick_mode() { 8 } else { 30 };
    let model = link();
    let mut report = morena_bench::BenchReport::new("ext_edge");
    report.config("trials", trials);
    let mut failed = false;
    let mut rows = Vec::new();
    for fraction in [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95] {
        let distance = model.nfc_range_m * fraction;
        let p_fail = model.failure_prob(distance);
        let morena: Vec<MorenaOutcome> = (0..trials)
            .map(|t| morena_trial(fraction, (fraction * 1000.0) as u64 + t as u64))
            .collect();
        let naive_ok = (0..trials)
            .filter(|t| naive_trial(fraction, 5000 + (fraction * 1000.0) as u64 + *t as u64))
            .count();
        let m_ok = morena.iter().filter(|o| o.ok).count();
        let m_ok_pct = 100.0 * m_ok as f64 / trials as f64;
        report.metric(&format!("morena_ok_pct@{fraction}"), m_ok_pct);
        report.metric(&format!("naive_ok_pct@{fraction}"), 100.0 * naive_ok as f64 / trials as f64);
        // Deep inside the field, automatic retry must make the write
        // reliable; only the outer edge is allowed to defeat it.
        if fraction <= 0.5 && m_ok_pct < 80.0 {
            eprintln!(
                "ext_edge: FAIL: only {m_ok_pct:.0}% of writes landed at \
                 {:.0}% of the field radius",
                fraction * 100.0
            );
            failed = true;
        }
        let mut attempts: Vec<f64> =
            morena.iter().filter(|o| o.ok).map(|o| o.attempts as f64).collect();
        let mut millis: Vec<f64> = morena.iter().filter(|o| o.ok).map(|o| o.millis).collect();
        rows.push(vec![
            cell(format!("{:.0}%", fraction * 100.0)),
            cell(format!("{:.0}%", p_fail * 100.0)),
            cell(format!("{:.0}%", 100.0 * m_ok as f64 / trials as f64)),
            cell(format!("{:.0}", median(&mut attempts))),
            cell(format!("{:.0}ms", median(&mut millis))),
            cell(format!("{:.0}%", 100.0 * naive_ok as f64 / trials as f64)),
        ]);
    }
    print_table(
        "EXT-EDGE: one write at a fixed distance from the reader",
        &[
            "distance/range",
            "p(fail)/exchange",
            "MORENA ok",
            "MORENA tries",
            "MORENA time",
            "naive 1-try ok",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the naive single attempt decays with distance roughly as\n\
         (1-p)^exchanges, while MORENA holds ~100% success by retrying within its\n\
         timeout — spending visibly more attempts and time the closer the tag sits\n\
         to the edge of the field."
    );
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_edge.json");
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
