//! **EXT-TRACE** — the causal tracing plane: cross-device trace
//! propagation, per-trace critical-path analysis, and the cost of
//! leaving tracing on.
//!
//! Three parts:
//!
//! 1. **3-hop chain** — phone `a` sends to `b` over a peer reference,
//!    `b`'s handler forwards to `c`, with the phones brought together
//!    one hop at a time so the forward queues across a disconnection.
//!    The run must yield **one connected trace spanning all three
//!    phones**; its per-hop critical-path attribution is printed and
//!    the flow-linked Chrome export is written to
//!    `ext_trace_chrome.json` (override with the first CLI argument).
//! 2. **Fan-out** — many references each perform one traced write; the
//!    run reports traces minted and average spans per trace (the
//!    steady-state cardinality a sampler would see).
//! 3. **Enabled overhead** — the same write workload driven through a
//!    reference whose policy samples every trace vs one that samples
//!    none (contexts are still minted for causality, but never attach
//!    to events or ride the wire). The relative wall-time delta is the
//!    `trace_overhead_pct` metric the baseline gates at < 2%.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena_bench::{cell, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::peer::{PeerInbox, PeerListener, PeerReference};
use morena_core::policy::{Policy, SampleRate};
use morena_core::sched::ExecutionPolicy;
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::{PhoneId, World};
use morena_obs::{analyze_traces, export_chrome_trace, NullSink, ObsSink, RingSink};

fn ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1e6)
}

/// Peer listener that forwards to the next hop and/or reports arrival.
struct Hop {
    forward: Option<PeerReference<StringConverter>>,
    done: Option<crossbeam::channel::Sender<String>>,
}

impl PeerListener<StringConverter> for Hop {
    fn on_message(&self, _from: PhoneId, value: String) {
        if let Some(next) = &self.forward {
            next.send_ok(value.clone());
        }
        if let Some(done) = &self.done {
            let _ = done.send(value);
        }
    }
}

/// Part 1: a → b → c relay; returns `(connected, phones, spans, hops)`.
fn three_hop_chain(chrome_path: &str) -> (bool, u64, u64, usize) {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 41);
    let ring = Arc::new(RingSink::new(16_384));
    world.obs().install(ring.clone());

    let a = world.add_phone("a");
    let b = world.add_phone("b");
    let c = world.add_phone("c");
    let actx = MorenaContext::headless(&world, a);
    let bctx = MorenaContext::headless(&world, b);
    let cctx = MorenaContext::headless(&world, c);
    let conv = Arc::new(StringConverter::plain_text());

    let (hop1_tx, hop1_rx) = unbounded();
    let (final_tx, final_rx) = unbounded();
    let b_to_c = PeerReference::new(&bctx, c, Arc::clone(&conv));
    let _b_inbox = PeerInbox::new(
        &bctx,
        Arc::clone(&conv),
        Arc::new(Hop { forward: Some(b_to_c), done: Some(hop1_tx) }),
    );
    let _c_inbox = PeerInbox::new(
        &cctx,
        Arc::clone(&conv),
        Arc::new(Hop { forward: None, done: Some(final_tx) }),
    );
    let a_to_b = PeerReference::new(&actx, b, Arc::clone(&conv));

    // Hop 1 delivers immediately; hop 2 queues until b meets c — the
    // forwarded op's retries must keep the inherited trace context.
    world.bring_phones_together(a, b);
    a_to_b.send_ok("relay".to_string());
    hop1_rx.recv_timeout(Duration::from_secs(20)).expect("hop 1 never arrived");
    world.bring_phones_together(b, c);
    let delivered = final_rx.recv_timeout(Duration::from_secs(20)).expect("hop 2 never arrived");
    assert_eq!(delivered, "relay");
    world.obs().flush();

    let events = ring.snapshot();
    std::fs::write(chrome_path, export_chrome_trace(&events)).expect("write chrome export");

    let analysis = analyze_traces(&events);
    let chain = analysis
        .iter()
        .max_by_key(|t| (t.phones, t.spans))
        .expect("the relay must have minted a trace");

    let rows: Vec<Vec<String>> = chain
        .hops
        .iter()
        .map(|hop| {
            let bd = &hop.breakdown;
            vec![
                cell(hop.span_id),
                cell(hop.parent_span_id),
                cell(bd.op.label()),
                cell(format!("phone-{}", bd.phone)),
                cell(ms(bd.total_nanos)),
                cell(ms(bd.out_of_range_nanos)),
                cell(ms(bd.exchange_nanos)),
                cell(ms(bd.queue_nanos)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "EXT-TRACE: critical path of trace {} ({} spans, {} phones, dominant: {})",
            chain.trace_id,
            chain.spans,
            chain.phones,
            chain.dominant_component.map_or("none", |c| c.label()),
        ),
        &["span", "parent", "op", "issuer", "total", "oor-wait", "exchange", "queue"],
        &rows,
    );
    println!("trace-json: {}", chain.to_json());
    let chrome = std::fs::read_to_string(chrome_path).expect("read back chrome export");
    println!(
        "chrome export: {} bytes, flow events: {} -> {}",
        chrome.len(),
        chrome.matches("\"cat\":\"trace\"").count(),
        chrome_path,
    );

    (chain.connected, chain.phones, chain.spans, chain.hops.len())
}

/// Part 2: `refs` references, one traced write each, sharded loops.
fn fan_out(refs: usize) -> (usize, f64) {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 42);
    let ring = Arc::new(RingSink::new(refs * 32));
    world.obs().install(ring.clone());
    let phone = world.add_phone("user");
    let ctx = MorenaContext::headless_with(&world, phone, ExecutionPolicy::Sharded { workers: 4 });

    let (tx, rx) = unbounded();
    let references: Vec<_> = (0..refs)
        .map(|i| {
            let uid = world.add_tag(Box::new(Type2Tag::ntag216(TagUid::from_seed(i as u32))));
            world.tap_tag(uid, phone);
            let reference = TagReference::new(
                &ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
            );
            let done = tx.clone();
            let fail = tx.clone();
            reference.write(
                format!("ref-{i}"),
                move |_| {
                    let _ = done.send(true);
                },
                move |_, _| {
                    let _ = fail.send(false);
                },
            );
            reference
        })
        .collect();
    let mut completed = 0usize;
    for _ in 0..refs {
        if rx.recv_timeout(Duration::from_secs(30)).unwrap_or(false) {
            completed += 1;
        }
    }
    assert_eq!(completed, refs, "fan-out writes must all complete");
    for reference in &references {
        reference.close();
    }
    world.obs().flush();

    let analysis = analyze_traces(&ring.snapshot());
    let traces = analysis.len();
    let spans: u64 = analysis.iter().map(|t| t.spans).sum();
    (traces, spans as f64 / traces.max(1) as f64)
}

/// Time one batch of `n` writes through `reference`, wall nanoseconds.
fn run_batch(reference: &TagReference<StringConverter>, n: usize) -> u64 {
    let (tx, rx) = unbounded();
    let started = std::time::Instant::now();
    for i in 0..n {
        let done = tx.clone();
        let fail = tx.clone();
        reference.write(
            format!("b-{i}"),
            move |_| {
                let _ = done.send(true);
            },
            move |_, _| {
                let _ = fail.send(false);
            },
        );
    }
    for _ in 0..n {
        assert!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap_or(false),
            "overhead batch write failed"
        );
    }
    started.elapsed().as_nanos().max(1) as u64
}

/// Part 3: the cost of leaving tracing on, composed `ext_obs`-style.
///
/// Batch wall times on a shared container swing far more than 2% run
/// to run, so a sampled-batch-vs-unsampled-batch wall-clock diff
/// cannot resolve the gate. Instead the per-op tracing work — minting
/// a context (two atomics + the sample decision) plus the per-event
/// stamping delta of a `Some(ctx)` over a `None` through the recorder
/// — is measured on a tight loop and charged at the macro workload's
/// observed op and event rates; their share of the measured per-op
/// wall time is the gated percentage. (Beam/peer sends additionally
/// stamp a wire record; the chain part covers that path's
/// correctness, and it is off the tag-write hot path measured here.)
///
/// Returns `(macro_ns_per_op, tracing_ns_per_op, overhead_pct)`.
fn enabled_overhead(batch: usize, rounds: usize) -> (u64, u64, f64) {
    use morena_obs::{AttemptOutcome, EventKind, Recorder, TraceContext};

    // Macro workload: traced writes with the recorder live, to get the
    // real per-op wall time and events-per-op to charge against.
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 43);
    let ring = Arc::new(RingSink::new((batch * rounds + batch) * 8));
    world.obs().install(ring.clone() as Arc<dyn ObsSink>);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag216(TagUid::from_seed(100_000))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let sampled = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new().with_trace_sample(SampleRate::always()),
    );
    run_batch(&sampled, batch.min(64)); // warm the loop + connection
    let mut wall_nanos = 0u64;
    for _ in 0..rounds {
        wall_nanos += run_batch(&sampled, batch);
    }
    sampled.close();
    world.obs().flush();
    let ops = (batch * rounds) as u64;
    let macro_ns_per_op = wall_nanos / ops.max(1);
    let events_per_op = ring.snapshot().len() as f64 / ops.max(1) as f64;

    // Micro: per-op mint cost (ids + sampling decision)…
    let recorder = Recorder::new();
    recorder.install(Arc::new(NullSink) as Arc<dyn ObsSink>);
    let probe_ops = if quick_mode() { 200_000u64 } else { 1_000_000 };
    let rate = SampleRate::always();
    let started = std::time::Instant::now();
    let mut sum = 0u64;
    for _ in 0..probe_ops {
        let trace_id = recorder.next_trace_id();
        let span_id = recorder.next_span_id();
        sum += u64::from(rate.admits(trace_id)) + span_id;
    }
    std::hint::black_box(sum);
    let mint_ns = started.elapsed().as_nanos() as f64 / probe_ops as f64;

    // …and the per-event delta of stamping a context onto an emit.
    let stamp = |trace: Option<TraceContext>| {
        let started = std::time::Instant::now();
        for i in 0..probe_ops {
            recorder.emit_traced(
                i,
                trace,
                EventKind::OpAttempt {
                    op_id: i,
                    started_nanos: i,
                    duration_nanos: 5,
                    outcome: AttemptOutcome::Success,
                },
            );
        }
        started.elapsed().as_nanos() as f64 / probe_ops as f64
    };
    let stamped_ns = stamp(Some(TraceContext::root(7, 1)));
    let unstamped_ns = stamp(None);
    let stamp_delta_ns = (stamped_ns - unstamped_ns).max(0.0);

    let tracing_ns_per_op = mint_ns + stamp_delta_ns * events_per_op;
    let overhead_pct = tracing_ns_per_op / macro_ns_per_op.max(1) as f64 * 100.0;
    (macro_ns_per_op, tracing_ns_per_op.ceil() as u64, overhead_pct)
}

fn main() -> std::process::ExitCode {
    let quick = quick_mode();
    let refs = if quick { 100 } else { 1_000 };
    let batch = if quick { 300 } else { 1_000 };
    let rounds = if quick { 5 } else { 9 };
    let chrome_path =
        std::env::args().nth(1).unwrap_or_else(|| "ext_trace_chrome.json".to_string());

    let mut report = morena_bench::BenchReport::new("ext_trace");
    report.config("refs", refs);
    report.config("batch", batch);
    report.config("rounds", rounds);

    let (connected, phones, spans, hops) = three_hop_chain(&chrome_path);
    println!();
    let (traces, spans_per_trace) = fan_out(refs);
    println!(
        "EXT-TRACE: fan-out minted {traces} traces over {refs} refs, \
         {spans_per_trace:.2} spans/trace"
    );
    let (macro_ns_per_op, tracing_ns_per_op, overhead_pct) = enabled_overhead(batch, rounds);
    println!(
        "EXT-TRACE: enabled overhead {overhead_pct:.3}% \
         (tracing {tracing_ns_per_op}ns of {macro_ns_per_op}ns per traced write)"
    );

    report.metric("chain_connected", if connected { 1.0 } else { 0.0 });
    report.metric("chain_phones", phones as f64);
    report.metric("chain_spans", spans as f64);
    report.metric("chain_hops", hops as f64);
    report.metric("fanout_traces", traces as f64);
    report.metric("spans_per_trace", spans_per_trace);
    report.metric("trace_overhead_pct", overhead_pct);
    let failed = !connected || phones < 3 || spans < 4 || traces != refs;
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_trace.json");

    if failed {
        eprintln!(
            "ext_trace: FAIL: connected={connected} phones={phones} spans={spans} \
             traces={traces}/{refs} — the relay must produce one connected \
             cross-device trace and every fan-out write must mint exactly one"
        );
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
