//! **EXT-FAULTS** — the recovery envelope of the middleware under the
//! seeded fault-injection layer: for each fault class, sweep the
//! per-exchange injection rate and record how operation success, hidden
//! retry work, and completion latency degrade.
//!
//! Workload per trial: one far reference performs an alternating
//! write/read sequence synchronously while the world's [`FaultPlan`]
//! injects exactly one fault class at the swept rate. Because the plan
//! is seeded, every cell is reproducible.
//!
//! Expected shape: the recoverable classes (RF drop, torn write, stuck
//! tag, latency spike) hold success at 100% while the attempts column
//! grows with the rate — the cost surfaces as retries and latency, not
//! failures. Corruption is the exception: a garbled frame can fail an
//! operation permanently, so its success column sags where the others
//! do not.

use std::sync::Arc;
use std::time::{Duration, Instant};

use morena_bench::{cell, median, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::faults::{FaultKind, FaultPlan, FaultRates};
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;

#[derive(Debug, Default, Clone)]
struct Outcome {
    ops_ok: usize,
    ops_total: usize,
    attempts: u64,
    injected: u64,
    op_millis: Vec<f64>,
}

/// One trial: `ops` alternating sync writes/reads against a tag whose
/// world injects `kind` at `rate` per exchange.
fn trial(kind: FaultKind, rate: f64, ops: usize, seed: u64) -> Outcome {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 1);
    world.install_fault_plan(
        FaultPlan::new(seed, FaultRates::only(kind, rate))
            .with_delays(Duration::from_millis(2), Duration::from_millis(2)),
    );
    let phone = world.add_phone("bench");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    world.tap_tag(uid, phone);
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(Duration::from_secs(20))
            .with_backoff(Backoff::constant(Duration::from_millis(1))),
    );

    let mut outcome = Outcome { ops_total: ops, ..Outcome::default() };
    for i in 0..ops {
        let started = Instant::now();
        let ok = if i % 2 == 0 {
            reference.write_sync(format!("payload-{i:02}"), Duration::from_secs(20)).is_ok()
        } else {
            reference.read_sync(Duration::from_secs(20)).is_ok()
        };
        outcome.op_millis.push(started.elapsed().as_secs_f64() * 1e3);
        if ok {
            outcome.ops_ok += 1;
        }
    }
    outcome.attempts = reference.stats().snapshot().attempts;
    outcome.injected = world.fault_stats().total();
    reference.close();
    outcome
}

fn run_row(kind: FaultKind, rate: f64, ops: usize, trials: usize) -> (f64, Vec<String>) {
    let base = (rate * 1000.0) as u64 + kind as u64 * 1_000_000;
    let outcomes: Vec<Outcome> =
        (0..trials).map(|t| trial(kind, rate, ops, base + t as u64)).collect();
    let total_ops: usize = outcomes.iter().map(|o| o.ops_total).sum();
    let ok_ops: usize = outcomes.iter().map(|o| o.ops_ok).sum();
    let attempts: u64 = outcomes.iter().map(|o| o.attempts).sum();
    let injected: u64 = outcomes.iter().map(|o| o.injected).sum();
    let mut millis: Vec<f64> = outcomes.iter().flat_map(|o| o.op_millis.iter().copied()).collect();
    let ok_pct = 100.0 * ok_ops as f64 / total_ops as f64;
    let row = vec![
        cell(kind.label()),
        cell(format!("{rate:.2}")),
        cell(format!("{ok_pct:.1}%")),
        cell(format!("{:.2}", attempts as f64 / total_ops as f64)),
        cell(injected),
        cell(format!("{:.2}ms", median(&mut millis))),
    ];
    (ok_pct, row)
}

fn main() -> std::process::ExitCode {
    let quick = quick_mode();
    let trials = if quick { 2 } else { 6 };
    let ops = if quick { 8 } else { 16 };
    let header = ["fault", "rate", "op ok", "tries/op", "injected", "op median"];

    let mut report = morena_bench::BenchReport::new("ext_faults");
    report.config("trials", trials);
    report.config("ops", ops);
    let mut failed = false;
    for kind in FaultKind::ALL {
        let mut rows = Vec::new();
        let mut worst = 100.0f64;
        for rate in [0.05, 0.10, 0.20, 0.35, 0.50] {
            let (ok_pct, row) = run_row(kind, rate, ops, trials);
            worst = worst.min(ok_pct);
            rows.push(row);
        }
        report.metric(&format!("worst_success_pct@{}", kind.label()), worst);
        // Every class except corruption is recoverable by design: retry
        // until the op lands. Anything below full success there means
        // the recovery path regressed.
        if kind != FaultKind::Corruption && worst < 100.0 {
            eprintln!(
                "ext_faults: FAIL: {} dropped to {worst:.1}% success — \
                 a recoverable fault class is no longer recovered",
                kind.label()
            );
            failed = true;
        }
        print_table(&format!("EXT-FAULTS: {} injection rate sweep", kind.label()), &header, &rows);
    }
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_faults.json");
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
