//! **EXT-SCHED** — thread-per-loop vs the sharded worker pool at
//! swarm scale.
//!
//! Workload: one headless context, N far references to N tags all in
//! range over an instant link, each reference queueing a small write
//! backlog. The run measures wall-clock time until every operation
//! resolves, derives throughput, takes a `/proc/self/task` census of
//! middleware (`morena-*`) threads while the swarm is live, and — for
//! the sharded policy — reads back the `scheduler.*` metrics.
//!
//! A second phase drives the **cached-read hot loop** — one null-executor
//! event loop per policy, `submit→attempt→complete` with the futures
//! API and nothing else — and holds its steady state to **zero
//! allocations per op** (asserted in-process whenever the
//! `alloc-profile` allocator is compiled in, and gated in CI through
//! `benches/baseline.json`).
//!
//! Flags:
//!
//! * `--sizes 100,1000` — comma-separated swarm sizes (default
//!   `100,1000,10000`; `MORENA_QUICK=1` drops the largest size).
//! * `--json PATH` — additionally write one JSON object per run to
//!   `PATH` (a JSON array), for CI artifact upload.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use morena_bench::{cell, print_table, quick_mode, BenchReport};
use morena_core::bench_hooks::HotLoop;
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::sched::ExecutionPolicy;
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use morena_obs::profile::{self, AllocScope};

const OPS_PER_REF: usize = 2;

struct RunResult {
    size: usize,
    policy: &'static str,
    workers: usize,
    ops: usize,
    elapsed: Duration,
    threads: usize,
    allocs: u64,
    polls: u64,
    parks: u64,
    wakeups: u64,
    timer_fires: u64,
    poll_p50_nanos: u64,
}

impl RunResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / (self.ops as f64).max(1.0)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"size\":{},\"policy\":\"{}\",\"workers\":{},\"ops\":{},\
             \"elapsed_ms\":{:.3},\"ops_per_sec\":{:.1},\"allocs_per_op\":{:.2},\
             \"morena_threads\":{},\
             \"scheduler\":{{\"polls\":{},\"parks\":{},\"wakeups\":{},\
             \"timer_fires\":{},\"poll_p50_nanos\":{}}}}}",
            self.size,
            self.policy,
            self.workers,
            self.ops,
            self.elapsed.as_secs_f64() * 1e3,
            self.ops_per_sec(),
            self.allocs_per_op(),
            self.threads,
            self.polls,
            self.parks,
            self.wakeups,
            self.timer_fires,
            self.poll_p50_nanos,
        )
    }
}

/// Live `morena-*` threads in this process, via the kernel's per-task
/// `comm` (empty on non-Linux hosts — the census column reads 0 there).
fn morena_thread_count() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .flatten()
        .filter_map(|task| std::fs::read_to_string(task.path().join("comm")).ok())
        .filter(|comm| comm.trim().starts_with("morena"))
        .count()
}

fn run(size: usize, policy: ExecutionPolicy, seed: u64) -> RunResult {
    let (label, workers) = match policy {
        ExecutionPolicy::ThreadPerLoop => ("thread-per-loop", 0),
        ExecutionPolicy::Sharded { workers } => ("sharded", workers),
        _ => ("other", 0),
    };
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), seed);
    let phone = world.add_phone("bench");
    let ctx = MorenaContext::headless_with(&world, phone, policy);

    let references: Vec<_> = (0..size)
        .map(|i| {
            let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(i as u32))));
            world.tap_tag(uid, phone);
            TagReference::with_policy(
                &ctx,
                uid,
                TagTech::Type2,
                Arc::new(StringConverter::plain_text()),
                Policy::new()
                    .with_timeout(Duration::from_secs(300))
                    .with_backoff(Backoff::constant(Duration::from_micros(100))),
            )
        })
        .collect();

    // Window start: the scope and the metrics delta cover exactly the
    // submit→attempt→complete path, not world or reference setup. Ops
    // run on pool workers, so the scope must be the global one.
    let before = world.obs().metrics().snapshot();
    let scope = AllocScope::global();
    let (done_tx, done_rx) = unbounded();
    let started = Instant::now();
    for (i, reference) in references.iter().enumerate() {
        for op in 0..OPS_PER_REF {
            let done_tx = done_tx.clone();
            reference.write(
                format!("r{i}-op{op}"),
                move |_| {
                    let _ = done_tx.send(());
                },
                |_, f| panic!("bench write failed: {f}"),
            );
        }
    }

    // Census while every loop is live and the backlog is draining.
    let threads = morena_thread_count();

    let ops = size * OPS_PER_REF;
    for _ in 0..ops {
        done_rx.recv_timeout(Duration::from_secs(300)).expect("op resolves");
    }
    let elapsed = started.elapsed();
    let allocs = scope.stats().allocs;
    let window = world.obs().metrics().snapshot().delta(&before);
    for reference in references {
        reference.close();
    }

    RunResult {
        size,
        policy: label,
        workers,
        ops,
        elapsed,
        threads,
        allocs,
        polls: window.counter("scheduler.polls"),
        parks: window.counter("scheduler.parks"),
        wakeups: window.counter("scheduler.wakeups"),
        timer_fires: window.counter("scheduler.timer_fires"),
        poll_p50_nanos: window.histogram("scheduler.poll_ns").and_then(|h| h.p50()).unwrap_or(0),
    }
}

struct CachedReadResult {
    policy: &'static str,
    ops: usize,
    elapsed: Duration,
    allocs: u64,
}

impl CachedReadResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / (self.ops as f64).max(1.0)
    }
}

/// The raw submit→attempt→complete round over a null executor: the shape
/// of a cached read, with the simulated world out of the measurement.
/// After a warm-up that fills the completion-core freelist (and every
/// queue's high-water capacity), the steady state must not allocate.
fn run_cached_read(policy: ExecutionPolicy) -> CachedReadResult {
    let label = match policy {
        ExecutionPolicy::ThreadPerLoop => "thread-per-loop",
        ExecutionPolicy::Sharded { .. } => "sharded",
        _ => "other",
    };
    let hot = HotLoop::new(policy);
    for _ in 0..1_000 {
        hot.read_once();
    }
    let ops = if quick_mode() { 20_000 } else { 200_000 };
    let scope = AllocScope::global();
    let started = Instant::now();
    for _ in 0..ops {
        hot.read_once();
    }
    let elapsed = started.elapsed();
    let allocs = scope.stats().allocs;
    if profile::ENABLED {
        assert_eq!(
            allocs, 0,
            "cached-read steady state allocated ({allocs} allocations over {ops} ops, {label})"
        );
    }
    CachedReadResult { policy: label, ops, elapsed, allocs }
}

fn parse_args() -> (Vec<usize>, Option<String>) {
    let mut sizes = if quick_mode() { vec![100, 1000] } else { vec![100, 1000, 10_000] };
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sizes" => {
                let list = args.next().expect("--sizes needs a comma-separated list");
                sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes entries must be integers"))
                    .collect();
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            other => panic!("unknown flag {other:?} (expected --sizes or --json)"),
        }
    }
    (sizes, json)
}

fn main() {
    let (sizes, json_path) = parse_args();
    let mut report = BenchReport::new("ext_sched");
    report.config("ops_per_ref", OPS_PER_REF);
    let sharded = ExecutionPolicy::default();

    let mut results = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        for (j, policy) in [ExecutionPolicy::ThreadPerLoop, sharded].into_iter().enumerate() {
            results.push(run(size, policy, 1000 + (i * 2 + j) as u64));
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                cell(r.size),
                cell(r.policy),
                cell(r.workers),
                cell(r.ops),
                cell(format!("{:.1}ms", r.elapsed.as_secs_f64() * 1e3)),
                cell(format!("{:.0}", r.ops_per_sec())),
                cell(format!("{:.1}", r.allocs_per_op())),
                cell(r.threads),
                cell(r.polls),
                cell(r.parks),
                cell(r.wakeups),
            ]
        })
        .collect();
    print_table(
        "EXT-SCHED: event-loop execution policies at swarm scale",
        &[
            "refs",
            "policy",
            "workers",
            "ops",
            "elapsed",
            "ops/s",
            "allocs/op",
            "threads",
            "polls",
            "parks",
            "wakeups",
        ],
        &rows,
    );
    println!(
        "\nthreads = live morena-* threads mid-run: one per reference under\n\
         thread-per-loop, bounded by the worker pool (plus the event router)\n\
         under sharded — the column that stays flat as refs grow."
    );
    for r in &results {
        println!("sched-json: {}", r.to_json());
    }

    if let Some(path) = json_path {
        let body: Vec<String> = results.iter().map(RunResult::to_json).collect();
        std::fs::write(&path, format!("[{}]\n", body.join(","))).expect("write --json output file");
        println!("\nwrote {} runs -> {path}", results.len());
    }

    for r in &results {
        report.metric(&format!("ops_per_sec@{}_{}", r.size, r.policy), r.ops_per_sec());
        report.metric(&format!("allocs_per_op@{}_{}", r.size, r.policy), r.allocs_per_op());
    }

    // Phase 2: the futures hot loop, no world attached.
    let cached: Vec<CachedReadResult> =
        [ExecutionPolicy::ThreadPerLoop, sharded].into_iter().map(run_cached_read).collect();
    let rows: Vec<Vec<String>> = cached
        .iter()
        .map(|r| {
            vec![
                cell(r.policy),
                cell(r.ops),
                cell(format!("{:.1}ms", r.elapsed.as_secs_f64() * 1e3)),
                cell(format!("{:.0}", r.ops_per_sec())),
                cell(format!("{:.3}", r.allocs_per_op())),
            ]
        })
        .collect();
    print_table(
        "EXT-SCHED: cached-read hot loop (null executor, futures API)",
        &["policy", "ops", "elapsed", "ops/s", "allocs/op"],
        &rows,
    );
    println!(
        "\nallocs/op above covers the whole submit->attempt->complete round\n\
         after warm-up; with the alloc-profile allocator compiled in it is\n\
         asserted to be exactly 0 ({}).",
        if profile::ENABLED { "enabled in this build" } else { "disabled in this build" }
    );
    for r in &cached {
        report.metric(&format!("ops_per_sec@cached_read_{}", r.policy), r.ops_per_sec());
        report.metric(&format!("allocs_per_op@cached_read_{}", r.policy), r.allocs_per_op());
    }
    report.write().expect("write BENCH_ext_sched.json");
}
