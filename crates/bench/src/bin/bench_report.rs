//! Merges every `BENCH_*.json` in the working directory (or the
//! directories given as arguments) into one summary table, and — with
//! `--check <baseline.json>` — gates the merged metrics against the
//! committed baseline, exiting non-zero on any violation.
//!
//! ```text
//! cargo run -p morena-bench --bin bench_report
//! cargo run -p morena-bench --bin bench_report -- --check benches/baseline.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use morena_bench::{cell, print_table, Baseline, BenchReport};

fn collect_reports(dirs: &[PathBuf]) -> Result<Vec<BenchReport>, String> {
    let mut paths = Vec::new();
    for dir in dirs {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                paths.push(entry.path());
            }
        }
    }
    paths.sort();
    paths.iter().map(|p| BenchReport::load(p)).collect()
}

fn main() -> ExitCode {
    let mut check: Option<PathBuf> = None;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => match argv.next() {
                Some(path) => check = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check needs a baseline path");
                    return ExitCode::FAILURE;
                }
            },
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.is_empty() {
        dirs.push(PathBuf::from("."));
    }

    let reports = match collect_reports(&dirs) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("bench_report: {err}");
            return ExitCode::FAILURE;
        }
    };
    if reports.is_empty() {
        eprintln!("bench_report: no BENCH_*.json found in {dirs:?}");
        return ExitCode::FAILURE;
    }

    let mut rows = Vec::new();
    for report in &reports {
        let mode = if report.quick { "quick" } else { "full" };
        for (key, value) in &report.metrics {
            rows.push(vec![cell(&report.name), cell(mode), cell(key), cell(format!("{value:.3}"))]);
        }
    }
    print_table("bench report", &["BENCH", "MODE", "METRIC", "VALUE"], &rows);
    let shas: Vec<&str> = reports.iter().map(|r| r.git_sha.as_str()).collect();
    println!("\n{} report(s), git {}", reports.len(), shas.join(", "));

    let Some(baseline_path) = check else {
        return ExitCode::SUCCESS;
    };
    let baseline = match Baseline::load(&baseline_path) {
        Ok(baseline) => baseline,
        Err(err) => {
            eprintln!("bench_report: {err}");
            return ExitCode::FAILURE;
        }
    };
    // A quick run (MORENA_QUICK=1, or every collected report quick)
    // only enforces quick_gate gates — full-only metrics are skipped,
    // not reported missing.
    let quick_run = morena_bench::quick_mode() || reports.iter().all(|r| r.quick);
    let violations = baseline.check(&reports, quick_run);
    if violations.is_empty() {
        println!(
            "baseline check: PASS ({} gate(s) from {}{})",
            baseline.gates.len(),
            baseline_path.display(),
            if quick_run { ", quick gates only" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbaseline check: FAIL");
        for violation in &violations {
            eprintln!("  regression: {violation}");
        }
        ExitCode::FAILURE
    }
}
