//! **FIG2-L / FIG2-R** — regenerates both panels of Figure 2 of the
//! MORENA paper: lines of code per RFID subproblem for the handcrafted
//! and MORENA implementations of the WiFi-sharing application, and the
//! percentage each subproblem contributes.
//!
//! The counts come from machine-readable `@loc` annotations in the two
//! application sources (`morena-apps`), parsed by `morena_apps::loc` —
//! the code measured is exactly the code the test suite runs.
//!
//! Paper reference: handcrafted total 197, MORENA total 36 ("a reduction
//! by a factor 5"), MORENA concurrency = 0, MORENA dominated by event
//! handling. Absolute numbers differ (different language, different
//! platform analog); the shape is the claim under reproduction.

use std::process::ExitCode;

use morena_apps::loc::{handcrafted_wifi_report, morena_wifi_report, Subproblem};
use morena_bench::{cell, print_table, BenchReport};

fn main() -> ExitCode {
    let handcrafted = handcrafted_wifi_report();
    let morena = morena_wifi_report();
    let mut report = BenchReport::new("fig2_loc");

    let mut rows = Vec::new();
    for subproblem in Subproblem::ALL {
        rows.push(vec![
            cell(subproblem),
            cell(handcrafted.count(subproblem)),
            cell(morena.count(subproblem)),
        ]);
    }
    rows.push(vec![cell("TOTAL"), cell(handcrafted.total()), cell(morena.total())]);
    print_table(
        "Figure 2 (left): RFID-related lines of code per subproblem",
        &["subproblem", "handcrafted", "MORENA"],
        &rows,
    );
    println!(
        "reduction factor: {:.1}x   (paper: 197 vs 36, factor ~5.5x)",
        handcrafted.total() as f64 / morena.total() as f64
    );

    let mut rows = Vec::new();
    for subproblem in Subproblem::ALL {
        rows.push(vec![
            cell(subproblem),
            cell(format!("{:.1}%", handcrafted.percentage(subproblem))),
            cell(format!("{:.1}%", morena.percentage(subproblem))),
        ]);
    }
    print_table(
        "Figure 2 (right): share of each subproblem in the total",
        &["subproblem", "handcrafted", "MORENA"],
        &rows,
    );

    report.metric("handcrafted_total_loc", handcrafted.total() as f64);
    report.metric("morena_total_loc", morena.total() as f64);
    report.metric("reduction_factor", handcrafted.total() as f64 / morena.total() as f64);
    report.metric("morena_concurrency_loc", morena.count(Subproblem::Concurrency) as f64);

    // The paper's qualitative observations, checked mechanically.
    let mut failed = false;
    if morena.count(Subproblem::Concurrency) != 0 {
        eprintln!("fig2_loc: FAIL: MORENA must need no concurrency management");
        failed = true;
    }
    let dominant = Subproblem::ALL
        .into_iter()
        .max_by(|a, b| morena.percentage(*a).total_cmp(&morena.percentage(*b)))
        .expect("nonempty");
    if dominant != Subproblem::EventHandling {
        eprintln!("fig2_loc: FAIL: MORENA's share must be dominated by event handling");
        failed = true;
    }
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_fig2_loc.json");
    if failed {
        return ExitCode::FAILURE;
    }
    println!("\nshape checks passed: concurrency=0 for MORENA; event handling dominates MORENA.");
    ExitCode::SUCCESS
}
