//! **EXT-BATCH** — quantifies §4's second qualitative claim: *"in the
//! MORENA version, multiple write operations can be batched until a tag
//! comes in range, while in the handcrafted solution the user can only
//! attempt to write as soon as a tag is in range."*
//!
//! Workload: N updates accumulate while the tag is elsewhere; then the
//! user taps the tag and holds it briefly.
//!
//! * **MORENA** — all N writes are queued on the tag reference; one tap
//!   flushes the whole batch in FIFO order.
//! * **handcrafted** — the app cannot queue against an absent tag: each
//!   update needs the user to produce the tag (one tap per update).
//!
//! Expected shape: taps(MORENA) = 1 regardless of N; taps(handcrafted)
//! = N; the final tag content is the last update in both cases.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena_baseline::ndef_tech::Ndef;
use morena_bench::{cell, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::eventloop::LoopConfig;
use morena_core::tagref::TagReference;
use morena_ndef::{NdefMessage, NdefRecord};
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;

fn link() -> LinkModel {
    LinkModel {
        setup_latency: Duration::from_millis(1),
        per_byte_latency: Duration::from_micros(10),
        base_failure_prob: 0.05,
        edge_failure_prob: 0.05,
        ..LinkModel::realistic()
    }
}

/// MORENA: queue all N updates while the tag is away; a single tap (held
/// long enough for N short writes) flushes everything. Returns (taps,
/// final content matches last update).
fn morena_trial(n: usize, seed: u64) -> (usize, bool, u64) {
    let world = World::with_link(Arc::new(SystemClock::new()), link(), seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_config(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        LoopConfig {
            default_timeout: Duration::from_secs(30),
            retry_backoff: Duration::from_millis(2),
        },
    );
    let (tx, rx) = unbounded();
    for i in 0..n {
        let tx = tx.clone();
        reference.write(
            format!("update-{i}"),
            move |_| {
                let _ = tx.send(i);
            },
            |_, f| panic!("queued write failed: {f}"),
        );
    }
    assert_eq!(reference.queue_len(), n, "all writes must queue while the tag is away");

    // One tap, held until the batch drains.
    world.tap_tag(uid, phone);
    let mut done = 0;
    while done < n {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(_) => done += 1,
            Err(_) => break,
        }
    }
    world.remove_tag_from_field(uid);
    let exchanges = world.radio_stats().exchanges;
    let final_ok = read_final(&world, phone, uid) == Some(format!("update-{}", n - 1));
    reference.close();
    (1, done == n && final_ok, exchanges)
}

/// Handcrafted: updates cannot queue against an absent tag, so the user
/// must tap once per update; each tap writes one update with bounded
/// retries. Returns (taps, final content matches last update).
fn handcrafted_trial(n: usize, seed: u64) -> (usize, bool, u64) {
    let world = World::with_link(Arc::new(SystemClock::new()), link(), seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let nfc = morena_nfc_sim::controller::NfcHandle::new(world.clone(), phone);

    let mut taps = 0;
    for i in 0..n {
        let message = NdefMessage::single(
            NdefRecord::mime("text/plain", format!("update-{i}").into_bytes()).expect("record"),
        );
        // The user produces the tag for this one update.
        taps += 1;
        world.tap_tag(uid, phone);
        let mut ndef = Ndef::get(nfc.clone(), uid);
        let mut ok = false;
        for _ in 0..16 {
            if ndef.connect().and_then(|()| ndef.write_ndef_message(&message)).is_ok() {
                ok = true;
                break;
            }
        }
        world.remove_tag_from_field(uid);
        if !ok {
            return (taps, false, world.radio_stats().exchanges);
        }
    }
    let exchanges = world.radio_stats().exchanges;
    let final_ok = read_final(&world, phone, uid) == Some(format!("update-{}", n - 1));
    (taps, final_ok, exchanges)
}

fn read_final(world: &World, phone: morena_nfc_sim::world::PhoneId, uid: TagUid) -> Option<String> {
    let nfc = morena_nfc_sim::controller::NfcHandle::new(world.clone(), phone);
    world.tap_tag(uid, phone);
    let mut content = None;
    for _ in 0..16 {
        if let Ok(bytes) = nfc.ndef_read(uid) {
            if let Ok(message) = NdefMessage::parse(&bytes) {
                content = String::from_utf8(message.first().payload().to_vec()).ok();
                break;
            }
        }
    }
    world.remove_tag_from_field(uid);
    content
}

fn main() -> std::process::ExitCode {
    let trials = if quick_mode() { 2 } else { 5 };
    let sizes = [1usize, 2, 4, 8, 16];
    let mut report = morena_bench::BenchReport::new("ext_batch");
    report.config("trials", trials);
    let mut failed = false;
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut morena_taps = 0usize;
        let mut morena_ok = 0usize;
        let mut morena_exchanges = 0u64;
        let mut hand_taps = 0usize;
        let mut hand_ok = 0usize;
        let mut hand_exchanges = 0u64;
        for t in 0..trials {
            let (taps, ok, exchanges) = morena_trial(n, t as u64);
            morena_taps += taps;
            morena_ok += ok as usize;
            morena_exchanges += exchanges;
            let (taps, ok, exchanges) = handcrafted_trial(n, 500 + t as u64);
            hand_taps += taps;
            hand_ok += ok as usize;
            hand_exchanges += exchanges;
        }
        let morena_mean_taps = morena_taps as f64 / trials as f64;
        report.metric(&format!("morena_taps@{n}"), morena_mean_taps);
        report.metric(&format!("morena_ok@{n}"), morena_ok as f64);
        report.metric(&format!("handcrafted_taps@{n}"), hand_taps as f64 / trials as f64);
        // The claim under test: one tap flushes any batch, and every
        // MORENA trial delivers.
        if morena_ok != trials || morena_mean_taps > 1.0 {
            eprintln!(
                "ext_batch: FAIL: N={n}: {morena_ok}/{trials} MORENA trials ok, \
                 {morena_mean_taps:.1} taps (expected all ok with exactly 1 tap)"
            );
            failed = true;
        }
        rows.push(vec![
            cell(n),
            cell(format!("{morena_mean_taps:.1}")),
            cell(format!("{}/{}", morena_ok, trials)),
            cell(format!("{:.0}", morena_exchanges as f64 / trials as f64)),
            cell(format!("{:.1}", hand_taps as f64 / trials as f64)),
            cell(format!("{}/{}", hand_ok, trials)),
            cell(format!("{:.0}", hand_exchanges as f64 / trials as f64)),
        ]);
    }
    print_table(
        "EXT-BATCH: user taps needed to deliver N queued updates",
        &[
            "N updates",
            "MORENA taps",
            "MORENA ok",
            "M radio ops",
            "handcrafted taps",
            "handcrafted ok",
            "H radio ops",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: MORENA always needs exactly 1 tap (the queue flushes in\n\
         FIFO order when the tag appears) while the handcrafted app needs N taps —\n\
         yet the physical radio work (exchanges) is comparable: the win is user\n\
         effort, not air time."
    );
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_batch.json");
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
