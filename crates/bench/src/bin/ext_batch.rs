//! **EXT-BATCH** — quantifies §4's second qualitative claim: *"in the
//! MORENA version, multiple write operations can be batched until a tag
//! comes in range, while in the handcrafted solution the user can only
//! attempt to write as soon as a tag is in range."*
//!
//! Workload: N updates accumulate while the tag is elsewhere; then the
//! user taps the tag and holds it briefly.
//!
//! * **MORENA** — all N writes are queued on the tag reference; one tap
//!   flushes the whole batch in FIFO order. Measured twice: with the
//!   default per-op flush and with [`Policy::with_coalesce_writes`],
//!   where the queued run collapses into a single exchange carrying the
//!   last write's bytes.
//! * **handcrafted** — the app cannot queue against an absent tag: each
//!   update needs the user to produce the tag (one tap per update).
//!
//! Noise comes from the seeded fault-injection layer (a [`FaultPlan`]
//! over an instant link, the same shape `ext_faults` uses) instead of
//! link-level randomness, so every trial's fault schedule — and with it
//! the exchange count — is a pure function of the seed.
//!
//! Expected shape: taps(MORENA) = 1 regardless of N; taps(handcrafted)
//! = N; coalescing completes the same batch with at least 2× fewer
//! radio exchanges at N=16 while the final tag content stays
//! byte-identical.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use morena_baseline::ndef_tech::Ndef;
use morena_bench::{cell, print_table, quick_mode};
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_ndef::{NdefMessage, NdefRecord};
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::faults::{FaultKind, FaultPlan, FaultRates};
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;

/// Per-exchange RF-drop rate: roughly the 5% link noise the experiment
/// historically used, but drawn from the seeded plan so reruns see the
/// identical schedule.
const DROP_RATE: f64 = 0.05;

/// A deterministic noisy world: instant link, seeded RF drops.
fn noisy_world(seed: u64) -> World {
    let world = World::with_link(Arc::new(SystemClock::new()), LinkModel::instant(), 1);
    world.install_fault_plan(
        FaultPlan::new(seed, FaultRates::only(FaultKind::RfDrop, DROP_RATE))
            .with_delays(Duration::from_millis(1), Duration::from_millis(1)),
    );
    world
}

struct MorenaOutcome {
    taps: usize,
    delivered: bool,
    exchanges: u64,
    saved_exchanges: u64,
    flush_seconds: f64,
    final_content: Option<String>,
}

/// MORENA: queue all N updates while the tag is away; a single tap (held
/// long enough for the batch) flushes everything.
fn morena_trial(n: usize, seed: u64, coalesce: bool) -> MorenaOutcome {
    let world = noisy_world(seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let ctx = MorenaContext::headless(&world, phone);
    let reference = TagReference::with_policy(
        &ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
        Policy::new()
            .with_timeout(Duration::from_secs(30))
            .with_backoff(Backoff::constant(Duration::from_millis(2)))
            .with_coalesce_writes(coalesce),
    );
    let (tx, rx) = unbounded();
    for i in 0..n {
        let tx = tx.clone();
        reference.write(
            format!("update-{i}"),
            move |_| {
                let _ = tx.send(i);
            },
            |_, f| panic!("queued write failed: {f}"),
        );
    }
    assert_eq!(reference.queue_len(), n, "all writes must queue while the tag is away");

    // One tap, held until the batch drains.
    let flush_started = Instant::now();
    world.tap_tag(uid, phone);
    let mut done = 0;
    while done < n {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(_) => done += 1,
            Err(_) => break,
        }
    }
    let flush_seconds = flush_started.elapsed().as_secs_f64();
    world.remove_tag_from_field(uid);
    let exchanges = world.radio_stats().exchanges;
    let saved_exchanges = world.obs().metrics().counter("coalesce.saved_exchanges").get();
    // Ground-truth the final content over a clean link: drop the plan so
    // the verification read cannot itself be faulted.
    world.clear_fault_plan();
    let final_content = read_final(&world, phone, uid);
    reference.close();
    MorenaOutcome {
        taps: 1,
        delivered: done == n,
        exchanges,
        saved_exchanges,
        flush_seconds,
        final_content,
    }
}

/// Handcrafted: updates cannot queue against an absent tag, so the user
/// must tap once per update; each tap writes one update with bounded
/// retries. Returns (taps, delivered, exchanges).
fn handcrafted_trial(n: usize, seed: u64) -> (usize, bool, u64) {
    let world = noisy_world(seed);
    let phone = world.add_phone("user");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let nfc = morena_nfc_sim::controller::NfcHandle::new(world.clone(), phone);

    let mut taps = 0;
    for i in 0..n {
        let message = NdefMessage::single(
            NdefRecord::mime("text/plain", format!("update-{i}").into_bytes()).expect("record"),
        );
        // The user produces the tag for this one update.
        taps += 1;
        world.tap_tag(uid, phone);
        let mut ndef = Ndef::get(nfc.clone(), uid);
        let mut ok = false;
        for _ in 0..16 {
            if ndef.connect().and_then(|()| ndef.write_ndef_message(&message)).is_ok() {
                ok = true;
                break;
            }
        }
        world.remove_tag_from_field(uid);
        if !ok {
            return (taps, false, world.radio_stats().exchanges);
        }
    }
    let exchanges = world.radio_stats().exchanges;
    world.clear_fault_plan();
    let final_ok = read_final(&world, phone, uid) == Some(format!("update-{}", n - 1));
    (taps, final_ok, exchanges)
}

fn read_final(world: &World, phone: morena_nfc_sim::world::PhoneId, uid: TagUid) -> Option<String> {
    let nfc = morena_nfc_sim::controller::NfcHandle::new(world.clone(), phone);
    world.tap_tag(uid, phone);
    let mut content = None;
    for _ in 0..16 {
        if let Ok(bytes) = nfc.ndef_read(uid) {
            if let Ok(message) = NdefMessage::parse(&bytes) {
                content = String::from_utf8(message.first().payload().to_vec()).ok();
                break;
            }
        }
    }
    world.remove_tag_from_field(uid);
    content
}

fn main() -> std::process::ExitCode {
    let trials = if quick_mode() { 2 } else { 5 };
    let sizes = [1usize, 2, 4, 8, 16];
    let mut report = morena_bench::BenchReport::new("ext_batch");
    report.config("trials", trials);
    let mut failed = false;
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut plain_taps = 0usize;
        let mut plain_ok = 0usize;
        let mut plain_exchanges = 0u64;
        let mut coalesced_ok = 0usize;
        let mut coalesced_exchanges = 0u64;
        let mut saved = 0u64;
        let mut flush_seconds = 0.0f64;
        let mut content_matches = 0usize;
        let mut hand_taps = 0usize;
        let mut hand_ok = 0usize;
        let mut hand_exchanges = 0u64;
        for t in 0..trials {
            let plain = morena_trial(n, t as u64, false);
            plain_taps += plain.taps;
            plain_ok += plain.delivered as usize;
            plain_exchanges += plain.exchanges;
            let coalesced = morena_trial(n, t as u64, true);
            coalesced_ok += coalesced.delivered as usize;
            coalesced_exchanges += coalesced.exchanges;
            saved += coalesced.saved_exchanges;
            flush_seconds += coalesced.flush_seconds;
            // Coalescing is an efficiency knob, not a semantic one: both
            // modes must leave byte-identical content — the last update.
            let wanted = Some(format!("update-{}", n - 1));
            if plain.final_content == wanted && coalesced.final_content == wanted {
                content_matches += 1;
            }
            let (taps, ok, exchanges) = handcrafted_trial(n, 500 + t as u64);
            hand_taps += taps;
            hand_ok += ok as usize;
            hand_exchanges += exchanges;
        }
        let plain_mean_taps = plain_taps as f64 / trials as f64;
        let plain_mean_exchanges = plain_exchanges as f64 / trials as f64;
        let coalesced_mean_exchanges = coalesced_exchanges as f64 / trials as f64;
        let mean_saved = saved as f64 / trials as f64;
        let ops_per_sec = (n * trials) as f64 / flush_seconds.max(1e-9);
        report.metric(&format!("morena_taps@{n}"), plain_mean_taps);
        report.metric(&format!("morena_ok@{n}"), plain_ok as f64);
        report.metric(&format!("exchanges_plain@{n}"), plain_mean_exchanges);
        report.metric(&format!("exchanges_coalesced@{n}"), coalesced_mean_exchanges);
        report.metric(&format!("saved_exchanges@{n}"), mean_saved);
        report.metric(&format!("handcrafted_taps@{n}"), hand_taps as f64 / trials as f64);
        if n == 16 {
            report.metric("coalesced_ops_per_sec@16", ops_per_sec);
        }
        // The paper's claim: one tap flushes any batch, and every MORENA
        // trial delivers — in both flush modes, with identical content.
        if plain_ok != trials || coalesced_ok != trials || plain_mean_taps > 1.0 {
            eprintln!(
                "ext_batch: FAIL: N={n}: plain {plain_ok}/{trials} ok, coalesced \
                 {coalesced_ok}/{trials} ok, {plain_mean_taps:.1} taps (expected all ok, 1 tap)"
            );
            failed = true;
        }
        if content_matches != trials {
            eprintln!(
                "ext_batch: FAIL: N={n}: only {content_matches}/{trials} trials left \
                 byte-identical final content across coalescing modes"
            );
            failed = true;
        }
        // The tentpole's efficiency claim: at N=16 a same-region batch
        // must cost at least 2× fewer radio exchanges when coalesced.
        if n == 16 && coalesced_mean_exchanges * 2.0 > plain_mean_exchanges {
            eprintln!(
                "ext_batch: FAIL: N=16: coalescing saved too little \
                 ({coalesced_mean_exchanges:.0} vs {plain_mean_exchanges:.0} exchanges)"
            );
            failed = true;
        }
        rows.push(vec![
            cell(n),
            cell(format!("{plain_mean_taps:.1}")),
            cell(format!("{}/{}", plain_ok, trials)),
            cell(format!("{plain_mean_exchanges:.0}")),
            cell(format!("{coalesced_mean_exchanges:.0}")),
            cell(format!("{mean_saved:.1}")),
            cell(format!("{:.1}", hand_taps as f64 / trials as f64)),
            cell(format!("{}/{}", hand_ok, trials)),
            cell(format!("{:.0}", hand_exchanges as f64 / trials as f64)),
        ]);
    }
    print_table(
        "EXT-BATCH: user taps and radio exchanges to deliver N queued updates",
        &[
            "N updates",
            "MORENA taps",
            "MORENA ok",
            "xchg plain",
            "xchg coalesced",
            "saved ops",
            "handcrafted taps",
            "handcrafted ok",
            "H xchg",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: MORENA always needs exactly 1 tap (the queue flushes in\n\
         FIFO order when the tag appears) while the handcrafted app needs N taps.\n\
         With `Policy::with_coalesce_writes(true)` the queued same-region run\n\
         collapses into one exchange carrying the last write's bytes, so the\n\
         radio cost stays flat in N while the final content is byte-identical."
    );
    report.metric("failed", if failed { 1.0 } else { 0.0 });
    report.write().expect("write BENCH_ext_batch.json");
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
