//! Machine-readable benchmark reports and the CI regression gate.
//!
//! Every `ext_*` binary finishes by emitting a `BENCH_<name>.json` next
//! to its human-readable tables, so CI can archive a perf trajectory and
//! fail on regressions. The schema is deliberately small:
//!
//! ```json
//! {
//!   "name": "ext_swarm",
//!   "quick": false,
//!   "git_sha": "abc123...",
//!   "wall_secs": 12.5,
//!   "config": { "sizes": "1000,10000,100000" },
//!   "metrics": { "ops_per_sec@1000": 51234.5 }
//! }
//! ```
//!
//! The `bench_report` binary merges every `BENCH_*.json` it finds and,
//! with `--check benches/baseline.json`, compares against committed
//! per-metric gates. JSON is written and parsed by hand here: the
//! harness depends on nothing but the standard library for its report
//! pipeline, so the gate works in minimal build environments too.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Report

/// One benchmark run: identity, configuration, and a flat metric map.
///
/// Construct with [`BenchReport::new`], fill in [`config`](Self::config)
/// and [`metric`](Self::metric), then [`write`](Self::write) to produce
/// `BENCH_<name>.json` in the working directory.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark name (`ext_swarm`, `ext_sched`, ...).
    pub name: String,
    /// Whether the run used `MORENA_QUICK=1` reduced sizes.
    pub quick: bool,
    /// Free-form configuration echo (sizes, policies, seeds).
    pub config: Vec<(String, String)>,
    /// Metric key → value, in insertion order. Keys carry their scale
    /// point where relevant (`ops_per_sec@1000`).
    pub metrics: Vec<(String, f64)>,
    /// Git commit the run was built from (`GITHUB_SHA`, then
    /// `git rev-parse HEAD`, then `"unknown"`).
    pub git_sha: String,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    started: Option<Instant>,
}

impl BenchReport {
    /// Starts a report: stamps the git SHA and the wall-clock timer, and
    /// records whether [`crate::quick_mode`] is on.
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            quick: crate::quick_mode(),
            config: Vec::new(),
            metrics: Vec::new(),
            git_sha: detect_git_sha(),
            wall_secs: 0.0,
            started: Some(Instant::now()),
        }
    }

    /// Records one configuration entry (echoed verbatim into the JSON).
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Records one metric. Non-finite values are clamped to 0 so the
    /// emitted JSON stays valid.
    pub fn metric(&mut self, key: &str, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        match self.metrics.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((key.to_string(), value)),
        }
    }

    /// Looks up a metric by key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Serializes the report. Freezes `wall_secs` from the running timer
    /// the first time it is called on a live report.
    pub fn to_json(&mut self) -> String {
        if let Some(started) = self.started.take() {
            self.wall_secs = started.elapsed().as_secs_f64();
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"git_sha\": {},", json_string(&self.git_sha));
        let _ = writeln!(out, "  \"wall_secs\": {},", json_number(self.wall_secs));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_string(k), json_string(v));
        }
        out.push_str(if self.config.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_string(k), json_number(*v));
        }
        out.push_str(if self.metrics.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `dir` (the working directory for
    /// the `ext_*` binaries) and returns the path.
    pub fn write_to(&mut self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `BENCH_<name>.json` into the current directory and prints
    /// where it went.
    pub fn write(&mut self) -> std::io::Result<PathBuf> {
        let path = self.write_to(Path::new("."))?;
        println!("\nwrote {}", path.display());
        Ok(path)
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let json = Json::parse(text)?;
        let name = json.get("name").and_then(Json::as_str).ok_or("report missing \"name\"")?;
        let mut report = BenchReport {
            name: name.to_string(),
            quick: json.get("quick").and_then(Json::as_bool).unwrap_or(false),
            config: Vec::new(),
            metrics: Vec::new(),
            git_sha: json.get("git_sha").and_then(Json::as_str).unwrap_or("unknown").to_string(),
            wall_secs: json.get("wall_secs").and_then(Json::as_f64).unwrap_or(0.0),
            started: None,
        };
        if let Some(Json::Obj(entries)) = json.get("config") {
            for (k, v) in entries {
                if let Some(s) = v.as_str() {
                    report.config.push((k.clone(), s.to_string()));
                }
            }
        }
        if let Some(Json::Obj(entries)) = json.get("metrics") {
            for (k, v) in entries {
                let value = v.as_f64().ok_or_else(|| format!("metric {k:?} is not a number"))?;
                report.metrics.push((k.clone(), value));
            }
        }
        Ok(report)
    }

    /// Loads and parses one `BENCH_*.json` file.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        BenchReport::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn detect_git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough for the report and baseline schemas.

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // schema; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at offset {start}"))
    }
}

// ---------------------------------------------------------------------------
// Baseline gates

/// One regression gate: the committed reference `value` plus a bound on
/// the current/baseline ratio.
#[derive(Debug, Clone)]
pub struct Gate {
    /// The committed baseline value for this metric.
    pub value: f64,
    /// Fail when `current / value` drops below this (throughput-style
    /// metrics: bigger is better).
    pub min_ratio: Option<f64>,
    /// Fail when `current / value` rises above this (cost-style metrics:
    /// smaller is better).
    pub max_ratio: Option<f64>,
    /// Fail when the current value exceeds this absolute bound. Ratio
    /// gates cannot express "stays at zero" (any ratio against 0 is
    /// meaningless), so zero-budget metrics — allocations per op on the
    /// pooled hot path — gate on `max_value: 0` instead.
    pub max_value: Option<f64>,
    /// Whether the gate is enforced on `MORENA_QUICK=1` runs too. Gates
    /// on full-scale-only metrics set this to `false` so CI's quick pass
    /// skips them instead of failing on the missing key.
    pub quick_gate: bool,
}

/// The committed `benches/baseline.json`: gate per `bench/metric` key.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Gates in document order, keyed `<report name>/<metric key>`.
    pub gates: Vec<(String, Gate)>,
}

impl Baseline {
    /// Parses the baseline document:
    ///
    /// ```json
    /// { "metrics": { "ext_swarm/allocs_per_op@1000":
    ///     { "value": 12.0, "max_ratio": 1.0, "quick_gate": true } } }
    /// ```
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let json = Json::parse(text)?;
        let Some(Json::Obj(entries)) = json.get("metrics") else {
            return Err("baseline missing \"metrics\" object".to_string());
        };
        let mut gates = Vec::new();
        for (key, spec) in entries {
            let value = spec
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("gate {key:?} missing \"value\""))?;
            let gate = Gate {
                value,
                min_ratio: spec.get("min_ratio").and_then(Json::as_f64),
                max_ratio: spec.get("max_ratio").and_then(Json::as_f64),
                max_value: spec.get("max_value").and_then(Json::as_f64),
                quick_gate: spec.get("quick_gate").and_then(Json::as_bool).unwrap_or(false),
            };
            if gate.min_ratio.is_none() && gate.max_ratio.is_none() && gate.max_value.is_none() {
                return Err(format!("gate {key:?} needs min_ratio, max_ratio, or max_value"));
            }
            gates.push((key.clone(), gate));
        }
        Ok(Baseline { gates })
    }

    /// Loads `benches/baseline.json` (or any path with that schema).
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Checks `reports` against every gate; returns human-readable
    /// violations (empty = pass).
    ///
    /// A gate keyed `bench/metric` binds to the report named `bench`.
    /// On a quick run (`quick_run`, i.e. `MORENA_QUICK=1`), full-only
    /// gates (`quick_gate: false`) are skipped up front — before the
    /// report and metric lookups — so a bench that never ran, or a
    /// metric only emitted at full scale, is not misreported as a
    /// missing-metric violation. For gates that do apply, a missing
    /// metric remains a violation: silently dropping a gated metric
    /// must not read as a pass.
    pub fn check(&self, reports: &[BenchReport], quick_run: bool) -> Vec<String> {
        let mut violations = Vec::new();
        for (key, gate) in &self.gates {
            if quick_run && !gate.quick_gate {
                continue;
            }
            let Some((bench, metric)) = key.split_once('/') else {
                violations.push(format!("{key}: gate key is not \"bench/metric\""));
                continue;
            };
            let Some(report) = reports.iter().find(|r| r.name == bench) else {
                violations.push(format!("{key}: no BENCH_{bench}.json report found"));
                continue;
            };
            // Also honor the report's own quick flag: a full-mode check
            // over a directory holding one stale quick report must not
            // hold that report to full-scale gates.
            if report.quick && !gate.quick_gate {
                continue;
            }
            let Some(current) = report.get(metric) else {
                violations.push(format!("{key}: metric missing from report"));
                continue;
            };
            if let Some(max) = gate.max_value {
                if current > max {
                    violations.push(format!("{key}: {current:.3} exceeds absolute bound {max:.3}"));
                }
            }
            if gate.min_ratio.is_none() && gate.max_ratio.is_none() {
                continue;
            }
            if gate.value <= 0.0 {
                violations.push(format!("{key}: baseline value must be positive"));
                continue;
            }
            let ratio = current / gate.value;
            if let Some(min) = gate.min_ratio {
                if ratio < min {
                    violations.push(format!(
                        "{key}: {current:.3} is {:.1}% of baseline {:.3} (min {:.1}%)",
                        ratio * 100.0,
                        gate.value,
                        min * 100.0
                    ));
                }
            }
            if let Some(max) = gate.max_ratio {
                if ratio > max {
                    violations.push(format!(
                        "{key}: {current:.3} is {:.1}% of baseline {:.3} (max {:.1}%)",
                        ratio * 100.0,
                        gate.value,
                        max * 100.0
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(name: &str, quick: bool, metrics: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            quick,
            config: Vec::new(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            git_sha: "test".to_string(),
            wall_secs: 1.0,
            started: None,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("ext_demo");
        report.config("sizes", "100,1000");
        report.metric("ops_per_sec@100", 1234.5);
        report.metric("allocs_per_op@100", 17.0);
        let text = report.to_json();
        let parsed = BenchReport::parse(&text).unwrap();
        assert_eq!(parsed.name, "ext_demo");
        assert_eq!(parsed.config, vec![("sizes".to_string(), "100,1000".to_string())]);
        assert_eq!(parsed.get("ops_per_sec@100"), Some(1234.5));
        assert_eq!(parsed.get("allocs_per_op@100"), Some(17.0));
        assert_eq!(parsed.quick, report.quick);
    }

    #[test]
    fn json_parser_handles_escapes_nesting_and_rejects_garbage() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"s": "q\"\\\né"}, "c": null, "d": true}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(
            json.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(1000.0)]))
        );
        assert_eq!(json.get("b").and_then(|b| b.get("s")).and_then(Json::as_str), Some("q\"\\\né"));
        assert_eq!(json.get("c"), Some(&Json::Null));
        assert_eq!(json.get("d").and_then(Json::as_bool), Some(true));
        assert!(Json::parse("{\"open\": ").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn metric_overwrites_instead_of_duplicating() {
        let mut report = report_with("x", false, &[]);
        report.metric("k", 1.0);
        report.metric("k", 2.0);
        assert_eq!(report.metrics.len(), 1);
        assert_eq!(report.get("k"), Some(2.0));
    }

    const BASELINE: &str = r#"{
        "metrics": {
            "ext_swarm/allocs_per_op@1000":
                { "value": 10.0, "max_ratio": 1.0, "quick_gate": true },
            "ext_swarm/ops_per_sec@1000":
                { "value": 50000.0, "min_ratio": 0.9, "quick_gate": false }
        }
    }"#;

    #[test]
    fn baseline_catches_a_doubled_allocs_per_op() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        // A synthetic 2x allocation regression must be caught even on a
        // quick run (the allocs gate is quick_gate).
        let regressed = report_with("ext_swarm", true, &[("allocs_per_op@1000", 20.0)]);
        let violations = baseline.check(&[regressed], true);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("allocs_per_op"), "{violations:?}");

        let healthy = report_with("ext_swarm", true, &[("allocs_per_op@1000", 9.0)]);
        assert!(baseline.check(&[healthy], true).is_empty());
    }

    #[test]
    fn quick_runs_skip_full_only_gates_but_full_runs_enforce_them() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        // Quick run: the ops_per_sec gate (quick_gate: false) does not
        // apply, so a slow quick run still passes.
        let quick = report_with(
            "ext_swarm",
            true,
            &[("allocs_per_op@1000", 10.0), ("ops_per_sec@1000", 100.0)],
        );
        assert!(baseline.check(&[quick], true).is_empty());
        // Full run: the same throughput now violates min_ratio 0.9.
        let full = report_with(
            "ext_swarm",
            false,
            &[("allocs_per_op@1000", 10.0), ("ops_per_sec@1000", 100.0)],
        );
        let violations = baseline.check(&[full], false);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("ops_per_sec"), "{violations:?}");
    }

    #[test]
    fn quick_runs_do_not_flag_full_only_metrics_as_missing() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        // The regression this guards: a quick run that never emits the
        // full-only ops_per_sec metric (or never runs the bench at all)
        // used to surface as "metric missing" / "no BENCH_ report"
        // violations instead of being skipped via quick_gate.
        let quick = report_with("ext_swarm", true, &[("allocs_per_op@1000", 10.0)]);
        assert!(baseline.check(&[quick], true).is_empty());
        let none: &[BenchReport] = &[];
        let only_full_gates = Baseline::parse(
            r#"{ "metrics": { "ext_swarm/ops_per_sec@1000":
                { "value": 50000.0, "min_ratio": 0.9, "quick_gate": false } } }"#,
        )
        .unwrap();
        assert!(only_full_gates.check(none, true).is_empty());
    }

    #[test]
    fn max_value_gates_bound_absolutely_even_at_zero() {
        let baseline = Baseline::parse(
            r#"{ "metrics": { "ext_sched/allocs_per_op@cached_read":
                { "value": 0.0, "max_value": 0.0, "quick_gate": true } } }"#,
        )
        .unwrap();
        let clean = report_with("ext_sched", true, &[("allocs_per_op@cached_read", 0.0)]);
        assert!(baseline.check(&[clean], true).is_empty());
        let leaky = report_with("ext_sched", true, &[("allocs_per_op@cached_read", 0.5)]);
        let violations = baseline.check(&[leaky], true);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("absolute bound"), "{violations:?}");
    }

    #[test]
    fn missing_metrics_and_reports_are_violations() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        let empty = report_with("ext_swarm", true, &[]);
        let violations = baseline.check(&[empty], true);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("missing"), "{violations:?}");
        let none: &[BenchReport] = &[];
        let violations = baseline.check(none, false);
        assert!(violations.iter().any(|v| v.contains("no BENCH_")), "{violations:?}");
    }
}
