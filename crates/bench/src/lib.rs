//! # morena-bench
//!
//! The experiment harness of the MORENA reproduction. One binary per
//! evaluation artifact (see `EXPERIMENTS.md` at the repository root):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig2_loc` | Figure 2, both panels: LoC per RFID subproblem, handcrafted vs MORENA |
//! | `ext_retry` | EXT-RETRY: automatic retry vs manual reattempt under intermittent connectivity |
//! | `ext_batch` | EXT-BATCH: write batching across disconnection (taps needed to flush N writes) |
//! | `ext_lease` | EXT-LEASE: lease contention, exclusivity, and race statistics |
//! | `ext_swarm` | EXT-SWARM: live-reference swarm scaling — refs/GB, ops/sec, allocs/op |
//! | `bench_report` | merges the `BENCH_*.json` every binary emits; `--check` gates CI |
//!
//! Every binary writes a [`BenchReport`] (`BENCH_<name>.json`) with its
//! headline metrics, so a run's trajectory is diffable and CI can gate
//! on regressions against `benches/baseline.json`.
//!
//! Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{Baseline, BenchReport};

use std::fmt::Display;

/// Renders a fixed-width text table: a header row and data rows, each
/// cell already formatted. Used by every experiment binary so output is
/// uniform and diffable.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Formats a cell.
pub fn cell(value: impl Display) -> String {
    value.to_string()
}

/// Median of a (will-be-sorted) sample; 0-equivalent when empty.
pub fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Whether quick mode is on (`MORENA_QUICK=1`): fewer trials so CI runs
/// fast; the full runs are the defaults.
pub fn quick_mode() -> bool {
    std::env::var("MORENA_QUICK").map(|v| v == "1").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_edges() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "bbbb"],
            &[vec![cell(1), cell("x")], vec![cell(22), cell("yy")]],
        );
    }
}
