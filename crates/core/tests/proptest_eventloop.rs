//! Property tests of the far-reference machinery through the public
//! API: for arbitrary interleavings of queued operations, connectivity
//! flips, and link noise, the middleware must (1) complete every
//! operation exactly once, (2) in FIFO order, and (3) leave the tag
//! holding the last written value.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena_core::context::MorenaContext;
use morena_core::convert::StringConverter;
use morena_core::policy::{Backoff, Policy};
use morena_core::tagref::TagReference;
use morena_nfc_sim::clock::SystemClock;
use morena_nfc_sim::link::LinkModel;
use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
use morena_nfc_sim::world::World;
use proptest::prelude::*;

/// One scripted step of the workload.
#[derive(Debug, Clone)]
enum Step {
    /// Queue a write of the given small payload id.
    Write(u8),
    /// Queue a read.
    Read,
    /// Pull the tag out of the field for a moment.
    Disconnect,
    /// Put the tag back into the field.
    Connect,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => any::<u8>().prop_map(Step::Write),
            2 => Just(Step::Read),
            1 => Just(Step::Disconnect),
            2 => Just(Step::Connect),
        ],
        1..14,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_op_completes_once_in_fifo_order(steps in arb_steps(), seed in 0u64..1000, noise in 0.0f64..0.25) {
        let link = LinkModel {
            setup_latency: Duration::from_micros(50),
            per_byte_latency: Duration::from_micros(1),
            base_failure_prob: noise,
            edge_failure_prob: noise,
            ..LinkModel::realistic()
        };
        let world = World::with_link(Arc::new(SystemClock::new()), link, seed);
        let phone = world.add_phone("prop");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        world.tap_tag(uid, phone);
        let ctx = MorenaContext::headless(&world, phone);
        let reference = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            Policy::new().with_timeout(Duration::from_secs(60)).with_backoff(Backoff::constant(Duration::from_micros(200))),
        );

        let (tx, rx) = unbounded();
        let mut submitted = 0usize;
        let mut last_written: Option<String> = None;
        for step in &steps {
            match step {
                Step::Write(id) => {
                    let payload = format!("payload-{id}");
                    last_written = Some(payload.clone());
                    let tx = tx.clone();
                    let seq = submitted;
                    submitted += 1;
                    reference.write(payload, move |_| tx.send(seq).unwrap(), |_, f| panic!("{f}"));
                }
                Step::Read => {
                    let tx = tx.clone();
                    let seq = submitted;
                    submitted += 1;
                    reference.read(move |_| tx.send(seq).unwrap(), |_, f| panic!("{f}"));
                }
                Step::Disconnect => world.remove_tag_from_field(uid),
                Step::Connect => world.tap_tag(uid, phone),
            }
        }
        // End connected so the queue can drain.
        world.tap_tag(uid, phone);

        let completions: Vec<usize> = (0..submitted)
            .map(|_| rx.recv_timeout(Duration::from_secs(60)).expect("op completes"))
            .collect();
        // (1) exactly once + (2) FIFO: completions are 0..n in order.
        prop_assert_eq!(completions, (0..submitted).collect::<Vec<_>>());
        prop_assert!(rx.try_recv().is_err(), "no extra completions");

        // (3) the tag ends up holding the last write, when there was one.
        if let Some(expected) = last_written {
            let value = reference
                .read_sync(Duration::from_secs(60))
                .expect("final read succeeds");
            prop_assert_eq!(value.as_deref(), Some(expected.as_str()));
        }
        let stats = reference.stats().snapshot();
        prop_assert_eq!(stats.succeeded as usize, submitted + last_written_reads(&steps));
        reference.close();
    }
}

/// The verification read at the end counts toward `succeeded` only when
/// it actually ran (i.e. there was at least one write).
fn last_written_reads(steps: &[Step]) -> usize {
    usize::from(steps.iter().any(|s| matches!(s, Step::Write(_))))
}
