//! # morena-core
//!
//! A Rust reproduction of **MORENA** (MObile RFID-ENabled Android
//! middleware, Middleware 2012): programming NFC-enabled applications as
//! *distributed object-oriented programs*, with RFID tags represented as
//! intermittently connected remote objects.
//!
//! The middleware removes the four drawbacks the paper identifies in the
//! raw platform NFC API:
//!
//! | Drawback | MORENA answer | Module |
//! |---|---|---|
//! | Synchronous communication | every tag/beam operation is asynchronous, processed by a private per-reference event loop | [`eventloop`], [`tagref`] |
//! | Coupling in time | operations queue across disconnections and are retried automatically until their timeout | [`eventloop`] |
//! | Manual data conversion | converters attached to references, discoverers, and beamers | [`convert`] |
//! | Activity coupling | the middleware attaches to an activity *or* runs headless | [`context`], [`discovery`] |
//!
//! Layers, top to bottom:
//!
//! * [`thing`] — §2: typed objects causally connected to tags
//!   ([`thing::ThingSpace`], [`thing::BoundThing`],
//!   [`thing::EmptyThingSlot`]), JSON-serialized like the paper's
//!   GSON-based things.
//! * [`tagref`] / [`discovery`] — §3: first-class far references to tags
//!   with asynchronous, fault-tolerant reads/writes, and discoverers
//!   with MIME plus `check_condition` filtering.
//! * [`beam`] — §2.5/§3.3: asynchronous phone-to-phone push.
//! * [`peer`] — far references to *phones* (the §1.2 model generalized):
//!   per-addressee message queues over the connection-oriented push.
//! * [`keyed`] — §3's "key on the tag, object in a database" custom
//!   conversion strategy.
//! * [`lease`] — §6 (future work, implemented): time-bounded exclusive
//!   access via a lock record on the tag.
//! * [`policy`] — the declarative distribution [`Policy`]: retry curves
//!   (jittered by default), deadline budgets, cache TTL, lease duration,
//!   discovery cadence, and write coalescing, settable per context, per
//!   discoverer, and per reference.
//!
//! # Examples
//!
//! The paper's flagship scenario — queue a write while the tag is away,
//! have it flushed automatically on the next tap:
//!
//! ```
//! use std::sync::Arc;
//! use morena_core::context::MorenaContext;
//! use morena_core::convert::StringConverter;
//! use morena_core::tagref::TagReference;
//! use morena_nfc_sim::clock::VirtualClock;
//! use morena_nfc_sim::link::LinkModel;
//! use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
//! use morena_nfc_sim::world::World;
//!
//! let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
//! let phone = world.add_phone("alice");
//! let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
//! let ctx = MorenaContext::headless(&world, phone);
//!
//! let tag = TagReference::new(&ctx, uid, TagTech::Type2,
//!                             Arc::new(StringConverter::plain_text()));
//! let (tx, rx) = crossbeam::channel::unbounded();
//! tag.write("queued while away".to_string(),
//!           move |r| { tx.send(r.cached()).unwrap(); },
//!           |_, failure| panic!("{failure}"));
//!
//! world.tap_tag(uid, phone); // the user finally taps the tag
//! let written = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
//! assert_eq!(written.as_deref(), Some("queued while away"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beam;
#[cfg(feature = "bench-hooks")]
pub mod bench_hooks;
pub mod context;
pub mod convert;
pub mod discovery;
pub mod eventloop;
pub mod future;
pub mod keyed;
pub mod lease;
pub mod peer;
pub mod policy;
mod router;
pub mod sched;
pub mod tagref;
pub mod thing;
pub mod tracewire;

pub use beam::{BeamListener, BeamReceiver, Beamer};
pub use context::MorenaContext;
pub use convert::{BytesConverter, ConvertError, JsonConverter, StringConverter, TagDataConverter};
pub use discovery::{DiscoveryListener, TagDiscoverer};
pub use eventloop::{OpFailure, OpStats, OpStatsSnapshot, OpTicket};
pub use future::{block_on, UnitFuture};
pub use keyed::{KeyedConverter, MemoryStore, ObjectKey, ObjectStore};
pub use lease::{DeviceId, Lease, LeaseError, LeaseFuture, LeaseManager, LeaseRecord};
pub use peer::{PeerInbox, PeerListener, PeerReference};
pub use policy::{Backoff, Policy, SampleRate};
pub use sched::ExecutionPolicy;
pub use tagref::{ReadFuture, TagReference, WriteFuture};
pub use thing::{BoundThing, EmptyThingSlot, Thing, ThingObserver, ThingSpace};
